package advisor

import (
	"fmt"
	"testing"
	"time"

	"perfdmf/internal/godbc"
)

var memCounter int

func freshMem(t *testing.T) string {
	t.Helper()
	memCounter++
	return fmt.Sprintf("mem:advisor_test_%s_%d", t.Name(), memCounter)
}

func openT(t *testing.T, dsn string) godbc.Conn {
	t.Helper()
	c, err := godbc.Open(dsn)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })
	return c
}

// withTelemetrySchema creates PERFDMF_SPANS / PERFDMF_SLOWLOG (including
// the migrated tree columns) by opening and closing a telemetry store, so
// tests can insert synthetic spans directly.
func withTelemetrySchema(t *testing.T, dsn string) {
	t.Helper()
	st, err := godbc.OpenTelemetryStore(dsn, godbc.TelemetryOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
}

func mustExec(t *testing.T, c godbc.Conn, src string, args ...any) {
	t.Helper()
	if _, err := c.Exec(src, args...); err != nil {
		t.Fatalf("%s: %v", src, err)
	}
}

func findByRule(fs []Finding, rule string) *Finding {
	for i := range fs {
		if fs[i].Rule == rule {
			return &fs[i]
		}
	}
	return nil
}

func TestNormalizeStatement(t *testing.T) {
	cases := []struct{ in, want string }{
		{"SELECT * FROM orders WHERE id = 42", "SELECT * FROM orders WHERE id = ?"},
		{"SELECT * FROM orders WHERE name = 'bob  smith'", "SELECT * FROM orders WHERE name = ?"},
		// Digits that continue an identifier are part of the name, not a literal.
		{"INSERT INTO t1 (a, b) VALUES (3.14, 'x')", "INSERT INTO t1 (a, b) VALUES (?, ?)"},
		{"SELECT  *\n\tFROM t  WHERE v > 10 ", "SELECT * FROM t WHERE v > ?"},
		{"", ""},
	}
	for _, tc := range cases {
		if got := NormalizeStatement(tc.in); got != tc.want {
			t.Errorf("NormalizeStatement(%q) = %q, want %q", tc.in, got, tc.want)
		}
	}
	// The property the detectors rely on: different parameters, same shape.
	a := NormalizeStatement("SELECT v FROM items WHERE id = 7")
	b := NormalizeStatement("SELECT v FROM items WHERE id = 13082")
	if a != b {
		t.Fatalf("shapes differ: %q vs %q", a, b)
	}
}

// TestRunWithoutTelemetry: an archive that never collected telemetry
// produces advice from the evidence available — none — without erroring.
func TestRunWithoutTelemetry(t *testing.T) {
	c := openT(t, freshMem(t))
	fs, err := Run(c, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(fs) != 0 {
		t.Fatalf("findings on an empty archive: %+v", fs)
	}
}

// TestNPlusOne: many near-identical exec spans hanging off one root span
// are flagged as a statement stream, named by shape and worst root, with
// the total aggregated across roots.
func TestNPlusOne(t *testing.T) {
	dsn := freshMem(t)
	withTelemetrySchema(t, dsn)
	c := openT(t, dsn)

	now := time.Now()
	insertSpan := func(id int64, parent any, rootOp, kind, stmt string) {
		mustExec(t, c, `INSERT INTO PERFDMF_SPANS
			(span_id, parent_span_id, root_op, start_time, kind, op, statement, dur_us)
			VALUES (?, ?, ?, ?, ?, ?, ?, ?)`,
			id, parent, rootOp, now, kind, rootOp, stmt, 100)
	}

	// Root A: 30 children with one statement shape (different literals).
	insertSpan(1, nil, "load-report", "op", "")
	for i := int64(0); i < 30; i++ {
		insertSpan(10+i, int64(1), "", "exec",
			fmt.Sprintf("SELECT v FROM items WHERE id = %d", i))
	}
	// Root B: 12 more of the same shape — aggregates into the same finding.
	insertSpan(2, nil, "load-report", "op", "")
	for i := int64(0); i < 12; i++ {
		insertSpan(100+i, int64(2), "", "exec",
			fmt.Sprintf("SELECT v FROM items WHERE id = %d", 1000+i))
	}
	// Below-threshold noise: never reported.
	for i := int64(0); i < 3; i++ {
		insertSpan(200+i, int64(1), "", "query",
			fmt.Sprintf("SELECT name FROM users WHERE uid = %d", i))
	}

	fs, err := Run(c, Options{})
	if err != nil {
		t.Fatal(err)
	}
	f := findByRule(fs, "n-plus-one")
	if f == nil {
		t.Fatalf("no n-plus-one finding in %+v", fs)
	}
	if f.Statement != "SELECT v FROM items WHERE id = ?" {
		t.Fatalf("statement shape = %q", f.Statement)
	}
	if f.RootOp != "load-report" || f.Count != 30 {
		t.Fatalf("worst root = %q count %d, want load-report / 30", f.RootOp, f.Count)
	}
	if f.Score != 42 { // 30 + 12, totalled across both roots
		t.Fatalf("score = %v, want 42 total statements", f.Score)
	}
	if f.Severity != SeverityWarn {
		t.Fatalf("severity = %q, want warn below 10x threshold", f.Severity)
	}
	if fs2 := findByRule(fs, "slow-hotspot"); fs2 != nil {
		t.Fatalf("unexpected slow-hotspot finding: %+v", fs2)
	}

	// With a threshold of 3 the worst stream (30 >= 3*10) escalates to
	// critical, and the 3-statement noise stream now qualifies too.
	fs, err = Run(c, Options{NPlusOneMin: 3})
	if err != nil {
		t.Fatal(err)
	}
	f = findByRule(fs, "n-plus-one")
	if f == nil || f.Severity != SeverityCrit {
		t.Fatalf("tightened threshold: finding = %+v, want critical", f)
	}
}

// TestSlowHotspots: slow-log entries grouped by shape, ranked by total
// time burned; one-off slow statements below the recurrence floor stay out.
func TestSlowHotspots(t *testing.T) {
	dsn := freshMem(t)
	withTelemetrySchema(t, dsn)
	c := openT(t, dsn)

	now := time.Now()
	for i := int64(0); i < 4; i++ {
		mustExec(t, c, `INSERT INTO PERFDMF_SLOWLOG
			(span_id, start_time, kind, op, statement, dur_us, root_op)
			VALUES (?, ?, ?, ?, ?, ?, ?)`,
			i+1, now, "query", "report",
			fmt.Sprintf("SELECT * FROM big WHERE k = %d", i), 500000, "report")
	}
	mustExec(t, c, `INSERT INTO PERFDMF_SLOWLOG
		(span_id, start_time, kind, op, statement, dur_us, root_op)
		VALUES (?, ?, ?, ?, ?, ?, ?)`,
		99, now, "query", "adhoc", "SELECT COUNT(*) FROM rare", 900000, "adhoc")

	fs, err := Run(c, Options{})
	if err != nil {
		t.Fatal(err)
	}
	f := findByRule(fs, "slow-hotspot")
	if f == nil {
		t.Fatalf("no slow-hotspot finding in %+v", fs)
	}
	if f.Statement != "SELECT * FROM big WHERE k = ?" || f.Count != 4 {
		t.Fatalf("hotspot = %+v, want the recurring shape with count 4", f)
	}
	if f.Score != 2.0 { // 4 x 500ms
		t.Fatalf("score = %v, want 2.0 seconds", f.Score)
	}
	if f.RootOp != "report" {
		t.Fatalf("root op = %q, want report", f.RootOp)
	}
	// The single 900ms statement recurred once: below the floor of 3.
	for _, g := range fs {
		if g.Rule == "slow-hotspot" && g.Statement == "SELECT COUNT(*) FROM rare" {
			t.Fatalf("one-off slow statement reported: %+v", g)
		}
	}
}

// histRow inserts one delta-encoded counter sample into the persisted
// metric history.
func histRow(t *testing.T, c godbc.Conn, at time.Time, name string, delta float64) {
	t.Helper()
	mustExec(t, c, `INSERT INTO PERFDMF_METRICS_HISTORY (at, elapsed_us, name, kind, value)
		VALUES (?, ?, ?, ?, ?)`, at, int64(1000000), name, "counter", delta)
}

// TestPlanCacheRegression: a hit ratio that collapses between the earlier
// and recent halves of the history is flagged; thin evidence is not.
func TestPlanCacheRegression(t *testing.T) {
	dsn := freshMem(t)
	c := openT(t, dsn)
	if err := godbc.EnsureObservabilitySchema(c); err != nil {
		t.Fatal(err)
	}

	t0 := time.Now().Add(-time.Hour)
	// Early half: 90% hit ratio over 100 lookups.
	histRow(t, c, t0, "sqlexec_plan_cache_hits_total", 90)
	histRow(t, c, t0, "sqlexec_plan_cache_misses_total", 10)
	// Recent half: 20% over 100 lookups — a 70-point drop.
	histRow(t, c, t0.Add(10*time.Minute), "sqlexec_plan_cache_hits_total", 20)
	histRow(t, c, t0.Add(10*time.Minute), "sqlexec_plan_cache_misses_total", 80)

	fs, err := Run(c, Options{})
	if err != nil {
		t.Fatal(err)
	}
	f := findByRule(fs, "plan-cache-regression")
	if f == nil {
		t.Fatalf("no plan-cache-regression finding in %+v", fs)
	}
	if f.Severity != SeverityWarn || f.Score < 69.9 || f.Score > 70.1 {
		t.Fatalf("finding = %+v, want warn with score ~70", f)
	}

	// Same ratio collapse but under 50 lookups per side: noise, no finding.
	dsn2 := freshMem(t)
	c2 := openT(t, dsn2)
	if err := godbc.EnsureObservabilitySchema(c2); err != nil {
		t.Fatal(err)
	}
	histRow(t, c2, t0, "sqlexec_plan_cache_hits_total", 9)
	histRow(t, c2, t0, "sqlexec_plan_cache_misses_total", 1)
	histRow(t, c2, t0.Add(10*time.Minute), "sqlexec_plan_cache_hits_total", 2)
	histRow(t, c2, t0.Add(10*time.Minute), "sqlexec_plan_cache_misses_total", 8)
	fs, err = Run(c2, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if f := findByRule(fs, "plan-cache-regression"); f != nil {
		t.Fatalf("regression flagged on %d lookups: %+v", 10, f)
	}
}

// TestTelemetryPressure: writer stalls alone are informational; any
// recorded loss (drops, store errors) escalates to warn, and the score
// totals every loss event.
func TestTelemetryPressure(t *testing.T) {
	dsn := freshMem(t)
	c := openT(t, dsn)
	if err := godbc.EnsureObservabilitySchema(c); err != nil {
		t.Fatal(err)
	}

	now := time.Now()
	histRow(t, c, now, "obs_telemetry_writer_stalls_total", 3)
	fs, err := Run(c, Options{})
	if err != nil {
		t.Fatal(err)
	}
	f := findByRule(fs, "telemetry-pressure")
	if f == nil || f.Severity != SeverityInfo || f.Score != 3 {
		t.Fatalf("stalls-only finding = %+v, want info with score 3", f)
	}

	histRow(t, c, now, "obs_telemetry_dropped_total", 5)
	fs, err = Run(c, Options{})
	if err != nil {
		t.Fatal(err)
	}
	f = findByRule(fs, "telemetry-pressure")
	if f == nil || f.Severity != SeverityWarn || f.Score != 8 {
		t.Fatalf("with drops finding = %+v, want warn with score 8", f)
	}
}

// TestStaleStats: a table whose live row count drifted from its analyzed
// statistics shows up as a stale-analyze finding naming the table.
func TestStaleStats(t *testing.T) {
	c := openT(t, freshMem(t))
	mustExec(t, c, "CREATE TABLE seed (id BIGINT PRIMARY KEY AUTO_INCREMENT, v BIGINT)")
	for i := 0; i < 5; i++ {
		mustExec(t, c, "INSERT INTO seed (v) VALUES (?)", i)
	}
	mustExec(t, c, "ANALYZE seed")

	fs, err := Run(c, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if f := findByRule(fs, "stale-analyze"); f != nil {
		t.Fatalf("fresh statistics flagged stale: %+v", f)
	}

	// Drift: one more row than the statistics recorded.
	mustExec(t, c, "INSERT INTO seed (v) VALUES (?)", 99)
	fs, err = Run(c, Options{})
	if err != nil {
		t.Fatal(err)
	}
	f := findByRule(fs, "stale-analyze")
	if f == nil || f.Severity != SeverityInfo {
		t.Fatalf("no stale-analyze finding after drift: %+v", fs)
	}
	if want := "stale statistics on: seed"; f.Detail != want {
		t.Fatalf("detail = %q, want %q", f.Detail, want)
	}
}
