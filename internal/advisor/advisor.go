// Package advisor is the workload advisor behind `perfdmf doctor`: it
// reads the telemetry an archive has accumulated about itself — spans,
// the slow-query log, persisted metric history, table statistics — and
// turns it into ranked, actionable findings. The advisor only reads; it
// runs equally against a live archive or a copied one.
package advisor

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"perfdmf/internal/godbc"
)

// Severity levels, ordered. The advisor uses them for ranking only; it
// never refuses to report a low-severity finding.
const (
	SeverityInfo = "info"
	SeverityWarn = "warn"
	SeverityCrit = "critical"
)

// Finding is one piece of advice, ranked by Score (higher = report first).
type Finding struct {
	Rule     string  `json:"rule"`
	Severity string  `json:"severity"`
	Score    float64 `json:"score"`
	Title    string  `json:"title"`
	Detail   string  `json:"detail"`
	// RootOp/Statement/Count localize statement-level findings (N+1,
	// slow hotspots); empty otherwise.
	RootOp     string `json:"root_op,omitempty"`
	Statement  string `json:"statement,omitempty"`
	Count      int64  `json:"count,omitempty"`
	Suggestion string `json:"suggestion,omitempty"`
}

// Options tunes the advisor's detectors. Zero values pick the defaults.
type Options struct {
	// NPlusOneMin is the minimum number of near-identical child statements
	// under one root span before the stream is flagged (default 10).
	NPlusOneMin int
	// SlowHotspotMin is the minimum slow-log occurrences of one statement
	// shape before it is flagged (default 3).
	SlowHotspotMin int
	// HitRatioDrop is the plan-cache hit-ratio regression (recent half vs
	// earlier half of the metric history) that triggers a finding
	// (default 0.15).
	HitRatioDrop float64
}

func (o Options) withDefaults() Options {
	if o.NPlusOneMin <= 0 {
		o.NPlusOneMin = 10
	}
	if o.SlowHotspotMin <= 0 {
		o.SlowHotspotMin = 3
	}
	if o.HitRatioDrop <= 0 {
		o.HitRatioDrop = 0.15
	}
	return o
}

// Run executes every detector against the archive behind c and returns
// the findings ranked most-severe first. Missing telemetry tables simply
// produce no findings from their detectors: advice is computed from the
// evidence available, never demanded.
func Run(c godbc.Conn, opts Options) ([]Finding, error) {
	opts = opts.withDefaults()
	tables, err := c.MetaData().Tables()
	if err != nil {
		return nil, err
	}
	have := make(map[string]bool, len(tables))
	for _, t := range tables {
		have[strings.ToUpper(t)] = true
	}
	var out []Finding
	if have[godbc.SpansTable] {
		f, err := nPlusOne(c, opts)
		if err != nil {
			return nil, err
		}
		out = append(out, f...)
	}
	if have[godbc.SlowLogTable] {
		f, err := slowHotspots(c, opts)
		if err != nil {
			return nil, err
		}
		out = append(out, f...)
	}
	if have[godbc.MetricsHistoryTable] {
		f, err := planCacheRegression(c, opts)
		if err != nil {
			return nil, err
		}
		out = append(out, f...)
		f, err = telemetryPressure(c)
		if err != nil {
			return nil, err
		}
		out = append(out, f...)
	}
	f, err := staleStats(c)
	if err != nil {
		return nil, err
	}
	out = append(out, f...)
	sort.SliceStable(out, func(i, j int) bool { return out[i].Score > out[j].Score })
	return out, nil
}

// NormalizeStatement reduces a statement to its shape: quoted strings and
// numeric literals become '?', whitespace collapses. Two executions of the
// same query with different parameters normalize identically, which is
// what the N+1 and hotspot detectors group by.
func NormalizeStatement(s string) string {
	var b strings.Builder
	b.Grow(len(s))
	prevIdent := false // previous emitted byte continues an identifier
	prevSpace := false
	i := 0
	for i < len(s) {
		ch := s[i]
		switch {
		case ch == '\'':
			j := i + 1
			for j < len(s) && s[j] != '\'' {
				j++
			}
			b.WriteByte('?')
			prevIdent, prevSpace = false, false
			i = j + 1
		case ch >= '0' && ch <= '9' && !prevIdent:
			j := i
			for j < len(s) && ((s[j] >= '0' && s[j] <= '9') || s[j] == '.') {
				j++
			}
			b.WriteByte('?')
			prevIdent, prevSpace = false, false
			i = j
		case ch == ' ' || ch == '\t' || ch == '\n' || ch == '\r':
			if !prevSpace && b.Len() > 0 {
				b.WriteByte(' ')
			}
			prevIdent, prevSpace = false, true
			i++
		default:
			b.WriteByte(ch)
			prevIdent = ch == '_' || (ch >= 'a' && ch <= 'z') || (ch >= 'A' && ch <= 'Z') ||
				(ch >= '0' && ch <= '9')
			prevSpace = false
			i++
		}
	}
	return strings.TrimRight(b.String(), " ")
}

// nPlusOne detects statement streams: many near-identical statements
// issued under one root operation, the access pattern a single
// set-oriented query would replace. It reconstructs each statement span's
// root through the parent chain (spans whose parent was sampled out count
// as their own roots) and groups by (root span, statement shape).
func nPlusOne(c godbc.Conn, opts Options) ([]Finding, error) {
	rows, err := c.Query(`SELECT span_id, parent_span_id, root_op, kind, statement FROM PERFDMF_SPANS`)
	if err != nil {
		return nil, err
	}
	defer rows.Close()
	type spanRec struct {
		parent int64
		rootOp string
		kind   string
		stmt   string
	}
	spans := make(map[int64]spanRec)
	for rows.Next() {
		var id int64
		var rec spanRec
		var parent any
		if err := rows.Scan(&id, &parent, &rec.rootOp, &rec.kind, &rec.stmt); err != nil {
			return nil, err
		}
		if p, ok := parent.(int64); ok {
			rec.parent = p
		}
		spans[id] = rec
	}
	if err := rows.Err(); err != nil {
		return nil, err
	}
	// Resolve each span to its root. Chains are short (statement spans hang
	// off an operation root), but walk defensively with a hop cap.
	rootOf := func(id int64) int64 {
		cur := id
		for hops := 0; hops < 64; hops++ {
			rec, ok := spans[cur]
			if !ok || rec.parent == 0 {
				return cur
			}
			cur = rec.parent
		}
		return cur
	}
	type streamKey struct {
		root  int64
		shape string
	}
	counts := make(map[streamKey]int64)
	for id, rec := range spans {
		if rec.stmt == "" || (rec.kind != "exec" && rec.kind != "query") {
			continue
		}
		counts[streamKey{rootOf(id), NormalizeStatement(rec.stmt)}]++
	}
	// Aggregate streams across roots by shape: report the shape once with
	// the worst per-root count and how many roots repeat it.
	type agg struct {
		maxCount int64
		total    int64
		roots    int64
		rootOp   string
		rootID   int64
	}
	byShape := make(map[string]*agg)
	for k, n := range counts {
		if n < int64(opts.NPlusOneMin) {
			continue
		}
		a := byShape[k.shape]
		if a == nil {
			a = &agg{}
			byShape[k.shape] = a
		}
		a.roots++
		a.total += n
		if n > a.maxCount {
			a.maxCount = n
			a.rootID = k.root
			a.rootOp = rootOpOf(spans[k.root].rootOp, k.root)
		}
	}
	var out []Finding
	for shape, a := range byShape {
		sev := SeverityWarn
		if a.maxCount >= int64(opts.NPlusOneMin)*10 {
			sev = SeverityCrit
		}
		out = append(out, Finding{
			Rule:     "n-plus-one",
			Severity: sev,
			Score:    float64(a.total),
			Title:    fmt.Sprintf("N+1 statement stream: %d near-identical statements under one root", a.maxCount),
			Detail: fmt.Sprintf("statement shape repeated %d times under root span %d (%s); %d total across %d root(s)",
				a.maxCount, a.rootID, a.rootOp, a.total, a.roots),
			RootOp:    a.rootOp,
			Statement: shape,
			Count:     a.maxCount,
			Suggestion: "replace the per-item statement loop with one set-oriented query " +
				"(WHERE key IN (...) or a JOIN) so the root does one round trip",
		})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Score > out[j].Score })
	return out, nil
}

// rootOpOf names a root for humans: the recorded root_op, or the span id.
func rootOpOf(rootOp string, id int64) string {
	if rootOp != "" {
		return rootOp
	}
	return fmt.Sprintf("span %d", id)
}

// slowHotspots groups the slow-query log by statement shape and flags the
// shapes that keep coming back, ranked by total time burned.
func slowHotspots(c godbc.Conn, opts Options) ([]Finding, error) {
	rows, err := c.Query(`SELECT statement, dur_us, root_op FROM PERFDMF_SLOWLOG`)
	if err != nil {
		return nil, err
	}
	defer rows.Close()
	type hot struct {
		count  int64
		durUS  int64
		rootOp string
	}
	byShape := make(map[string]*hot)
	for rows.Next() {
		var stmt, rootOp string
		var durUS int64
		if err := rows.Scan(&stmt, &durUS, &rootOp); err != nil {
			return nil, err
		}
		if stmt == "" {
			continue
		}
		shape := NormalizeStatement(stmt)
		h := byShape[shape]
		if h == nil {
			h = &hot{}
			byShape[shape] = h
		}
		h.count++
		h.durUS += durUS
		h.rootOp = rootOp
	}
	if err := rows.Err(); err != nil {
		return nil, err
	}
	var out []Finding
	for shape, h := range byShape {
		if h.count < int64(opts.SlowHotspotMin) {
			continue
		}
		out = append(out, Finding{
			Rule:     "slow-hotspot",
			Severity: SeverityWarn,
			Score:    float64(h.durUS) / 1e6,
			Title:    fmt.Sprintf("recurring slow statement: %d occurrences, %.2fs total", h.count, float64(h.durUS)/1e6),
			Detail: fmt.Sprintf("the same statement shape crossed the slow threshold %d times for %.2fs in total",
				h.count, float64(h.durUS)/1e6),
			RootOp:    h.rootOp,
			Statement: shape,
			Count:     h.count,
			Suggestion: "EXPLAIN the statement: check for a missing index (plan says 'table scan'), " +
				"stale statistics (run ANALYZE), or an unbounded result (add LIMIT)",
		})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Score > out[j].Score })
	return out, nil
}

// metricDeltas reads one counter's persisted history as (at, delta) pairs,
// oldest first.
func metricDeltas(c godbc.Conn, metric string) (at []time.Time, delta []float64, err error) {
	rows, err := c.Query(
		`SELECT at, value FROM PERFDMF_METRICS_HISTORY WHERE name = ? ORDER BY at`, metric)
	if err != nil {
		return nil, nil, err
	}
	defer rows.Close()
	for rows.Next() {
		var t time.Time
		var v float64
		if err := rows.Scan(&t, &v); err != nil {
			return nil, nil, err
		}
		at = append(at, t)
		delta = append(delta, v)
	}
	return at, delta, rows.Err()
}

// planCacheRegression compares the plan-cache hit ratio of the recent half
// of the persisted metric history against the earlier half. A sustained
// drop means statements stopped reusing plans — churn from DDL, cache
// pressure, or a statement mix that defeats the cache key.
func planCacheRegression(c godbc.Conn, opts Options) ([]Finding, error) {
	hitAt, hits, err := metricDeltas(c, "sqlexec_plan_cache_hits_total")
	if err != nil {
		return nil, err
	}
	missAt, misses, err := metricDeltas(c, "sqlexec_plan_cache_misses_total")
	if err != nil {
		return nil, err
	}
	if len(hitAt) == 0 && len(missAt) == 0 {
		return nil, nil
	}
	// Split time at the midpoint of the observed range and sum each side.
	var lo, hi time.Time
	for _, ts := range [][]time.Time{hitAt, missAt} {
		for _, t := range ts {
			if lo.IsZero() || t.Before(lo) {
				lo = t
			}
			if t.After(hi) {
				hi = t
			}
		}
	}
	mid := lo.Add(hi.Sub(lo) / 2)
	var earlyHits, lateHits, earlyMiss, lateMiss float64
	for i, t := range hitAt {
		if t.After(mid) {
			lateHits += hits[i]
		} else {
			earlyHits += hits[i]
		}
	}
	for i, t := range missAt {
		if t.After(mid) {
			lateMiss += misses[i]
		} else {
			earlyMiss += misses[i]
		}
	}
	const minLookups = 50 // below this a ratio is noise, not evidence
	if earlyHits+earlyMiss < minLookups || lateHits+lateMiss < minLookups {
		return nil, nil
	}
	earlyRatio := earlyHits / (earlyHits + earlyMiss)
	lateRatio := lateHits / (lateHits + lateMiss)
	drop := earlyRatio - lateRatio
	if drop < opts.HitRatioDrop {
		return nil, nil
	}
	return []Finding{{
		Rule:     "plan-cache-regression",
		Severity: SeverityWarn,
		Score:    drop * 100,
		Title:    fmt.Sprintf("plan-cache hit ratio dropped %.0f points", drop*100),
		Detail: fmt.Sprintf("hit ratio fell from %.2f to %.2f between the earlier and recent halves of the metric history (%.0f vs %.0f lookups)",
			earlyRatio, lateRatio, earlyHits+earlyMiss, lateHits+lateMiss),
		Suggestion: "look for schema churn (DDL bumps the schema version and invalidates plans), " +
			"an undersized cache, or statement text that embeds literals instead of parameters",
	}}, nil
}

// telemetryPressure flags recorded telemetry loss: dropped entries, store
// errors, or writer stalls anywhere in the persisted history mean the
// observability data itself has gaps.
func telemetryPressure(c godbc.Conn) ([]Finding, error) {
	total := func(metric string) (float64, error) {
		_, deltas, err := metricDeltas(c, metric)
		if err != nil {
			return 0, err
		}
		var sum float64
		for _, d := range deltas {
			sum += d
		}
		return sum, nil
	}
	dropped, err := total("obs_telemetry_dropped_total")
	if err != nil {
		return nil, err
	}
	storeErrs, err := total("obs_telemetry_store_errors_total")
	if err != nil {
		return nil, err
	}
	stalls, err := total("obs_telemetry_writer_stalls_total")
	if err != nil {
		return nil, err
	}
	if dropped+storeErrs+stalls == 0 {
		return nil, nil
	}
	sev := SeverityInfo
	if dropped+storeErrs > 0 {
		sev = SeverityWarn
	}
	return []Finding{{
		Rule:     "telemetry-pressure",
		Severity: sev,
		Score:    dropped + storeErrs + stalls,
		Title:    "telemetry pipeline recorded loss or stalls",
		Detail: fmt.Sprintf("history records %.0f dropped entries, %.0f store errors, %.0f writer stalls — span data has gaps",
			dropped, storeErrs, stalls),
		Suggestion: "raise the telemetry budget or retention caps, or shorten workload write " +
			"transactions so the group-commit writer can take the write lock",
	}}, nil
}

// staleStats reads OBS_TABLE_STATS and lists the analyzed tables whose
// statistics no longer match live state — the optimizer is planning on
// fiction until ANALYZE reruns.
func staleStats(c godbc.Conn) ([]Finding, error) {
	rows, err := c.Query(`SELECT table_name, stale FROM OBS_TABLE_STATS`)
	if err != nil {
		return nil, err
	}
	defer rows.Close()
	stale := make(map[string]bool)
	for rows.Next() {
		var name string
		var isStale bool
		if err := rows.Scan(&name, &isStale); err != nil {
			return nil, err
		}
		if isStale {
			stale[name] = true
		}
	}
	if err := rows.Err(); err != nil {
		return nil, err
	}
	if len(stale) == 0 {
		return nil, nil
	}
	names := make([]string, 0, len(stale))
	for n := range stale {
		names = append(names, n)
	}
	sort.Strings(names)
	return []Finding{{
		Rule:     "stale-analyze",
		Severity: SeverityInfo,
		Score:    float64(len(names)),
		Title:    fmt.Sprintf("%d table(s) have stale statistics", len(names)),
		Detail:   "stale statistics on: " + strings.Join(names, ", "),
		Suggestion: "run ANALYZE (or `perfdmf sql -db ... \"ANALYZE <table>\"`) so cardinality " +
			"estimates match the live data",
	}}, nil
}
