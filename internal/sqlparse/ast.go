package sqlparse

import "perfdmf/internal/reldb"

// Statement is any parsed SQL statement.
type Statement interface{ stmt() }

// ColumnDef is one column in CREATE TABLE or ALTER TABLE ADD COLUMN.
type ColumnDef struct {
	Name          string
	Type          reldb.Type
	NotNull       bool
	PrimaryKey    bool
	AutoIncrement bool
	Default       reldb.Value
	References    *ForeignRef // inline REFERENCES clause
}

// ForeignRef is the target of a REFERENCES clause.
type ForeignRef struct {
	Table  string
	Column string
}

// CreateTable is CREATE TABLE [IF NOT EXISTS] name (...).
type CreateTable struct {
	Name        string
	IfNotExists bool
	Columns     []ColumnDef
}

// DropTable is DROP TABLE [IF EXISTS] name.
type DropTable struct {
	Name     string
	IfExists bool
}

// AlterTable is ALTER TABLE name ADD COLUMN def | DROP COLUMN name.
type AlterTable struct {
	Name    string
	Add     *ColumnDef // nil when dropping
	DropCol string     // "" when adding
}

// CreateIndex is CREATE [UNIQUE] INDEX name ON table (col[, col...])
// [USING HASH|BTREE]. Multi-column indexes must use HASH.
type CreateIndex struct {
	Name    string
	Table   string
	Columns []string
	Unique  bool
	Using   string // "HASH" (default) or "BTREE"
}

// DropIndex is DROP INDEX name ON table.
type DropIndex struct {
	Name  string
	Table string
}

// Insert is INSERT INTO table [(cols)] VALUES (...), (...).
type Insert struct {
	Table   string
	Columns []string // empty means all columns in schema order
	Rows    [][]Expr
}

// SelectItem is one projected expression with an optional alias.
type SelectItem struct {
	Expr  Expr
	Alias string
	Star  bool   // SELECT * or t.*
	Table string // qualifier for t.*
}

// TableRef names a table, or a derived table — a parenthesized SELECT —
// with an alias (mandatory for derived tables).
type TableRef struct {
	Table string
	Alias string
	Sub   *Select // non-nil for FROM (SELECT ...) alias
}

// JoinKind distinguishes join types.
type JoinKind uint8

// Supported join types.
const (
	InnerJoin JoinKind = iota
	LeftJoin
)

// Join is one JOIN clause.
type Join struct {
	Kind JoinKind
	TableRef
	On Expr
}

// OrderItem is one ORDER BY term.
type OrderItem struct {
	Expr Expr
	Desc bool
}

// Select is a SELECT statement.
type Select struct {
	Distinct bool
	Items    []SelectItem
	From     TableRef
	Joins    []Join
	Where    Expr
	GroupBy  []Expr
	Having   Expr
	OrderBy  []OrderItem
	Limit    Expr // nil when absent
	Offset   Expr
}

// Assign is one SET column = expr pair.
type Assign struct {
	Column string
	Expr   Expr
}

// Update is UPDATE table SET ... [WHERE ...].
type Update struct {
	Table string
	Sets  []Assign
	Where Expr
}

// Delete is DELETE FROM table [WHERE ...].
type Delete struct {
	Table string
	Where Expr
}

// Explain is EXPLAIN [ANALYZE] SELECT ...: it returns the executor's plan
// for the wrapped query as rows of text. With Analyze set the query is also
// executed and the plan is annotated with actual phase timings and row
// counts.
type Explain struct {
	Select  *Select
	Analyze bool
}

// Analyze is ANALYZE [table]: scan one table (or, with Table empty, every
// user table) and refresh its row-count / per-column statistics in the
// PERFDMF_TABLE_STATS catalog table.
type Analyze struct {
	Table string // "" means every user table
}

// Compact is COMPACT [table]: build sealed columnar segments for one table
// (or, with Table empty, every user table) so subsequent aggregation
// queries can take the vectorized path without waiting for the lazy
// read-mostly heuristic.
type Compact struct {
	Table string // "" means every user table
}

// Kill is KILL <statement_id>: request cancellation of a running statement
// by the id OBS_ACTIVE_STATEMENTS reports. ID is a Literal integer or a
// Param placeholder.
type Kill struct {
	ID Expr
}

// Begin, Commit and Rollback are transaction control statements.
type (
	Begin    struct{}
	Commit   struct{}
	Rollback struct{}
)

func (*CreateTable) stmt() {}
func (*DropTable) stmt()   {}
func (*AlterTable) stmt()  {}
func (*CreateIndex) stmt() {}
func (*DropIndex) stmt()   {}
func (*Insert) stmt()      {}
func (*Explain) stmt()     {}
func (*Analyze) stmt()     {}
func (*Compact) stmt()     {}
func (*Kill) stmt()        {}
func (*Select) stmt()      {}
func (*Update) stmt()      {}
func (*Delete) stmt()      {}
func (*Begin) stmt()       {}
func (*Commit) stmt()      {}
func (*Rollback) stmt()    {}

// Expr is any expression node.
type Expr interface{ expr() }

// Literal is a constant value.
type Literal struct{ Value reldb.Value }

// Param is a ? placeholder; Index is its zero-based position.
type Param struct{ Index int }

// ColRef references a column, optionally table-qualified.
type ColRef struct {
	Table string
	Name  string
}

// BinOp identifies a binary operator.
type BinOp uint8

// Binary operators, in no particular order.
const (
	OpAdd BinOp = iota
	OpSub
	OpMul
	OpDiv
	OpMod
	OpEq
	OpNe
	OpLt
	OpLe
	OpGt
	OpGe
	OpAnd
	OpOr
	OpLike
	OpConcat
)

// Binary is a binary operation.
type Binary struct {
	Op   BinOp
	L, R Expr
}

// Unary is -x or NOT x.
type Unary struct {
	Neg bool // true: arithmetic negation; false: logical NOT
	X   Expr
}

// FuncCall is name(args) — aggregates and scalar functions.
type FuncCall struct {
	Name     string // upper-cased
	Args     []Expr
	Star     bool // COUNT(*)
	Distinct bool // COUNT(DISTINCT x)
}

// InList is x [NOT] IN (a, b, ...) or x [NOT] IN (SELECT ...).
// Exactly one of List and Sub is set.
type InList struct {
	X    Expr
	List []Expr
	Sub  *Subquery
	Neg  bool
}

// IsNull is x IS [NOT] NULL.
type IsNull struct {
	X   Expr
	Neg bool
}

// Between is x [NOT] BETWEEN lo AND hi.
type Between struct {
	X, Lo, Hi Expr
	Neg       bool
}

// Subquery is a parenthesized SELECT used as an expression: either the
// right side of [NOT] IN, or a scalar subquery (which must return at most
// one row of one column). Only uncorrelated subqueries are supported: the
// inner SELECT cannot reference outer columns.
type Subquery struct {
	Select *Select
}

func (*Literal) expr()  {}
func (*Param) expr()    {}
func (*ColRef) expr()   {}
func (*Binary) expr()   {}
func (*Unary) expr()    {}
func (*FuncCall) expr() {}
func (*InList) expr()   {}
func (*IsNull) expr()   {}
func (*Between) expr()  {}
func (*Subquery) expr() {}
