package sqlparse

import (
	"fmt"
	"strconv"
	"strings"

	"perfdmf/internal/reldb"
)

// Parse parses a single SQL statement. A trailing semicolon is allowed.
func Parse(src string) (Statement, error) {
	toks, err := lex(src)
	if err != nil {
		return nil, err
	}
	p := &parser{src: src, toks: toks}
	st, err := p.statement()
	if err != nil {
		return nil, err
	}
	p.accept(tokOp, ";")
	if !p.at(tokEOF, "") {
		return nil, p.errf("unexpected %q after statement", p.cur().text)
	}
	return st, nil
}

// ParseScript parses a semicolon-separated sequence of statements.
func ParseScript(src string) ([]Statement, error) {
	toks, err := lex(src)
	if err != nil {
		return nil, err
	}
	p := &parser{src: src, toks: toks}
	var out []Statement
	for {
		for p.accept(tokOp, ";") {
		}
		if p.at(tokEOF, "") {
			return out, nil
		}
		st, err := p.statement()
		if err != nil {
			return nil, err
		}
		out = append(out, st)
		if !p.accept(tokOp, ";") && !p.at(tokEOF, "") {
			return nil, p.errf("expected ';' between statements, got %q", p.cur().text)
		}
	}
}

type parser struct {
	src    string
	toks   []token
	pos    int
	params int
}

func (p *parser) cur() token  { return p.toks[p.pos] }
func (p *parser) next() token { t := p.toks[p.pos]; p.pos++; return t }

func (p *parser) at(kind tokenKind, text string) bool {
	t := p.cur()
	return t.kind == kind && (text == "" || t.text == text)
}

func (p *parser) accept(kind tokenKind, text string) bool {
	if p.at(kind, text) {
		p.pos++
		return true
	}
	return false
}

func (p *parser) expect(kind tokenKind, text string) (token, error) {
	if p.at(kind, text) {
		return p.next(), nil
	}
	want := text
	if want == "" {
		switch kind {
		case tokIdent:
			want = "identifier"
		case tokNumber:
			want = "number"
		default:
			want = "token"
		}
	}
	return token{}, p.errf("expected %s, got %q", want, p.cur().text)
}

func (p *parser) errf(format string, args ...any) error {
	return fmt.Errorf("sqlparse: offset %d: %s", p.cur().pos, fmt.Sprintf(format, args...))
}

// ident accepts an identifier or a non-reserved keyword used as a name
// (column names like "name" or "key" appear in real PerfDMF schemas).
func (p *parser) ident() (string, error) {
	if p.at(tokIdent, "") {
		return p.next().text, nil
	}
	return "", p.errf("expected identifier, got %q", p.cur().text)
}

func (p *parser) statement() (Statement, error) {
	switch {
	case p.accept(tokKeyword, "EXPLAIN"):
		analyze := p.accept(tokKeyword, "ANALYZE")
		if !p.at(tokKeyword, "SELECT") {
			return nil, p.errf("EXPLAIN supports only SELECT")
		}
		sel, err := p.selectStmt()
		if err != nil {
			return nil, err
		}
		return &Explain{Select: sel.(*Select), Analyze: analyze}, nil
	case p.accept(tokKeyword, "ANALYZE"):
		an := &Analyze{}
		if p.at(tokIdent, "") {
			an.Table = p.next().text
		}
		return an, nil
	case p.accept(tokKeyword, "COMPACT"):
		co := &Compact{}
		if p.at(tokIdent, "") {
			co.Table = p.next().text
		}
		return co, nil
	case p.accept(tokKeyword, "KILL"):
		t := p.cur()
		switch t.kind {
		case tokNumber:
			p.pos++
			v, err := numberValue(t.text)
			if err != nil || v.T != reldb.TInt {
				return nil, p.errf("KILL expects an integer statement id")
			}
			return &Kill{ID: &Literal{Value: v}}, nil
		case tokParam:
			p.pos++
			e := &Param{Index: p.params}
			p.params++
			return &Kill{ID: e}, nil
		}
		return nil, p.errf("KILL expects a statement id, got %q", t.text)
	case p.at(tokKeyword, "SELECT"):
		return p.selectStmt()
	case p.at(tokKeyword, "INSERT"):
		return p.insertStmt()
	case p.at(tokKeyword, "UPDATE"):
		return p.updateStmt()
	case p.at(tokKeyword, "DELETE"):
		return p.deleteStmt()
	case p.at(tokKeyword, "CREATE"):
		return p.createStmt()
	case p.at(tokKeyword, "DROP"):
		return p.dropStmt()
	case p.at(tokKeyword, "ALTER"):
		return p.alterStmt()
	case p.accept(tokKeyword, "BEGIN"):
		p.accept(tokKeyword, "TRANSACTION")
		return &Begin{}, nil
	case p.accept(tokKeyword, "COMMIT"):
		return &Commit{}, nil
	case p.accept(tokKeyword, "ROLLBACK"):
		return &Rollback{}, nil
	}
	return nil, p.errf("expected statement, got %q", p.cur().text)
}

// --- DDL ---

func (p *parser) typeName() (reldb.Type, error) {
	t := p.cur()
	if t.kind != tokKeyword {
		return reldb.TNull, p.errf("expected type name, got %q", t.text)
	}
	p.pos++
	var ty reldb.Type
	switch t.text {
	case "BIGINT", "INT", "INTEGER":
		ty = reldb.TInt
	case "DOUBLE", "FLOAT", "REAL":
		ty = reldb.TFloat
		p.accept(tokKeyword, "PRECISION") // DOUBLE PRECISION
	case "VARCHAR", "TEXT":
		ty = reldb.TString
	case "BOOLEAN", "BOOL":
		ty = reldb.TBool
	case "TIMESTAMP":
		ty = reldb.TTime
	case "BLOB":
		ty = reldb.TBytes
	default:
		return reldb.TNull, p.errf("unknown type %q", t.text)
	}
	// Optional length, e.g. VARCHAR(4096) — accepted and ignored.
	if p.accept(tokOp, "(") {
		if _, err := p.expect(tokNumber, ""); err != nil {
			return ty, err
		}
		if _, err := p.expect(tokOp, ")"); err != nil {
			return ty, err
		}
	}
	return ty, nil
}

func (p *parser) columnDef() (ColumnDef, error) {
	var cd ColumnDef
	name, err := p.ident()
	if err != nil {
		return cd, err
	}
	cd.Name = name
	cd.Type, err = p.typeName()
	if err != nil {
		return cd, err
	}
	for {
		switch {
		case p.accept(tokKeyword, "NOT"):
			if _, err := p.expect(tokKeyword, "NULL"); err != nil {
				return cd, err
			}
			cd.NotNull = true
		case p.accept(tokKeyword, "NULL"):
			// explicit nullable; nothing to record
		case p.accept(tokKeyword, "PRIMARY"):
			if _, err := p.expect(tokKeyword, "KEY"); err != nil {
				return cd, err
			}
			cd.PrimaryKey = true
		case p.accept(tokKeyword, "AUTO_INCREMENT"):
			cd.AutoIncrement = true
		case p.accept(tokKeyword, "DEFAULT"):
			v, err := p.literalValue()
			if err != nil {
				return cd, err
			}
			cd.Default = v
		case p.accept(tokKeyword, "REFERENCES"):
			tbl, err := p.ident()
			if err != nil {
				return cd, err
			}
			ref := &ForeignRef{Table: tbl}
			if p.accept(tokOp, "(") {
				col, err := p.ident()
				if err != nil {
					return cd, err
				}
				ref.Column = col
				if _, err := p.expect(tokOp, ")"); err != nil {
					return cd, err
				}
			}
			cd.References = ref
		default:
			return cd, nil
		}
	}
}

// literalValue parses a constant usable in DEFAULT clauses.
func (p *parser) literalValue() (reldb.Value, error) {
	neg := p.accept(tokOp, "-")
	t := p.cur()
	switch {
	case t.kind == tokNumber:
		p.pos++
		v, err := numberValue(t.text)
		if err != nil {
			return reldb.Null, p.errf("%v", err)
		}
		if neg {
			if v.T == reldb.TInt {
				v.I = -v.I
			} else {
				v.F = -v.F
			}
		}
		return v, nil
	case t.kind == tokString:
		p.pos++
		return reldb.Str(t.text), nil
	case p.accept(tokKeyword, "NULL"):
		return reldb.Null, nil
	case p.accept(tokKeyword, "TRUE"):
		return reldb.Bool(true), nil
	case p.accept(tokKeyword, "FALSE"):
		return reldb.Bool(false), nil
	}
	return reldb.Null, p.errf("expected literal, got %q", t.text)
}

func numberValue(text string) (reldb.Value, error) {
	if !strings.ContainsAny(text, ".eE") {
		i, err := strconv.ParseInt(text, 10, 64)
		if err == nil {
			return reldb.Int(i), nil
		}
	}
	f, err := strconv.ParseFloat(text, 64)
	if err != nil {
		return reldb.Null, fmt.Errorf("bad number %q", text)
	}
	return reldb.Float(f), nil
}

func (p *parser) createStmt() (Statement, error) {
	p.next() // CREATE
	unique := p.accept(tokKeyword, "UNIQUE")
	switch {
	case p.accept(tokKeyword, "TABLE"):
		if unique {
			return nil, p.errf("UNIQUE is not valid on CREATE TABLE")
		}
		ct := &CreateTable{}
		if p.accept(tokKeyword, "IF") {
			if _, err := p.expect(tokKeyword, "NOT"); err != nil {
				return nil, err
			}
			if _, err := p.expect(tokKeyword, "EXISTS"); err != nil {
				return nil, err
			}
			ct.IfNotExists = true
		}
		name, err := p.ident()
		if err != nil {
			return nil, err
		}
		ct.Name = name
		if _, err := p.expect(tokOp, "("); err != nil {
			return nil, err
		}
		for {
			cd, err := p.columnDef()
			if err != nil {
				return nil, err
			}
			ct.Columns = append(ct.Columns, cd)
			if p.accept(tokOp, ",") {
				continue
			}
			break
		}
		if _, err := p.expect(tokOp, ")"); err != nil {
			return nil, err
		}
		return ct, nil
	case p.accept(tokKeyword, "INDEX"):
		ci := &CreateIndex{Unique: unique, Using: "HASH"}
		name, err := p.ident()
		if err != nil {
			return nil, err
		}
		ci.Name = name
		if _, err := p.expect(tokKeyword, "ON"); err != nil {
			return nil, err
		}
		if ci.Table, err = p.ident(); err != nil {
			return nil, err
		}
		if _, err := p.expect(tokOp, "("); err != nil {
			return nil, err
		}
		for {
			col, err := p.ident()
			if err != nil {
				return nil, err
			}
			ci.Columns = append(ci.Columns, col)
			if p.accept(tokOp, ",") {
				continue
			}
			break
		}
		if _, err := p.expect(tokOp, ")"); err != nil {
			return nil, err
		}
		if p.accept(tokKeyword, "USING") {
			u, err := p.ident()
			if err != nil {
				return nil, err
			}
			switch strings.ToUpper(u) {
			case "HASH", "BTREE":
				ci.Using = strings.ToUpper(u)
			default:
				return nil, p.errf("unknown index method %q", u)
			}
		}
		return ci, nil
	}
	return nil, p.errf("expected TABLE or INDEX after CREATE")
}

func (p *parser) dropStmt() (Statement, error) {
	p.next() // DROP
	switch {
	case p.accept(tokKeyword, "TABLE"):
		dt := &DropTable{}
		if p.accept(tokKeyword, "IF") {
			if _, err := p.expect(tokKeyword, "EXISTS"); err != nil {
				return nil, err
			}
			dt.IfExists = true
		}
		name, err := p.ident()
		if err != nil {
			return nil, err
		}
		dt.Name = name
		return dt, nil
	case p.accept(tokKeyword, "INDEX"):
		di := &DropIndex{}
		name, err := p.ident()
		if err != nil {
			return nil, err
		}
		di.Name = name
		if _, err := p.expect(tokKeyword, "ON"); err != nil {
			return nil, err
		}
		if di.Table, err = p.ident(); err != nil {
			return nil, err
		}
		return di, nil
	}
	return nil, p.errf("expected TABLE or INDEX after DROP")
}

func (p *parser) alterStmt() (Statement, error) {
	p.next() // ALTER
	if _, err := p.expect(tokKeyword, "TABLE"); err != nil {
		return nil, err
	}
	name, err := p.ident()
	if err != nil {
		return nil, err
	}
	at := &AlterTable{Name: name}
	switch {
	case p.accept(tokKeyword, "ADD"):
		p.accept(tokKeyword, "COLUMN")
		cd, err := p.columnDef()
		if err != nil {
			return nil, err
		}
		at.Add = &cd
		return at, nil
	case p.accept(tokKeyword, "DROP"):
		p.accept(tokKeyword, "COLUMN")
		col, err := p.ident()
		if err != nil {
			return nil, err
		}
		at.DropCol = col
		return at, nil
	}
	return nil, p.errf("expected ADD or DROP after ALTER TABLE name")
}

// --- DML ---

func (p *parser) insertStmt() (Statement, error) {
	p.next() // INSERT
	if _, err := p.expect(tokKeyword, "INTO"); err != nil {
		return nil, err
	}
	table, err := p.ident()
	if err != nil {
		return nil, err
	}
	ins := &Insert{Table: table}
	if p.accept(tokOp, "(") {
		for {
			col, err := p.ident()
			if err != nil {
				return nil, err
			}
			ins.Columns = append(ins.Columns, col)
			if p.accept(tokOp, ",") {
				continue
			}
			break
		}
		if _, err := p.expect(tokOp, ")"); err != nil {
			return nil, err
		}
	}
	if _, err := p.expect(tokKeyword, "VALUES"); err != nil {
		return nil, err
	}
	for {
		if _, err := p.expect(tokOp, "("); err != nil {
			return nil, err
		}
		var row []Expr
		for {
			e, err := p.expr()
			if err != nil {
				return nil, err
			}
			row = append(row, e)
			if p.accept(tokOp, ",") {
				continue
			}
			break
		}
		if _, err := p.expect(tokOp, ")"); err != nil {
			return nil, err
		}
		ins.Rows = append(ins.Rows, row)
		if p.accept(tokOp, ",") {
			continue
		}
		break
	}
	return ins, nil
}

func (p *parser) updateStmt() (Statement, error) {
	p.next() // UPDATE
	table, err := p.ident()
	if err != nil {
		return nil, err
	}
	up := &Update{Table: table}
	if _, err := p.expect(tokKeyword, "SET"); err != nil {
		return nil, err
	}
	for {
		col, err := p.ident()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tokOp, "="); err != nil {
			return nil, err
		}
		e, err := p.expr()
		if err != nil {
			return nil, err
		}
		up.Sets = append(up.Sets, Assign{Column: col, Expr: e})
		if p.accept(tokOp, ",") {
			continue
		}
		break
	}
	if p.accept(tokKeyword, "WHERE") {
		if up.Where, err = p.expr(); err != nil {
			return nil, err
		}
	}
	return up, nil
}

func (p *parser) deleteStmt() (Statement, error) {
	p.next() // DELETE
	if _, err := p.expect(tokKeyword, "FROM"); err != nil {
		return nil, err
	}
	table, err := p.ident()
	if err != nil {
		return nil, err
	}
	del := &Delete{Table: table}
	if p.accept(tokKeyword, "WHERE") {
		if del.Where, err = p.expr(); err != nil {
			return nil, err
		}
	}
	return del, nil
}

func (p *parser) tableRef() (TableRef, error) {
	var tr TableRef
	if p.accept(tokOp, "(") {
		if !p.at(tokKeyword, "SELECT") {
			return tr, p.errf("expected SELECT in derived table")
		}
		sub, err := p.selectStmt()
		if err != nil {
			return tr, err
		}
		tr.Sub = sub.(*Select)
		if _, err := p.expect(tokOp, ")"); err != nil {
			return tr, err
		}
		p.accept(tokKeyword, "AS")
		alias, err := p.ident()
		if err != nil {
			return tr, p.errf("derived table needs an alias")
		}
		tr.Alias = alias
		tr.Table = alias
		return tr, nil
	}
	name, err := p.ident()
	if err != nil {
		return tr, err
	}
	tr.Table = name
	if p.accept(tokKeyword, "AS") {
		if tr.Alias, err = p.ident(); err != nil {
			return tr, err
		}
	} else if p.at(tokIdent, "") {
		tr.Alias = p.next().text
	}
	return tr, nil
}

func (p *parser) selectStmt() (Statement, error) {
	p.next() // SELECT
	sel := &Select{}
	sel.Distinct = p.accept(tokKeyword, "DISTINCT")
	for {
		item, err := p.selectItem()
		if err != nil {
			return nil, err
		}
		sel.Items = append(sel.Items, item)
		if p.accept(tokOp, ",") {
			continue
		}
		break
	}
	if _, err := p.expect(tokKeyword, "FROM"); err != nil {
		return nil, err
	}
	from, err := p.tableRef()
	if err != nil {
		return nil, err
	}
	sel.From = from
	for {
		var kind JoinKind
		switch {
		case p.accept(tokKeyword, "JOIN"):
			kind = InnerJoin
		case p.accept(tokKeyword, "INNER"):
			if _, err := p.expect(tokKeyword, "JOIN"); err != nil {
				return nil, err
			}
			kind = InnerJoin
		case p.accept(tokKeyword, "LEFT"):
			p.accept(tokKeyword, "OUTER")
			if _, err := p.expect(tokKeyword, "JOIN"); err != nil {
				return nil, err
			}
			kind = LeftJoin
		default:
			goto afterJoins
		}
		{
			tr, err := p.tableRef()
			if err != nil {
				return nil, err
			}
			if _, err := p.expect(tokKeyword, "ON"); err != nil {
				return nil, err
			}
			on, err := p.expr()
			if err != nil {
				return nil, err
			}
			sel.Joins = append(sel.Joins, Join{Kind: kind, TableRef: tr, On: on})
		}
	}
afterJoins:
	if p.accept(tokKeyword, "WHERE") {
		if sel.Where, err = p.expr(); err != nil {
			return nil, err
		}
	}
	if p.accept(tokKeyword, "GROUP") {
		if _, err := p.expect(tokKeyword, "BY"); err != nil {
			return nil, err
		}
		for {
			e, err := p.expr()
			if err != nil {
				return nil, err
			}
			sel.GroupBy = append(sel.GroupBy, e)
			if p.accept(tokOp, ",") {
				continue
			}
			break
		}
	}
	if p.accept(tokKeyword, "HAVING") {
		if sel.Having, err = p.expr(); err != nil {
			return nil, err
		}
	}
	if p.accept(tokKeyword, "ORDER") {
		if _, err := p.expect(tokKeyword, "BY"); err != nil {
			return nil, err
		}
		for {
			e, err := p.expr()
			if err != nil {
				return nil, err
			}
			item := OrderItem{Expr: e}
			if p.accept(tokKeyword, "DESC") {
				item.Desc = true
			} else {
				p.accept(tokKeyword, "ASC")
			}
			sel.OrderBy = append(sel.OrderBy, item)
			if p.accept(tokOp, ",") {
				continue
			}
			break
		}
	}
	if p.accept(tokKeyword, "LIMIT") {
		if sel.Limit, err = p.expr(); err != nil {
			return nil, err
		}
	}
	if p.accept(tokKeyword, "OFFSET") {
		if sel.Offset, err = p.expr(); err != nil {
			return nil, err
		}
	}
	return sel, nil
}

func (p *parser) selectItem() (SelectItem, error) {
	if p.accept(tokOp, "*") {
		return SelectItem{Star: true}, nil
	}
	// t.* form: identifier '.' '*'
	if p.at(tokIdent, "") && p.pos+2 < len(p.toks) &&
		p.toks[p.pos+1].kind == tokOp && p.toks[p.pos+1].text == "." &&
		p.toks[p.pos+2].kind == tokOp && p.toks[p.pos+2].text == "*" {
		table := p.next().text
		p.next()
		p.next()
		return SelectItem{Star: true, Table: table}, nil
	}
	e, err := p.expr()
	if err != nil {
		return SelectItem{}, err
	}
	item := SelectItem{Expr: e}
	if p.accept(tokKeyword, "AS") {
		if item.Alias, err = p.ident(); err != nil {
			return item, err
		}
	} else if p.at(tokIdent, "") {
		item.Alias = p.next().text
	}
	return item, nil
}

// --- expressions ---

// expr parses with precedence: OR < AND < NOT < comparison < additive <
// multiplicative < unary < primary.
func (p *parser) expr() (Expr, error) { return p.orExpr() }

func (p *parser) orExpr() (Expr, error) {
	l, err := p.andExpr()
	if err != nil {
		return nil, err
	}
	for p.accept(tokKeyword, "OR") {
		r, err := p.andExpr()
		if err != nil {
			return nil, err
		}
		l = &Binary{Op: OpOr, L: l, R: r}
	}
	return l, nil
}

func (p *parser) andExpr() (Expr, error) {
	l, err := p.notExpr()
	if err != nil {
		return nil, err
	}
	for p.accept(tokKeyword, "AND") {
		r, err := p.notExpr()
		if err != nil {
			return nil, err
		}
		l = &Binary{Op: OpAnd, L: l, R: r}
	}
	return l, nil
}

func (p *parser) notExpr() (Expr, error) {
	if p.accept(tokKeyword, "NOT") {
		x, err := p.notExpr()
		if err != nil {
			return nil, err
		}
		return &Unary{Neg: false, X: x}, nil
	}
	return p.cmpExpr()
}

func (p *parser) cmpExpr() (Expr, error) {
	l, err := p.addExpr()
	if err != nil {
		return nil, err
	}
	for {
		switch {
		case p.accept(tokOp, "="):
			r, err := p.addExpr()
			if err != nil {
				return nil, err
			}
			l = &Binary{Op: OpEq, L: l, R: r}
		case p.accept(tokOp, "<>"), p.accept(tokOp, "!="):
			r, err := p.addExpr()
			if err != nil {
				return nil, err
			}
			l = &Binary{Op: OpNe, L: l, R: r}
		case p.accept(tokOp, "<="):
			r, err := p.addExpr()
			if err != nil {
				return nil, err
			}
			l = &Binary{Op: OpLe, L: l, R: r}
		case p.accept(tokOp, ">="):
			r, err := p.addExpr()
			if err != nil {
				return nil, err
			}
			l = &Binary{Op: OpGe, L: l, R: r}
		case p.accept(tokOp, "<"):
			r, err := p.addExpr()
			if err != nil {
				return nil, err
			}
			l = &Binary{Op: OpLt, L: l, R: r}
		case p.accept(tokOp, ">"):
			r, err := p.addExpr()
			if err != nil {
				return nil, err
			}
			l = &Binary{Op: OpGt, L: l, R: r}
		case p.accept(tokKeyword, "LIKE"):
			r, err := p.addExpr()
			if err != nil {
				return nil, err
			}
			l = &Binary{Op: OpLike, L: l, R: r}
		case p.at(tokKeyword, "IS"):
			p.next()
			neg := p.accept(tokKeyword, "NOT")
			if _, err := p.expect(tokKeyword, "NULL"); err != nil {
				return nil, err
			}
			l = &IsNull{X: l, Neg: neg}
		case p.at(tokKeyword, "IN"), p.at(tokKeyword, "NOT"):
			neg := false
			if p.at(tokKeyword, "NOT") {
				// Only consume NOT when followed by IN/LIKE/BETWEEN.
				save := p.pos
				p.next()
				switch {
				case p.accept(tokKeyword, "LIKE"):
					r, err := p.addExpr()
					if err != nil {
						return nil, err
					}
					l = &Unary{X: &Binary{Op: OpLike, L: l, R: r}}
					continue
				case p.at(tokKeyword, "IN"):
					neg = true
				case p.at(tokKeyword, "BETWEEN"):
					neg = true
				default:
					p.pos = save
					return l, nil
				}
			}
			if p.accept(tokKeyword, "BETWEEN") {
				lo, err := p.addExpr()
				if err != nil {
					return nil, err
				}
				if _, err := p.expect(tokKeyword, "AND"); err != nil {
					return nil, err
				}
				hi, err := p.addExpr()
				if err != nil {
					return nil, err
				}
				l = &Between{X: l, Lo: lo, Hi: hi, Neg: neg}
				continue
			}
			if _, err := p.expect(tokKeyword, "IN"); err != nil {
				return nil, err
			}
			if _, err := p.expect(tokOp, "("); err != nil {
				return nil, err
			}
			if p.at(tokKeyword, "SELECT") {
				sub, err := p.selectStmt()
				if err != nil {
					return nil, err
				}
				if _, err := p.expect(tokOp, ")"); err != nil {
					return nil, err
				}
				l = &InList{X: l, Neg: neg, Sub: &Subquery{Select: sub.(*Select)}}
				continue
			}
			in := &InList{X: l, Neg: neg}
			for {
				e, err := p.expr()
				if err != nil {
					return nil, err
				}
				in.List = append(in.List, e)
				if p.accept(tokOp, ",") {
					continue
				}
				break
			}
			if _, err := p.expect(tokOp, ")"); err != nil {
				return nil, err
			}
			l = in
		case p.at(tokKeyword, "BETWEEN"):
			p.next()
			lo, err := p.addExpr()
			if err != nil {
				return nil, err
			}
			if _, err := p.expect(tokKeyword, "AND"); err != nil {
				return nil, err
			}
			hi, err := p.addExpr()
			if err != nil {
				return nil, err
			}
			l = &Between{X: l, Lo: lo, Hi: hi}
		default:
			return l, nil
		}
	}
}

func (p *parser) addExpr() (Expr, error) {
	l, err := p.mulExpr()
	if err != nil {
		return nil, err
	}
	for {
		switch {
		case p.accept(tokOp, "+"):
			r, err := p.mulExpr()
			if err != nil {
				return nil, err
			}
			l = &Binary{Op: OpAdd, L: l, R: r}
		case p.accept(tokOp, "-"):
			r, err := p.mulExpr()
			if err != nil {
				return nil, err
			}
			l = &Binary{Op: OpSub, L: l, R: r}
		case p.accept(tokOp, "||"):
			r, err := p.mulExpr()
			if err != nil {
				return nil, err
			}
			l = &Binary{Op: OpConcat, L: l, R: r}
		default:
			return l, nil
		}
	}
}

func (p *parser) mulExpr() (Expr, error) {
	l, err := p.unaryExpr()
	if err != nil {
		return nil, err
	}
	for {
		switch {
		case p.accept(tokOp, "*"):
			r, err := p.unaryExpr()
			if err != nil {
				return nil, err
			}
			l = &Binary{Op: OpMul, L: l, R: r}
		case p.accept(tokOp, "/"):
			r, err := p.unaryExpr()
			if err != nil {
				return nil, err
			}
			l = &Binary{Op: OpDiv, L: l, R: r}
		case p.accept(tokOp, "%"):
			r, err := p.unaryExpr()
			if err != nil {
				return nil, err
			}
			l = &Binary{Op: OpMod, L: l, R: r}
		default:
			return l, nil
		}
	}
}

func (p *parser) unaryExpr() (Expr, error) {
	if p.accept(tokOp, "-") {
		x, err := p.unaryExpr()
		if err != nil {
			return nil, err
		}
		return &Unary{Neg: true, X: x}, nil
	}
	p.accept(tokOp, "+")
	return p.primary()
}

func (p *parser) primary() (Expr, error) {
	t := p.cur()
	switch {
	case t.kind == tokNumber:
		p.pos++
		v, err := numberValue(t.text)
		if err != nil {
			return nil, p.errf("%v", err)
		}
		return &Literal{Value: v}, nil
	case t.kind == tokString:
		p.pos++
		return &Literal{Value: reldb.Str(t.text)}, nil
	case t.kind == tokParam:
		p.pos++
		e := &Param{Index: p.params}
		p.params++
		return e, nil
	case p.accept(tokKeyword, "NULL"):
		return &Literal{Value: reldb.Null}, nil
	case p.accept(tokKeyword, "TRUE"):
		return &Literal{Value: reldb.Bool(true)}, nil
	case p.accept(tokKeyword, "FALSE"):
		return &Literal{Value: reldb.Bool(false)}, nil
	case p.accept(tokOp, "("):
		if p.at(tokKeyword, "SELECT") {
			sub, err := p.selectStmt()
			if err != nil {
				return nil, err
			}
			if _, err := p.expect(tokOp, ")"); err != nil {
				return nil, err
			}
			return &Subquery{Select: sub.(*Select)}, nil
		}
		e, err := p.expr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tokOp, ")"); err != nil {
			return nil, err
		}
		return e, nil
	case t.kind == tokIdent:
		p.pos++
		name := t.text
		// Function call.
		if p.accept(tokOp, "(") {
			fc := &FuncCall{Name: strings.ToUpper(name)}
			if p.accept(tokOp, "*") {
				fc.Star = true
				if _, err := p.expect(tokOp, ")"); err != nil {
					return nil, err
				}
				return fc, nil
			}
			fc.Distinct = p.accept(tokKeyword, "DISTINCT")
			if !p.at(tokOp, ")") {
				for {
					e, err := p.expr()
					if err != nil {
						return nil, err
					}
					fc.Args = append(fc.Args, e)
					if p.accept(tokOp, ",") {
						continue
					}
					break
				}
			}
			if _, err := p.expect(tokOp, ")"); err != nil {
				return nil, err
			}
			return fc, nil
		}
		// Qualified column: table.column
		if p.accept(tokOp, ".") {
			col, err := p.ident()
			if err != nil {
				return nil, err
			}
			return &ColRef{Table: name, Name: col}, nil
		}
		return &ColRef{Name: name}, nil
	}
	return nil, p.errf("unexpected %q in expression", t.text)
}
