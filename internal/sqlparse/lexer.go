// Package sqlparse implements the SQL dialect PerfDMF speaks to the
// embedded engine: a lexer, AST and recursive-descent parser for the subset
// of ANSI SQL the framework needs (DDL with ALTER TABLE, multi-row INSERT,
// SELECT with joins/grouping/aggregates, UPDATE, DELETE, transactions).
// Keeping the dialect small and vendor-neutral is the point the paper makes
// about JDBC: analysis code never sees engine-specific syntax.
package sqlparse

import (
	"fmt"
	"strings"
	"unicode"
)

// tokenKind classifies a lexical token.
type tokenKind uint8

const (
	tokEOF tokenKind = iota
	tokIdent
	tokKeyword
	tokNumber
	tokString
	tokOp    // operators and punctuation
	tokParam // ? placeholder
)

type token struct {
	kind tokenKind
	text string // keywords upper-cased; identifiers as written
	pos  int    // byte offset in the input
}

// keywords recognized by the lexer. Identifiers that match (case-
// insensitively) are tagged tokKeyword with upper-cased text.
var keywords = map[string]bool{
	"SELECT": true, "FROM": true, "WHERE": true, "AND": true, "OR": true,
	"NOT": true, "INSERT": true, "INTO": true, "VALUES": true, "UPDATE": true,
	"SET": true, "DELETE": true, "CREATE": true, "TABLE": true, "DROP": true,
	"ALTER": true, "ADD": true, "COLUMN": true, "INDEX": true, "ON": true,
	"UNIQUE": true, "PRIMARY": true, "KEY": true, "FOREIGN": true,
	"REFERENCES": true, "DEFAULT": true, "NULL": true, "AUTO_INCREMENT": true,
	"JOIN": true, "INNER": true, "LEFT": true, "OUTER": true, "AS": true,
	"GROUP": true, "BY": true, "HAVING": true, "ORDER": true, "ASC": true,
	"DESC": true, "LIMIT": true, "OFFSET": true, "LIKE": true, "IN": true,
	"IS": true, "BETWEEN": true, "DISTINCT": true, "BEGIN": true,
	"COMMIT": true, "ROLLBACK": true, "TRANSACTION": true, "IF": true,
	"EXISTS": true, "USING": true, "TRUE": true, "FALSE": true,
	"EXPLAIN": true, "ANALYZE": true, "KILL": true, "COMPACT": true,
	"BIGINT":  true, "INT": true, "INTEGER": true, "DOUBLE": true,
	"FLOAT": true, "REAL": true, "VARCHAR": true, "TEXT": true,
	"BOOLEAN": true, "BOOL": true, "TIMESTAMP": true, "BLOB": true,
	"PRECISION": true, "CONSTRAINT": true,
}

// lexer splits a SQL string into tokens.
type lexer struct {
	src  string
	pos  int
	toks []token
}

// lex tokenizes src. It returns an error for unterminated strings or
// illegal characters; position information is byte-based.
func lex(src string) ([]token, error) {
	l := &lexer{src: src}
	for {
		l.skipSpace()
		if l.pos >= len(l.src) {
			l.emit(tokEOF, "", l.pos)
			return l.toks, nil
		}
		start := l.pos
		c := l.src[l.pos]
		switch {
		case c == '-' && l.peekAt(1) == '-':
			// Line comment.
			for l.pos < len(l.src) && l.src[l.pos] != '\n' {
				l.pos++
			}
		case isIdentStart(rune(c)):
			l.lexIdent(start)
		case c >= '0' && c <= '9' || (c == '.' && isDigit(l.peekAt(1))):
			l.lexNumber(start)
		case c == '\'':
			if err := l.lexString(start); err != nil {
				return nil, err
			}
		case c == '"' || c == '`':
			if err := l.lexQuotedIdent(start, c); err != nil {
				return nil, err
			}
		case c == '?':
			l.pos++
			l.emit(tokParam, "?", start)
		default:
			if err := l.lexOp(start); err != nil {
				return nil, err
			}
		}
	}
}

func (l *lexer) emit(kind tokenKind, text string, pos int) {
	l.toks = append(l.toks, token{kind: kind, text: text, pos: pos})
}

func (l *lexer) skipSpace() {
	for l.pos < len(l.src) && (l.src[l.pos] == ' ' || l.src[l.pos] == '\t' ||
		l.src[l.pos] == '\n' || l.src[l.pos] == '\r') {
		l.pos++
	}
}

func (l *lexer) peekAt(off int) byte {
	if l.pos+off < len(l.src) {
		return l.src[l.pos+off]
	}
	return 0
}

func isIdentStart(r rune) bool {
	return r == '_' || unicode.IsLetter(r)
}

func isIdentPart(r rune) bool {
	return r == '_' || r == '$' || unicode.IsLetter(r) || unicode.IsDigit(r)
}

func isDigit(c byte) bool { return c >= '0' && c <= '9' }

func (l *lexer) lexIdent(start int) {
	for l.pos < len(l.src) && isIdentPart(rune(l.src[l.pos])) {
		l.pos++
	}
	word := l.src[start:l.pos]
	upper := strings.ToUpper(word)
	if keywords[upper] {
		l.emit(tokKeyword, upper, start)
	} else {
		l.emit(tokIdent, word, start)
	}
}

func (l *lexer) lexNumber(start int) {
	seenDot, seenExp := false, false
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		switch {
		case isDigit(c):
			l.pos++
		case c == '.' && !seenDot && !seenExp:
			seenDot = true
			l.pos++
		case (c == 'e' || c == 'E') && !seenExp && l.pos > start:
			seenExp = true
			l.pos++
			if l.pos < len(l.src) && (l.src[l.pos] == '+' || l.src[l.pos] == '-') {
				l.pos++
			}
		default:
			l.emit(tokNumber, l.src[start:l.pos], start)
			return
		}
	}
	l.emit(tokNumber, l.src[start:l.pos], start)
}

// lexString scans a single-quoted SQL string; ” is the escaped quote.
func (l *lexer) lexString(start int) error {
	l.pos++ // opening quote
	var b strings.Builder
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		if c == '\'' {
			if l.peekAt(1) == '\'' {
				b.WriteByte('\'')
				l.pos += 2
				continue
			}
			l.pos++
			l.emit(tokString, b.String(), start)
			return nil
		}
		b.WriteByte(c)
		l.pos++
	}
	return fmt.Errorf("sqlparse: unterminated string at offset %d", start)
}

// lexQuotedIdent scans a "double-quoted" or `backtick` identifier.
func (l *lexer) lexQuotedIdent(start int, quote byte) error {
	l.pos++
	from := l.pos
	for l.pos < len(l.src) {
		if l.src[l.pos] == quote {
			l.emit(tokIdent, l.src[from:l.pos], start)
			l.pos++
			return nil
		}
		l.pos++
	}
	return fmt.Errorf("sqlparse: unterminated quoted identifier at offset %d", start)
}

func (l *lexer) lexOp(start int) error {
	two := ""
	if l.pos+1 < len(l.src) {
		two = l.src[l.pos : l.pos+2]
	}
	switch two {
	case "<=", ">=", "<>", "!=", "||":
		l.pos += 2
		l.emit(tokOp, two, start)
		return nil
	}
	c := l.src[l.pos]
	switch c {
	case '(', ')', ',', '*', '+', '-', '/', '%', '=', '<', '>', '.', ';':
		l.pos++
		l.emit(tokOp, string(c), start)
		return nil
	}
	return fmt.Errorf("sqlparse: illegal character %q at offset %d", c, start)
}
