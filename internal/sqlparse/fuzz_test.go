package sqlparse

import (
	"bufio"
	"os"
	"strconv"
	"strings"
	"testing"
)

// seedCorpus reads testdata/sql_seed.txt — one Go-quoted literal per line,
// regenerated with `perfdmf-vet -dump-sql` — so the fuzzer starts from
// every SQL statement the repo actually issues.
func seedCorpus(f *testing.F) {
	file, err := os.Open("testdata/sql_seed.txt")
	if err != nil {
		f.Fatalf("seed corpus: %v (regenerate with perfdmf-vet -dump-sql)", err)
	}
	defer file.Close()
	sc := bufio.NewScanner(file)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	n := 0
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		sql, err := strconv.Unquote(line)
		if err != nil {
			f.Fatalf("seed corpus: bad line %q: %v", line, err)
		}
		f.Add(sql)
		n++
	}
	if err := sc.Err(); err != nil {
		f.Fatalf("seed corpus: %v", err)
	}
	if n == 0 {
		f.Fatal("seed corpus is empty")
	}
}

// FuzzParse asserts the parser is total: any input either parses or
// returns an error — it must not panic, hang, or let an un-parseable
// statement through as a nil Statement.
func FuzzParse(f *testing.F) {
	seedCorpus(f)
	f.Add("SELECT 1")
	f.Add("INSERT INTO t (a) VALUES (?); DELETE FROM t WHERE a = ?")
	f.Add("SELECT 'unterminated")
	f.Add("-- just a comment\n")
	f.Fuzz(func(t *testing.T, src string) {
		if st, err := Parse(src); err == nil && st == nil {
			t.Fatalf("Parse(%q) returned nil statement and nil error", src)
		}
		sts, err := ParseScript(src)
		if err != nil {
			return
		}
		for i, st := range sts {
			if st == nil {
				t.Fatalf("ParseScript(%q) statement %d is nil with nil error", src, i)
			}
		}
	})
}
