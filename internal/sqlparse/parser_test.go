package sqlparse

import (
	"testing"

	"perfdmf/internal/reldb"
)

func mustParse(t *testing.T, src string) Statement {
	t.Helper()
	st, err := Parse(src)
	if err != nil {
		t.Fatalf("Parse(%q): %v", src, err)
	}
	return st
}

func TestParseCreateTable(t *testing.T) {
	st := mustParse(t, `CREATE TABLE IF NOT EXISTS trial (
		id BIGINT PRIMARY KEY AUTO_INCREMENT,
		experiment BIGINT NOT NULL REFERENCES experiment(id),
		name VARCHAR(4096),
		node_count INT DEFAULT 0,
		date TIMESTAMP,
		ok BOOLEAN DEFAULT TRUE,
		ratio DOUBLE PRECISION DEFAULT -1.5
	)`)
	ct, ok := st.(*CreateTable)
	if !ok {
		t.Fatalf("got %T", st)
	}
	if !ct.IfNotExists || ct.Name != "trial" || len(ct.Columns) != 7 {
		t.Fatalf("header: %+v", ct)
	}
	id := ct.Columns[0]
	if !id.PrimaryKey || !id.AutoIncrement || id.Type != reldb.TInt {
		t.Errorf("id column: %+v", id)
	}
	exp := ct.Columns[1]
	if !exp.NotNull || exp.References == nil || exp.References.Table != "experiment" ||
		exp.References.Column != "id" {
		t.Errorf("experiment column: %+v", exp)
	}
	if ct.Columns[3].Default.AsInt() != 0 || ct.Columns[3].Default.IsNull() {
		t.Errorf("node_count default: %+v", ct.Columns[3].Default)
	}
	if !ct.Columns[5].Default.AsBool() {
		t.Errorf("ok default: %+v", ct.Columns[5].Default)
	}
	if ct.Columns[6].Default.AsFloat() != -1.5 {
		t.Errorf("ratio default: %+v", ct.Columns[6].Default)
	}
}

func TestParseDropAlterIndex(t *testing.T) {
	if dt := mustParse(t, "DROP TABLE IF EXISTS trial").(*DropTable); !dt.IfExists || dt.Name != "trial" {
		t.Errorf("drop: %+v", dt)
	}
	at := mustParse(t, "ALTER TABLE application ADD COLUMN compiler VARCHAR DEFAULT 'gcc'").(*AlterTable)
	if at.Add == nil || at.Add.Name != "compiler" || at.Add.Default.S != "gcc" {
		t.Errorf("alter add: %+v", at.Add)
	}
	at = mustParse(t, "ALTER TABLE application DROP COLUMN compiler").(*AlterTable)
	if at.DropCol != "compiler" {
		t.Errorf("alter drop: %+v", at)
	}
	ci := mustParse(t, "CREATE UNIQUE INDEX ix ON trial (name) USING btree").(*CreateIndex)
	if !ci.Unique || ci.Table != "trial" || len(ci.Columns) != 1 || ci.Columns[0] != "name" || ci.Using != "BTREE" {
		t.Errorf("create index: %+v", ci)
	}
	di := mustParse(t, "DROP INDEX ix ON trial").(*DropIndex)
	if di.Name != "ix" || di.Table != "trial" {
		t.Errorf("drop index: %+v", di)
	}
}

func TestParseInsert(t *testing.T) {
	ins := mustParse(t, `INSERT INTO metric (trial, name) VALUES (1, 'TIME'), (?, ?)`).(*Insert)
	if ins.Table != "metric" || len(ins.Columns) != 2 || len(ins.Rows) != 2 {
		t.Fatalf("insert: %+v", ins)
	}
	if lit, ok := ins.Rows[0][0].(*Literal); !ok || lit.Value.AsInt() != 1 {
		t.Errorf("row0 col0: %#v", ins.Rows[0][0])
	}
	if pm, ok := ins.Rows[1][0].(*Param); !ok || pm.Index != 0 {
		t.Errorf("row1 col0: %#v", ins.Rows[1][0])
	}
	if pm, ok := ins.Rows[1][1].(*Param); !ok || pm.Index != 1 {
		t.Errorf("row1 col1: %#v", ins.Rows[1][1])
	}
	// Without a column list.
	ins = mustParse(t, `INSERT INTO t VALUES (1, 'a')`).(*Insert)
	if len(ins.Columns) != 0 || len(ins.Rows[0]) != 2 {
		t.Errorf("bare insert: %+v", ins)
	}
}

func TestParseSelect(t *testing.T) {
	st := mustParse(t, `
		SELECT e.name, COUNT(*) AS n, AVG(t.node_count) mean_nodes
		FROM experiment e
		JOIN trial t ON t.experiment = e.id
		WHERE e.application = ? AND t.node_count >= 128
		GROUP BY e.name
		HAVING COUNT(*) > 1
		ORDER BY n DESC, e.name
		LIMIT 10 OFFSET 5`)
	sel := st.(*Select)
	if len(sel.Items) != 3 {
		t.Fatalf("items: %d", len(sel.Items))
	}
	if sel.Items[1].Alias != "n" || sel.Items[2].Alias != "mean_nodes" {
		t.Errorf("aliases: %+v", sel.Items)
	}
	if sel.From.Table != "experiment" || sel.From.Alias != "e" {
		t.Errorf("from: %+v", sel.From)
	}
	if len(sel.Joins) != 1 || sel.Joins[0].Kind != InnerJoin || sel.Joins[0].Alias != "t" {
		t.Errorf("joins: %+v", sel.Joins)
	}
	if sel.Where == nil || len(sel.GroupBy) != 1 || sel.Having == nil {
		t.Error("missing where/group/having")
	}
	if len(sel.OrderBy) != 2 || !sel.OrderBy[0].Desc || sel.OrderBy[1].Desc {
		t.Errorf("order: %+v", sel.OrderBy)
	}
	if sel.Limit == nil || sel.Offset == nil {
		t.Error("missing limit/offset")
	}
}

func TestParseSelectStar(t *testing.T) {
	sel := mustParse(t, "SELECT * FROM trial").(*Select)
	if !sel.Items[0].Star || sel.Items[0].Table != "" {
		t.Errorf("star: %+v", sel.Items[0])
	}
	sel = mustParse(t, "SELECT t.* , 1 FROM trial t").(*Select)
	if !sel.Items[0].Star || sel.Items[0].Table != "t" {
		t.Errorf("qualified star: %+v", sel.Items[0])
	}
	sel = mustParse(t, "SELECT DISTINCT name FROM trial").(*Select)
	if !sel.Distinct {
		t.Error("distinct lost")
	}
}

func TestParseLeftJoin(t *testing.T) {
	sel := mustParse(t, "SELECT * FROM a LEFT OUTER JOIN b ON a.id = b.aid").(*Select)
	if len(sel.Joins) != 1 || sel.Joins[0].Kind != LeftJoin {
		t.Fatalf("joins: %+v", sel.Joins)
	}
}

func TestParseExprForms(t *testing.T) {
	sel := mustParse(t, `SELECT 1 FROM t WHERE
		a BETWEEN 1 AND 10
		AND b NOT IN (1, 2, 3)
		AND c IS NOT NULL
		AND d LIKE 'MPI%'
		AND NOT (e = 1 OR f < -2.5e3)
		AND g NOT BETWEEN 1 AND 2
		AND h NOT LIKE '%x'`).(*Select)
	if sel.Where == nil {
		t.Fatal("no where")
	}
	// Spot-check a couple of node shapes by walking the AND spine.
	var leaves []Expr
	var walk func(e Expr)
	walk = func(e Expr) {
		if b, ok := e.(*Binary); ok && b.Op == OpAnd {
			walk(b.L)
			walk(b.R)
			return
		}
		leaves = append(leaves, e)
	}
	walk(sel.Where)
	if len(leaves) != 7 {
		t.Fatalf("got %d conjuncts", len(leaves))
	}
	if bt, ok := leaves[0].(*Between); !ok || bt.Neg {
		t.Errorf("leaf0: %#v", leaves[0])
	}
	if in, ok := leaves[1].(*InList); !ok || !in.Neg || len(in.List) != 3 {
		t.Errorf("leaf1: %#v", leaves[1])
	}
	if isn, ok := leaves[2].(*IsNull); !ok || !isn.Neg {
		t.Errorf("leaf2: %#v", leaves[2])
	}
	if like, ok := leaves[3].(*Binary); !ok || like.Op != OpLike {
		t.Errorf("leaf3: %#v", leaves[3])
	}
	if not, ok := leaves[4].(*Unary); !ok || not.Neg {
		t.Errorf("leaf4: %#v", leaves[4])
	}
	if bt, ok := leaves[5].(*Between); !ok || !bt.Neg {
		t.Errorf("leaf5: %#v", leaves[5])
	}
	if not, ok := leaves[6].(*Unary); !ok || not.Neg {
		t.Errorf("leaf6: %#v", leaves[6])
	}
}

func TestParsePrecedence(t *testing.T) {
	sel := mustParse(t, "SELECT 1 + 2 * 3 FROM t").(*Select)
	b := sel.Items[0].Expr.(*Binary)
	if b.Op != OpAdd {
		t.Fatalf("top op: %v", b.Op)
	}
	if inner, ok := b.R.(*Binary); !ok || inner.Op != OpMul {
		t.Fatalf("right: %#v", b.R)
	}
	// Parentheses override.
	sel = mustParse(t, "SELECT (1 + 2) * 3 FROM t").(*Select)
	b = sel.Items[0].Expr.(*Binary)
	if b.Op != OpMul {
		t.Fatalf("top op with parens: %v", b.Op)
	}
}

func TestParseUpdateDelete(t *testing.T) {
	up := mustParse(t, "UPDATE trial SET name = 'x', node_count = node_count + 1 WHERE id = ?").(*Update)
	if up.Table != "trial" || len(up.Sets) != 2 || up.Where == nil {
		t.Fatalf("update: %+v", up)
	}
	del := mustParse(t, "DELETE FROM trial WHERE id = 3").(*Delete)
	if del.Table != "trial" || del.Where == nil {
		t.Fatalf("delete: %+v", del)
	}
	del = mustParse(t, "DELETE FROM trial").(*Delete)
	if del.Where != nil {
		t.Fatal("unexpected where")
	}
}

func TestParseTransactions(t *testing.T) {
	if _, ok := mustParse(t, "BEGIN").(*Begin); !ok {
		t.Error("BEGIN")
	}
	if _, ok := mustParse(t, "BEGIN TRANSACTION").(*Begin); !ok {
		t.Error("BEGIN TRANSACTION")
	}
	if _, ok := mustParse(t, "COMMIT").(*Commit); !ok {
		t.Error("COMMIT")
	}
	if _, ok := mustParse(t, "ROLLBACK;").(*Rollback); !ok {
		t.Error("ROLLBACK")
	}
}

func TestParseScript(t *testing.T) {
	stmts, err := ParseScript(`
		CREATE TABLE a (id BIGINT PRIMARY KEY);
		-- a comment
		INSERT INTO a VALUES (1);
		SELECT * FROM a;
	`)
	if err != nil {
		t.Fatal(err)
	}
	if len(stmts) != 3 {
		t.Fatalf("got %d statements", len(stmts))
	}
}

func TestParseStrings(t *testing.T) {
	ins := mustParse(t, `INSERT INTO t VALUES ('it''s', 'a')`).(*Insert)
	if lit := ins.Rows[0][0].(*Literal); lit.Value.S != "it's" {
		t.Errorf("escaped quote: %q", lit.Value.S)
	}
	// Quoted identifiers.
	sel := mustParse(t, `SELECT "name", `+"`group`"+` FROM "trial"`).(*Select)
	if cr := sel.Items[0].Expr.(*ColRef); cr.Name != "name" {
		t.Errorf("quoted ident: %+v", cr)
	}
	if cr := sel.Items[1].Expr.(*ColRef); cr.Name != "group" {
		t.Errorf("backtick ident: %+v", cr)
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"",
		"SELEC * FROM t",
		"SELECT FROM t",
		"SELECT * FROM",
		"INSERT INTO t (a VALUES (1)",
		"CREATE TABLE t ()",
		"CREATE TABLE t (a FOO)",
		"UPDATE t SET",
		"DELETE t",
		"SELECT 'unterminated FROM t",
		"SELECT * FROM t WHERE a @ 1",
		"SELECT * FROM t; garbage",
		"CREATE INDEX i ON t (a) USING quadtree",
	}
	for _, src := range bad {
		if _, err := Parse(src); err == nil {
			t.Errorf("Parse(%q) succeeded, want error", src)
		}
	}
}

func TestParamNumbering(t *testing.T) {
	sel := mustParse(t, "SELECT * FROM t WHERE a = ? AND b = ? AND c IN (?, ?)").(*Select)
	max := -1
	var walk func(e Expr)
	walk = func(e Expr) {
		switch e := e.(type) {
		case *Param:
			if e.Index > max {
				max = e.Index
			}
		case *Binary:
			walk(e.L)
			walk(e.R)
		case *InList:
			walk(e.X)
			for _, x := range e.List {
				walk(x)
			}
		}
	}
	walk(sel.Where)
	if max != 3 {
		t.Fatalf("max param index = %d, want 3", max)
	}
}
