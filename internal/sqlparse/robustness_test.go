package sqlparse

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

// Parse must never panic, whatever bytes arrive: it either returns a
// statement or an error. This is the property a long-lived analysis server
// depends on when users type SQL at it.
func TestParseNeverPanics(t *testing.T) {
	f := func(src string) bool {
		defer func() {
			if r := recover(); r != nil {
				t.Fatalf("Parse(%q) panicked: %v", src, r)
			}
		}()
		Parse(src) //nolint:errcheck // only looking for panics
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

// Mutated real statements exercise deeper parser paths than random bytes.
func TestParseMutatedStatements(t *testing.T) {
	seeds := []string{
		`SELECT e.name, COUNT(*) FROM interval_event e JOIN t x ON x.a = e.id
		 WHERE e.trial = ? GROUP BY e.name HAVING COUNT(*) > 1 ORDER BY 2 DESC LIMIT 5`,
		`INSERT INTO metric (trial, name) VALUES (1, 'TIME'), (?, ?)`,
		`CREATE TABLE t (id BIGINT PRIMARY KEY AUTO_INCREMENT, v DOUBLE DEFAULT -1.5)`,
		`UPDATE trial SET name = 'x' WHERE id IN (SELECT id FROM t)`,
		`EXPLAIN SELECT * FROM t WHERE a BETWEEN 1 AND 2`,
	}
	rng := rand.New(rand.NewSource(99))
	for _, seed := range seeds {
		for i := 0; i < 500; i++ {
			b := []byte(seed)
			// Apply 1-4 mutations: deletion, duplication, or byte swap.
			for m := 0; m < 1+rng.Intn(4); m++ {
				if len(b) < 2 {
					break
				}
				pos := rng.Intn(len(b))
				switch rng.Intn(3) {
				case 0:
					b = append(b[:pos], b[pos+1:]...)
				case 1:
					b = append(b[:pos], append([]byte{b[pos]}, b[pos:]...)...)
				case 2:
					b[pos] = byte(rng.Intn(128))
				}
			}
			func() {
				defer func() {
					if r := recover(); r != nil {
						t.Fatalf("Parse(%q) panicked: %v", string(b), r)
					}
				}()
				Parse(string(b)) //nolint:errcheck
			}()
		}
	}
}

// Pathologically nested input must error out, not blow the stack (the
// parser recurses; ~100k parens would be a real crash without limits, but
// a few thousand must be handled or rejected cleanly).
func TestParseDeepNesting(t *testing.T) {
	depth := 10000
	src := "SELECT " + strings.Repeat("(", depth) + "1" + strings.Repeat(")", depth) + " FROM t"
	done := make(chan struct{})
	go func() {
		defer close(done)
		defer func() { recover() }() //nolint:errcheck // stack overflow guard is the point
		Parse(src)                   //nolint:errcheck
	}()
	<-done
}
