package mpip

import (
	"math"
	"path/filepath"
	"strings"
	"testing"

	"perfdmf/internal/model"
)

const sampleReport = `@ mpiP
@ Command : sweep3d.mpi
@ Version : 2.8.1
@ MPIP env var : [null]

@--- MPI Time (seconds) ----------------------------------
Task    AppTime    MPITime     MPI%
   0       10.0        2.5    25.00
   1       10.2        3.0    29.41
   *       20.2        5.5    27.23

@--- Callsites: 2 ----------------------------------------
 ID Lev File/Address   Line Parent_Funct   MPI_Call
  1   0 sweep.c         123 sweep          Send
  2   0 sweep.c         145 sweep          Recv

@--- Aggregate Time (top twenty, descending, milliseconds) ---
Call                 Site       Time    App%    MPI%     COV
Send                    1       3000   14.85   54.55    0.10

@--- Callsite Time statistics (all, milliseconds): 4 -----
Name            Site Rank  Count      Max     Mean      Min   App%   MPI%
Send               1    0    100     20.0     15.0     10.0  15.00  60.00
Send               1    1    100     20.0     16.0     10.0  15.69  53.33
Recv               2    0     50     25.0     20.0     15.0  10.00  40.00
Recv               2    1     50     30.0     28.0     20.0  13.73  46.67
Send               1    *    200     20.0     15.5     10.0  15.35  56.36
`

func TestParseSample(t *testing.T) {
	p, err := Parse(strings.NewReader(sampleReport))
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	if p.NumThreads() != 2 {
		t.Fatalf("threads: %d", p.NumThreads())
	}
	app := p.FindIntervalEvent(AppEventName)
	if app == nil {
		t.Fatal("no Application event")
	}
	d0 := p.FindThread(0, 0, 0).FindIntervalData(app.ID)
	if d0.PerMetric[0].Inclusive != 10.0e6 {
		t.Errorf("rank0 app inclusive = %g", d0.PerMetric[0].Inclusive)
	}
	if d0.PerMetric[0].Exclusive != 7.5e6 {
		t.Errorf("rank0 app exclusive = %g", d0.PerMetric[0].Exclusive)
	}
	// Callsite event with resolved file/line in the name.
	var sendEvent *model.IntervalEvent
	for _, e := range p.IntervalEvents() {
		if strings.HasPrefix(e.Name, "MPI_Send() [site 1") {
			sendEvent = e
		}
	}
	if sendEvent == nil {
		t.Fatalf("no resolved Send callsite among %v", p.IntervalEvents())
	}
	if sendEvent.Group != "MPI" {
		t.Errorf("group: %q", sendEvent.Group)
	}
	d1 := p.FindThread(1, 0, 0).FindIntervalData(sendEvent.ID)
	// 100 calls × 16 ms = 1.6 s = 1.6e6 us.
	if math.Abs(d1.PerMetric[0].Inclusive-1.6e6) > 1 {
		t.Errorf("rank1 send total = %g", d1.PerMetric[0].Inclusive)
	}
	if d1.NumCalls != 100 {
		t.Errorf("rank1 send calls = %g", d1.NumCalls)
	}
}

func TestParseErrors(t *testing.T) {
	if _, err := Parse(strings.NewReader("no header here")); err == nil {
		t.Error("missing header accepted")
	}
	if _, err := Parse(strings.NewReader("@ mpiP\n@--- MPI Time (seconds) ---\nTask AppTime MPITime MPI%\n")); err == nil {
		t.Error("empty MPI Time accepted")
	}
	bad := "@ mpiP\n@--- MPI Time (seconds) ---\n 0 ten 2.5 25\n"
	if _, err := Parse(strings.NewReader(bad)); err == nil {
		t.Error("bad numeric row accepted")
	}
	if _, err := Read(filepath.Join(t.TempDir(), "missing")); err == nil {
		t.Error("missing file accepted")
	}
}

func TestRoundTrip(t *testing.T) {
	orig, err := Parse(strings.NewReader(sampleReport))
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "app.mpiP")
	if err := Write(path, orig); err != nil {
		t.Fatal(err)
	}
	got, err := Read(path)
	if err != nil {
		t.Fatal(err)
	}
	// Application rows must round-trip numerically (names of callsites are
	// regenerated, so compare totals instead).
	app := got.FindIntervalEvent(AppEventName)
	if app == nil {
		t.Fatal("round trip lost Application event")
	}
	for rank := 0; rank < 2; rank++ {
		wd := orig.FindThread(rank, 0, 0).FindIntervalData(orig.FindIntervalEvent(AppEventName).ID)
		gd := got.FindThread(rank, 0, 0).FindIntervalData(app.ID)
		if math.Abs(wd.PerMetric[0].Inclusive-gd.PerMetric[0].Inclusive) > 1e3 {
			t.Errorf("rank %d app time: got %g want %g", rank,
				gd.PerMetric[0].Inclusive, wd.PerMetric[0].Inclusive)
		}
	}
	// Total MPI time across all callsites must match.
	sumMPI := func(p *model.Profile) float64 {
		total := 0.0
		for _, e := range p.IntervalEvents() {
			if e.Group != "MPI" {
				continue
			}
			for _, th := range p.Threads() {
				if d := th.FindIntervalData(e.ID); d != nil {
					total += d.PerMetric[0].Inclusive
				}
			}
		}
		return total
	}
	if w, g := sumMPI(orig), sumMPI(got); math.Abs(w-g) > 1e3 {
		t.Errorf("total callsite time: got %g want %g", g, w)
	}
}

func TestWriteErrors(t *testing.T) {
	p := model.New("x")
	if err := Write(filepath.Join(t.TempDir(), "f"), p); err == nil {
		t.Error("profile without TIME accepted")
	}
}
