// Package mpip parses mpiP reports (Vetter & Chambreau), the lightweight
// MPI profiling format the paper imports. The sections consumed are:
//
//	@--- MPI Time (seconds) ---
//	Task    AppTime    MPITime     MPI%
//	   0       10.1        2.5    24.75
//	   *       40.4       10.0    24.75
//
//	@--- Callsites: N ---
//	 ID Lev File/Address    Line Parent_Funct   MPI_Call
//	  1   0 sweep.c          123 sweep          Send
//
//	@--- Callsite Time statistics (all, milliseconds): N ---
//	Name    Site Rank  Count      Max     Mean      Min   App%   MPI%
//	Send       1    0    100     2.50     2.00     1.50   4.95   20.0
//
// Per rank, an "Application" event carries AppTime (inclusive) with MPITime
// folded in, and each callsite becomes an "MPI_<Call>() [site N at
// <file>:<line>]" leaf event whose total time is Count × Mean. Ranks map to
// nodes; milliseconds and seconds are converted to microseconds.
package mpip

import (
	"bufio"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"

	"perfdmf/internal/model"
)

// MetricName is the metric mpiP reports record.
const MetricName = "TIME"

const (
	secondsToMicro = 1e6
	millisToMicro  = 1e3
)

// AppEventName is the per-rank whole-application event.
const AppEventName = "Application"

// Read parses an mpiP report file.
func Read(path string) (*model.Profile, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("mpip: %w", err)
	}
	defer f.Close()
	p, err := Parse(f)
	if err != nil {
		return nil, fmt.Errorf("mpip: %s: %w", path, err)
	}
	p.Name = path
	return p, nil
}

type callsite struct {
	id     int
	file   string
	line   int
	parent string
	call   string
}

// Parse parses an mpiP report from a reader.
func Parse(r io.Reader) (*model.Profile, error) {
	p := model.New("mpip")
	metric := p.AddMetric(MetricName)

	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<16), 1<<22)

	const (
		secNone = iota
		secMPITime
		secCallsites
		secStats
	)
	section := secNone
	sawHeader := false
	callsites := make(map[int]callsite)
	// Deferred per-rank MPI totals so the Application event can subtract
	// MPI time for its exclusive value.
	appTime := make(map[int]float64) // rank -> app time (us)
	mpiTime := make(map[int]float64) // rank -> mpi time (us)

	for sc.Scan() {
		line := sc.Text()
		trimmed := strings.TrimSpace(line)
		switch {
		case strings.HasPrefix(trimmed, "@ mpiP"):
			sawHeader = true
			continue
		case strings.HasPrefix(trimmed, "@---"):
			switch {
			case strings.Contains(trimmed, "MPI Time"):
				section = secMPITime
			case strings.Contains(trimmed, "Callsite Time statistics"):
				section = secStats
			case strings.Contains(trimmed, "Callsites"):
				section = secCallsites
			default:
				section = secNone
			}
			continue
		case strings.HasPrefix(trimmed, "@"):
			continue // other metadata lines
		}
		if trimmed == "" {
			continue
		}
		switch section {
		case secMPITime:
			fields := strings.Fields(trimmed)
			if len(fields) < 3 || fields[0] == "Task" {
				continue
			}
			if fields[0] == "*" {
				continue // aggregate row
			}
			rank, err := strconv.Atoi(fields[0])
			if err != nil {
				continue
			}
			app, err1 := strconv.ParseFloat(fields[1], 64)
			mpi, err2 := strconv.ParseFloat(fields[2], 64)
			if err1 != nil || err2 != nil {
				return nil, fmt.Errorf("bad MPI Time row %q", trimmed)
			}
			appTime[rank] = app * secondsToMicro
			mpiTime[rank] = mpi * secondsToMicro
		case secCallsites:
			fields := strings.Fields(trimmed)
			if len(fields) < 6 || fields[0] == "ID" {
				continue
			}
			id, err := strconv.Atoi(fields[0])
			if err != nil {
				continue
			}
			ln, _ := strconv.Atoi(fields[3])
			callsites[id] = callsite{
				id: id, file: fields[2], line: ln, parent: fields[4], call: fields[5],
			}
		case secStats:
			fields := strings.Fields(trimmed)
			if len(fields) < 6 || fields[0] == "Name" {
				continue
			}
			if fields[2] == "*" {
				continue // aggregate row
			}
			site, err := strconv.Atoi(fields[1])
			if err != nil {
				continue
			}
			rank, err := strconv.Atoi(fields[2])
			if err != nil {
				return nil, fmt.Errorf("bad stats rank in %q", trimmed)
			}
			count, err1 := strconv.ParseFloat(fields[3], 64)
			mean, err2 := strconv.ParseFloat(fields[5], 64)
			if err1 != nil || err2 != nil {
				return nil, fmt.Errorf("bad stats row %q", trimmed)
			}
			cs, ok := callsites[site]
			name := fields[0]
			if ok {
				name = fmt.Sprintf("MPI_%s() [site %d at %s:%d]", cs.call, site, cs.file, cs.line)
			} else {
				name = fmt.Sprintf("MPI_%s() [site %d]", name, site)
			}
			e := p.AddIntervalEvent(name, "MPI")
			th := p.Thread(rank, 0, 0)
			d := th.IntervalData(e.ID, len(p.Metrics()))
			total := count * mean * millisToMicro
			d.NumCalls += count
			d.PerMetric[metric].Inclusive += total
			d.PerMetric[metric].Exclusive += total
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if !sawHeader {
		return nil, fmt.Errorf("not an mpiP report (missing '@ mpiP' header)")
	}
	if len(appTime) == 0 {
		return nil, fmt.Errorf("report has no 'MPI Time' section rows")
	}

	app := p.AddIntervalEvent(AppEventName, "APPLICATION")
	for rank, t := range appTime {
		th := p.Thread(rank, 0, 0)
		d := th.IntervalData(app.ID, len(p.Metrics()))
		d.NumCalls = 1
		excl := t - mpiTime[rank]
		if excl < 0 {
			excl = 0
		}
		d.PerMetric[metric] = model.MetricData{Inclusive: t, Exclusive: excl}
	}
	return p, nil
}

// Write renders a profile as an mpiP-style report. Events in group "MPI"
// become callsites; the AppEventName event supplies per-rank app time.
func Write(path string, p *model.Profile) error {
	metric := p.MetricID(MetricName)
	if metric < 0 {
		return fmt.Errorf("mpip: profile has no %s metric", MetricName)
	}
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("mpip: %w", err)
	}
	w := bufio.NewWriter(f)

	fmt.Fprintf(w, "@ mpiP\n")
	fmt.Fprintf(w, "@ Command : %s\n", p.Name)
	fmt.Fprintf(w, "@ Version : 2.8.1\n")

	appEvent := p.FindIntervalEvent(AppEventName)
	threads := p.Threads()

	fmt.Fprintf(w, "@--- MPI Time (seconds) %s\n", strings.Repeat("-", 40))
	fmt.Fprintf(w, "Task    AppTime    MPITime     MPI%%\n")
	var sumApp, sumMPI float64
	for _, th := range threads {
		var app, mpi float64
		if appEvent != nil {
			if d := th.FindIntervalData(appEvent.ID); d != nil {
				app = d.PerMetric[metric].Inclusive / secondsToMicro
				mpi = (d.PerMetric[metric].Inclusive - d.PerMetric[metric].Exclusive) / secondsToMicro
			}
		}
		pct := 0.0
		if app > 0 {
			pct = 100 * mpi / app
		}
		fmt.Fprintf(w, "%4d %10.4g %10.4g %8.2f\n", th.ID.Node, app, mpi, pct)
		sumApp += app
		sumMPI += mpi
	}
	aggPct := 0.0
	if sumApp > 0 {
		aggPct = 100 * sumMPI / sumApp
	}
	fmt.Fprintf(w, "   * %10.4g %10.4g %8.2f\n", sumApp, sumMPI, aggPct)

	// Assign a callsite ID per MPI event.
	type site struct {
		id   int
		call string
		ev   *model.IntervalEvent
	}
	var sites []site
	for _, e := range p.IntervalEvents() {
		if e.Group != "MPI" {
			continue
		}
		call := strings.TrimPrefix(e.Name, "MPI_")
		if i := strings.IndexAny(call, "( ["); i > 0 {
			call = call[:i]
		}
		sites = append(sites, site{id: len(sites) + 1, call: call, ev: e})
	}
	fmt.Fprintf(w, "@--- Callsites: %d %s\n", len(sites), strings.Repeat("-", 40))
	fmt.Fprintf(w, " ID Lev File/Address   Line Parent_Funct   MPI_Call\n")
	for _, s := range sites {
		fmt.Fprintf(w, "%3d   0 %-14s %4d %-14s %s\n", s.id, "app.c", 100+s.id, "main", s.call)
	}

	fmt.Fprintf(w, "@--- Callsite Time statistics (all, milliseconds): %d %s\n",
		len(sites)*len(threads), strings.Repeat("-", 20))
	fmt.Fprintf(w, "Name            Site Rank  Count      Max     Mean      Min   App%%   MPI%%\n")
	for _, s := range sites {
		for _, th := range threads {
			d := th.FindIntervalData(s.ev.ID)
			if d == nil || d.NumCalls == 0 {
				continue
			}
			totalMS := d.PerMetric[metric].Inclusive / millisToMicro
			mean := totalMS / d.NumCalls
			fmt.Fprintf(w, "%-15s %4d %4d %6.0f %8.4g %8.4g %8.4g %6.2f %6.2f\n",
				s.call, s.id, th.ID.Node, d.NumCalls, mean, mean, mean, 0.0, 0.0)
		}
	}
	if err := w.Flush(); err != nil {
		f.Close()
		return fmt.Errorf("mpip: %w", err)
	}
	return f.Close()
}
