// Package dynaprof parses dynaprof (Mucci) probe output, the PAPI-based
// dynamic instrumentation profiler the paper imports. A dynaprof report is
// one text file per process with an exclusive profile per probed function:
//
//	Dynaprof profile: papiprobe
//	Metric: PAPI_TOT_CYC
//
//	Exclusive Profile.
//
//	Name         Percent      Total      Calls
//	TOTAL         100.00   1000000          1
//	main           45.20    452000          1
//	compute        30.10    301000        100
//
//	Inclusive Profile.
//
//	Name         Percent      Total      Calls
//	main          100.00   1000000          1
//	compute        30.10    301000        100
//
// The TOTAL row of the exclusive section gives the whole-program total.
// Single process data lands on thread (0,0,0); multi-process runs are one
// file per rank, read with ReadRank.
package dynaprof

import (
	"bufio"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"

	"perfdmf/internal/model"
)

// TotalRow is the name of the whole-program summary row.
const TotalRow = "TOTAL"

// Read parses a single-process dynaprof report.
func Read(path string) (*model.Profile, error) {
	p := model.New("dynaprof")
	if err := ReadRank(p, path, 0); err != nil {
		return nil, err
	}
	p.Name = path
	return p, nil
}

// ReadRank parses one dynaprof report into rank's thread of an existing
// profile, so per-rank files can be merged into one trial.
func ReadRank(p *model.Profile, path string, rank int) error {
	f, err := os.Open(path)
	if err != nil {
		return fmt.Errorf("dynaprof: %w", err)
	}
	defer f.Close()
	if err := parseInto(p, f, rank); err != nil {
		return fmt.Errorf("dynaprof: %s: %w", path, err)
	}
	return nil
}

// Parse parses a dynaprof report from a reader (rank 0).
func Parse(r io.Reader) (*model.Profile, error) {
	p := model.New("dynaprof")
	if err := parseInto(p, r, 0); err != nil {
		return nil, err
	}
	return p, nil
}

func parseInto(p *model.Profile, r io.Reader, rank int) error {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<16), 1<<22)

	metricName := ""
	const (
		secNone = iota
		secExclusive
		secInclusive
	)
	section := secNone
	type row struct{ total, calls float64 }
	excl := make(map[string]row)
	incl := make(map[string]row)
	sawMagic := false

	for sc.Scan() {
		trimmed := strings.TrimSpace(sc.Text())
		switch {
		case strings.HasPrefix(trimmed, "Dynaprof profile:"):
			sawMagic = true
			continue
		case strings.HasPrefix(trimmed, "Metric:"):
			metricName = strings.TrimSpace(strings.TrimPrefix(trimmed, "Metric:"))
			continue
		case strings.HasPrefix(trimmed, "Exclusive Profile"):
			section = secExclusive
			continue
		case strings.HasPrefix(trimmed, "Inclusive Profile"):
			section = secInclusive
			continue
		case trimmed == "" || strings.HasPrefix(trimmed, "Name"):
			continue
		}
		if section == secNone {
			continue
		}
		fields := strings.Fields(trimmed)
		if len(fields) < 4 {
			continue
		}
		name := strings.Join(fields[:len(fields)-3], " ")
		total, err1 := strconv.ParseFloat(fields[len(fields)-2], 64)
		calls, err2 := strconv.ParseFloat(fields[len(fields)-1], 64)
		if err1 != nil || err2 != nil {
			return fmt.Errorf("bad profile row %q", trimmed)
		}
		if section == secExclusive {
			excl[name] = row{total, calls}
		} else {
			incl[name] = row{total, calls}
		}
	}
	if err := sc.Err(); err != nil {
		return err
	}
	if !sawMagic {
		return fmt.Errorf("not a dynaprof report (missing 'Dynaprof profile:' header)")
	}
	if metricName == "" {
		metricName = "PAPI_TOT_CYC"
	}
	if len(excl) == 0 {
		return fmt.Errorf("report has no exclusive profile rows")
	}

	metric := p.AddMetric(metricName)
	th := p.Thread(rank, 0, 0)
	for name, r := range excl {
		if name == TotalRow {
			continue
		}
		e := p.AddIntervalEvent(name, "DYNAPROF")
		d := th.IntervalData(e.ID, len(p.Metrics()))
		d.NumCalls = r.calls
		inclTotal := r.total
		if ir, ok := incl[name]; ok && ir.total > inclTotal {
			inclTotal = ir.total
		}
		d.PerMetric[metric] = model.MetricData{Exclusive: r.total, Inclusive: inclTotal}
	}
	return nil
}

// Write renders one thread of a profile as a dynaprof report.
func Write(path string, p *model.Profile, node int) error {
	metrics := p.Metrics()
	if len(metrics) == 0 {
		return fmt.Errorf("dynaprof: profile has no metrics")
	}
	metric := 0
	th := p.FindThread(node, 0, 0)
	if th == nil {
		return fmt.Errorf("dynaprof: profile has no thread %d,0,0", node)
	}
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("dynaprof: %w", err)
	}
	w := bufio.NewWriter(f)

	events := p.IntervalEvents()
	var grand float64
	th.EachInterval(func(_ int, d *model.IntervalData) {
		grand += d.PerMetric[metric].Exclusive
	})

	fmt.Fprintf(w, "Dynaprof profile: papiprobe\n")
	fmt.Fprintf(w, "Metric: %s\n\n", metrics[metric].Name)
	for _, inclusive := range []bool{false, true} {
		if inclusive {
			fmt.Fprintf(w, "\nInclusive Profile.\n\n")
		} else {
			fmt.Fprintf(w, "Exclusive Profile.\n\n")
		}
		fmt.Fprintf(w, "%-24s %10s %14s %10s\n", "Name", "Percent", "Total", "Calls")
		if !inclusive {
			fmt.Fprintf(w, "%-24s %10.2f %14.6g %10d\n", TotalRow, 100.0, grand, 1)
		}
		th.EachInterval(func(eid int, d *model.IntervalData) {
			v := d.PerMetric[metric].Exclusive
			if inclusive {
				v = d.PerMetric[metric].Inclusive
			}
			pct := 0.0
			if grand > 0 {
				pct = 100 * v / grand
			}
			fmt.Fprintf(w, "%-24s %10.2f %14.6g %10.0f\n", events[eid].Name, pct, v, d.NumCalls)
		})
	}
	if err := w.Flush(); err != nil {
		f.Close()
		return fmt.Errorf("dynaprof: %w", err)
	}
	return f.Close()
}
