package dynaprof

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"perfdmf/internal/model"
)

const sampleReport = `Dynaprof profile: papiprobe
Metric: PAPI_TOT_CYC

Exclusive Profile.

Name                        Percent          Total      Calls
TOTAL                        100.00        1000000          1
main                          24.70         247000          1
compute kernel                45.20         452000        100
io_phase                      30.10         301000         10

Inclusive Profile.

Name                        Percent          Total      Calls
main                         100.00        1000000          1
compute kernel                45.20         452000        100
io_phase                      30.10         301000         10
`

func TestParseSample(t *testing.T) {
	p, err := Parse(strings.NewReader(sampleReport))
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	if p.MetricID("PAPI_TOT_CYC") != 0 {
		t.Fatalf("metric: %v", p.Metrics())
	}
	if p.FindIntervalEvent(TotalRow) != nil {
		t.Error("TOTAL row should not become an event")
	}
	th := p.FindThread(0, 0, 0)
	e := p.FindIntervalEvent("compute kernel")
	if e == nil {
		t.Fatal("event with spaces in name missing")
	}
	d := th.FindIntervalData(e.ID)
	if d.PerMetric[0].Exclusive != 452000 || d.NumCalls != 100 {
		t.Fatalf("compute kernel: %+v", d)
	}
	m := p.FindIntervalEvent("main")
	md := th.FindIntervalData(m.ID)
	if md.PerMetric[0].Inclusive != 1000000 || md.PerMetric[0].Exclusive != 247000 {
		t.Fatalf("main incl/excl: %+v", md)
	}
}

func TestParseDefaults(t *testing.T) {
	// No Metric: line → default metric name; no inclusive section →
	// inclusive falls back to exclusive.
	minimal := `Dynaprof profile: papiprobe

Exclusive Profile.

Name      Percent     Total    Calls
f           100.0      5000        2
`
	p, err := Parse(strings.NewReader(minimal))
	if err != nil {
		t.Fatal(err)
	}
	if p.MetricID("PAPI_TOT_CYC") != 0 {
		t.Fatalf("default metric: %v", p.Metrics())
	}
	d := p.FindThread(0, 0, 0).FindIntervalData(p.FindIntervalEvent("f").ID)
	if d.PerMetric[0].Inclusive != 5000 {
		t.Fatalf("inclusive fallback: %+v", d)
	}
}

func TestParseErrors(t *testing.T) {
	if _, err := Parse(strings.NewReader("garbage")); err == nil {
		t.Error("garbage accepted")
	}
	if _, err := Parse(strings.NewReader("Dynaprof profile: papiprobe\nExclusive Profile.\n")); err == nil {
		t.Error("empty profile accepted")
	}
	bad := "Dynaprof profile: papiprobe\nExclusive Profile.\nf 100.0 abc 1\n"
	if _, err := Parse(strings.NewReader(bad)); err == nil {
		t.Error("bad numbers accepted")
	}
}

func TestMultiRank(t *testing.T) {
	dir := t.TempDir()
	p := model.New("multi")
	for rank := 0; rank < 3; rank++ {
		path := filepath.Join(dir, "out."+string(rune('0'+rank)))
		content := strings.Replace(sampleReport, "452000", "45200"+string(rune('0'+rank)), 2)
		if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
		if err := ReadRank(p, path, rank); err != nil {
			t.Fatal(err)
		}
	}
	if p.NumThreads() != 3 {
		t.Fatalf("threads: %d", p.NumThreads())
	}
	e := p.FindIntervalEvent("compute kernel")
	d2 := p.FindThread(2, 0, 0).FindIntervalData(e.ID)
	if d2.PerMetric[0].Exclusive != 452002 {
		t.Fatalf("rank2: %+v", d2)
	}
}

func TestRoundTrip(t *testing.T) {
	orig, err := Parse(strings.NewReader(sampleReport))
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "dyn.out")
	if err := Write(path, orig, 0); err != nil {
		t.Fatal(err)
	}
	got, err := Read(path)
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"main", "compute kernel", "io_phase"} {
		we := orig.FindIntervalEvent(name)
		ge := got.FindIntervalEvent(name)
		if ge == nil {
			t.Fatalf("lost event %q", name)
		}
		wd := orig.FindThread(0, 0, 0).FindIntervalData(we.ID)
		gd := got.FindThread(0, 0, 0).FindIntervalData(ge.ID)
		if wd.NumCalls != gd.NumCalls {
			t.Errorf("%s calls: %g vs %g", name, gd.NumCalls, wd.NumCalls)
		}
		diff := wd.PerMetric[0].Exclusive - gd.PerMetric[0].Exclusive
		if diff < -1 || diff > 1 {
			t.Errorf("%s exclusive: %g vs %g", name, gd.PerMetric[0].Exclusive, wd.PerMetric[0].Exclusive)
		}
	}
}

func TestWriteErrors(t *testing.T) {
	p := model.New("x")
	if err := Write(filepath.Join(t.TempDir(), "f"), p, 0); err == nil {
		t.Error("no-metric profile accepted")
	}
	p.AddMetric("M")
	if err := Write(filepath.Join(t.TempDir(), "f"), p, 5); err == nil {
		t.Error("missing rank accepted")
	}
}
