// Package sppm parses the self-instrumented timing output of the ASCI
// sPPM benchmark. The paper (§5.3) notes that sPPM ships its own ad-hoc
// instrumentation "for which a custom parser was written"; this package is
// that parser. The format is a simple whitespace table, one file per run:
//
//	# sPPM self-instrumented timing
//	# rank  routine     calls    seconds  [counter=value ...]
//	0       sppm            1     123.45  PAPI_FP_OPS=1.2e9
//	0       hydro         100      45.60  PAPI_FP_OPS=8.0e8
//	1       sppm            1     124.01  PAPI_FP_OPS=1.2e9
//
// Lines starting with '#' are comments. Seconds become the TIME metric in
// microseconds; any key=value tails become additional counter metrics.
// Routines are flat (inclusive == exclusive) except the "sppm" root, whose
// inclusive is the rank's total.
package sppm

import (
	"bufio"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"

	"perfdmf/internal/model"
)

// MetricName is the time metric recorded by the instrumentation.
const MetricName = "TIME"

// RootRoutine is the whole-program routine name.
const RootRoutine = "sppm"

const secondsToMicro = 1e6

// Read parses an sPPM timing file.
func Read(path string) (*model.Profile, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("sppm: %w", err)
	}
	defer f.Close()
	p, err := Parse(f)
	if err != nil {
		return nil, fmt.Errorf("sppm: %s: %w", path, err)
	}
	p.Name = path
	return p, nil
}

// Parse parses an sPPM timing table from a reader.
func Parse(r io.Reader) (*model.Profile, error) {
	p := model.New("sppm")
	metric := p.AddMetric(MetricName)

	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<16), 1<<22)
	rows := 0
	// Per-rank totals for the root routine's inclusive time.
	rankTotal := make(map[int]float64)
	type entry struct {
		rank    int
		routine string
		calls   float64
		micro   float64
		extra   map[string]float64
	}
	var entries []entry

	lineNo := 0
	for sc.Scan() {
		lineNo++
		trimmed := strings.TrimSpace(sc.Text())
		if trimmed == "" || strings.HasPrefix(trimmed, "#") {
			continue
		}
		fields := strings.Fields(trimmed)
		if len(fields) < 4 {
			return nil, fmt.Errorf("line %d: want 'rank routine calls seconds', got %q", lineNo, trimmed)
		}
		rank, err := strconv.Atoi(fields[0])
		if err != nil || rank < 0 {
			return nil, fmt.Errorf("line %d: bad rank %q", lineNo, fields[0])
		}
		calls, err := strconv.ParseFloat(fields[2], 64)
		if err != nil {
			return nil, fmt.Errorf("line %d: bad calls %q", lineNo, fields[2])
		}
		secs, err := strconv.ParseFloat(fields[3], 64)
		if err != nil {
			return nil, fmt.Errorf("line %d: bad seconds %q", lineNo, fields[3])
		}
		ent := entry{rank: rank, routine: fields[1], calls: calls, micro: secs * secondsToMicro}
		for _, kv := range fields[4:] {
			k, v, ok := strings.Cut(kv, "=")
			if !ok {
				return nil, fmt.Errorf("line %d: bad counter %q", lineNo, kv)
			}
			x, err := strconv.ParseFloat(v, 64)
			if err != nil {
				return nil, fmt.Errorf("line %d: bad counter value %q", lineNo, kv)
			}
			if ent.extra == nil {
				ent.extra = make(map[string]float64)
			}
			ent.extra[k] = x
		}
		if ent.routine != RootRoutine {
			rankTotal[rank] += ent.micro
		}
		entries = append(entries, ent)
		rows++
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if rows == 0 {
		return nil, fmt.Errorf("no timing rows found")
	}

	for _, ent := range entries {
		e := p.AddIntervalEvent(ent.routine, "SPPM")
		th := p.Thread(ent.rank, 0, 0)
		d := th.IntervalData(e.ID, len(p.Metrics()))
		d.NumCalls = ent.calls
		incl := ent.micro
		excl := ent.micro
		if ent.routine == RootRoutine {
			// The root's inclusive covers everything on the rank; its
			// exclusive is whatever its own row recorded beyond children.
			if t := rankTotal[ent.rank]; t > 0 {
				if ent.micro >= t {
					incl = ent.micro
					excl = ent.micro - t
				} else {
					incl = ent.micro + t
					excl = ent.micro
				}
			}
		}
		d.PerMetric[metric] = model.MetricData{Inclusive: incl, Exclusive: excl}
		for k, v := range ent.extra {
			m := p.AddMetric(k)
			for len(d.PerMetric) <= m {
				d.PerMetric = append(d.PerMetric, model.MetricData{})
			}
			d.PerMetric[m] = model.MetricData{Inclusive: v, Exclusive: v}
		}
	}
	// Widen rows that predate late metrics.
	nm := len(p.Metrics())
	for _, th := range p.Threads() {
		th.EachInterval(func(_ int, d *model.IntervalData) {
			for len(d.PerMetric) < nm {
				d.PerMetric = append(d.PerMetric, model.MetricData{})
			}
		})
	}
	return p, nil
}

// Write renders a profile as an sPPM timing table.
func Write(path string, p *model.Profile) error {
	metric := p.MetricID(MetricName)
	if metric < 0 {
		return fmt.Errorf("sppm: profile has no %s metric", MetricName)
	}
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("sppm: %w", err)
	}
	w := bufio.NewWriter(f)
	fmt.Fprintf(w, "# sPPM self-instrumented timing\n")
	fmt.Fprintf(w, "# rank  routine  calls  seconds  [counter=value ...]\n")
	events := p.IntervalEvents()
	metrics := p.Metrics()
	for _, th := range p.Threads() {
		th.EachInterval(func(eid int, d *model.IntervalData) {
			v := d.PerMetric[metric].Exclusive
			if events[eid].Name == RootRoutine {
				v = d.PerMetric[metric].Exclusive
			}
			fmt.Fprintf(w, "%d %s %.0f %.9g", th.ID.Node, events[eid].Name, d.NumCalls,
				v/secondsToMicro)
			for _, m := range metrics {
				if m.ID == metric || m.ID >= len(d.PerMetric) {
					continue
				}
				if x := d.PerMetric[m.ID].Inclusive; x != 0 {
					fmt.Fprintf(w, " %s=%g", m.Name, x)
				}
			}
			fmt.Fprintf(w, "\n")
		})
	}
	if err := w.Flush(); err != nil {
		f.Close()
		return fmt.Errorf("sppm: %w", err)
	}
	return f.Close()
}
