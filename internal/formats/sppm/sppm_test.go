package sppm

import (
	"math"
	"path/filepath"
	"strings"
	"testing"

	"perfdmf/internal/model"
)

const sampleTable = `# sPPM self-instrumented timing
# rank  routine  calls  seconds  [counter=value ...]
0 sppm 1 130.00 PAPI_FP_OPS=1.2e9
0 hydro 100 45.60 PAPI_FP_OPS=8.0e8
0 sweep 200 60.00 PAPI_FP_OPS=3.0e8
1 sppm 1 131.00 PAPI_FP_OPS=1.21e9
1 hydro 100 46.00 PAPI_FP_OPS=8.1e8
1 sweep 200 61.00 PAPI_FP_OPS=3.1e8
`

func TestParseSample(t *testing.T) {
	p, err := Parse(strings.NewReader(sampleTable))
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	if p.NumThreads() != 2 {
		t.Fatalf("threads: %d", p.NumThreads())
	}
	if p.MetricID(MetricName) != 0 || p.MetricID("PAPI_FP_OPS") < 0 {
		t.Fatalf("metrics: %v", p.Metrics())
	}
	th := p.FindThread(0, 0, 0)
	root := p.FindIntervalEvent(RootRoutine)
	d := th.FindIntervalData(root.ID)
	// Root row is 130 s; children total 105.6 s → inclusive 130,
	// exclusive 130-105.6 = 24.4.
	if math.Abs(d.PerMetric[0].Inclusive-130e6) > 1 {
		t.Errorf("root inclusive: %g", d.PerMetric[0].Inclusive)
	}
	if math.Abs(d.PerMetric[0].Exclusive-24.4e6) > 1 {
		t.Errorf("root exclusive: %g", d.PerMetric[0].Exclusive)
	}
	h := p.FindIntervalEvent("hydro")
	hd := th.FindIntervalData(h.ID)
	if hd.NumCalls != 100 || math.Abs(hd.PerMetric[0].Exclusive-45.6e6) > 1 {
		t.Errorf("hydro: %+v", hd)
	}
	if got := hd.PerMetric[p.MetricID("PAPI_FP_OPS")].Inclusive; got != 8.0e8 {
		t.Errorf("hydro fp ops: %g", got)
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"",
		"# only comments\n",
		"0 sppm 1\n",
		"x sppm 1 10.0\n",
		"0 sppm one 10.0\n",
		"0 sppm 1 ten\n",
		"0 sppm 1 10.0 PAPI_FP_OPS\n",
		"0 sppm 1 10.0 PAPI_FP_OPS=abc\n",
	}
	for _, src := range bad {
		if _, err := Parse(strings.NewReader(src)); err == nil {
			t.Errorf("Parse(%q) accepted", src)
		}
	}
}

func TestRoundTrip(t *testing.T) {
	orig, err := Parse(strings.NewReader(sampleTable))
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "sppm.out")
	if err := Write(path, orig); err != nil {
		t.Fatal(err)
	}
	got, err := Read(path)
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{RootRoutine, "hydro", "sweep"} {
		for rank := 0; rank < 2; rank++ {
			we := orig.FindIntervalEvent(name)
			ge := got.FindIntervalEvent(name)
			if ge == nil {
				t.Fatalf("lost routine %q", name)
			}
			wd := orig.FindThread(rank, 0, 0).FindIntervalData(we.ID)
			gd := got.FindThread(rank, 0, 0).FindIntervalData(ge.ID)
			if math.Abs(wd.PerMetric[0].Exclusive-gd.PerMetric[0].Exclusive) > 10 {
				t.Errorf("%s rank %d exclusive: got %g want %g", name, rank,
					gd.PerMetric[0].Exclusive, wd.PerMetric[0].Exclusive)
			}
			if wd.NumCalls != gd.NumCalls {
				t.Errorf("%s rank %d calls", name, rank)
			}
		}
	}
}

func TestWriteErrors(t *testing.T) {
	p := model.New("x")
	if err := Write(filepath.Join(t.TempDir(), "f"), p); err == nil {
		t.Error("no TIME metric accepted")
	}
}
