// Package hpm parses IBM HPMToolkit (DeRose) output, the hardware
// performance monitor format the paper imports (shown in its Figure 2).
// HPMToolkit writes one text file per process ("<app>.hpm<rank>_<host>")
// with one block per instrumented section:
//
//	libHPM output summary
//	Total execution wall clock time: 12.5 seconds
//
//	Instrumented section: 1 - Label: main
//	file: sweep.f, lines: 10 <--> 120
//	Count: 1
//	Wall Clock Time: 10.5 seconds
//	PM_FPU0_CMPL (FPU 0 instructions) : 1234567
//	PM_FPU1_CMPL (FPU 1 instructions) : 234567
//	PM_CYC (Processor cycles)         : 987654321
//
// Each section becomes an interval event; wall-clock seconds become the
// WALL_CLOCK_TIME metric in microseconds and each counter becomes its own
// metric. Sections are flat, so inclusive equals exclusive.
package hpm

import (
	"bufio"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"

	"perfdmf/internal/model"
)

// TimeMetric is the wall-clock metric name.
const TimeMetric = "WALL_CLOCK_TIME"

const secondsToMicro = 1e6

// Read parses a single-process HPMToolkit file.
func Read(path string) (*model.Profile, error) {
	p := model.New("hpm")
	if err := ReadRank(p, path, 0); err != nil {
		return nil, err
	}
	p.Name = path
	return p, nil
}

// ReadRank parses one HPMToolkit file into rank's thread of an existing
// profile.
func ReadRank(p *model.Profile, path string, rank int) error {
	f, err := os.Open(path)
	if err != nil {
		return fmt.Errorf("hpm: %w", err)
	}
	defer f.Close()
	if err := parseInto(p, f, rank); err != nil {
		return fmt.Errorf("hpm: %s: %w", path, err)
	}
	return nil
}

// Parse parses HPMToolkit output from a reader (rank 0).
func Parse(r io.Reader) (*model.Profile, error) {
	p := model.New("hpm")
	if err := parseInto(p, r, 0); err != nil {
		return nil, err
	}
	return p, nil
}

func parseInto(p *model.Profile, r io.Reader, rank int) error {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<16), 1<<22)

	th := p.Thread(rank, 0, 0)
	var cur *model.IntervalData
	sawMagic := false
	sections := 0

	setMetric := func(name string, v float64) {
		m := p.AddMetric(name)
		for len(cur.PerMetric) <= m {
			cur.PerMetric = append(cur.PerMetric, model.MetricData{})
		}
		cur.PerMetric[m] = model.MetricData{Inclusive: v, Exclusive: v}
	}

	for sc.Scan() {
		trimmed := strings.TrimSpace(sc.Text())
		switch {
		case strings.HasPrefix(trimmed, "libHPM output summary"):
			sawMagic = true
			continue
		case strings.HasPrefix(trimmed, "Instrumented section:"):
			label := "section"
			if i := strings.Index(trimmed, "Label:"); i >= 0 {
				label = strings.TrimSpace(trimmed[i+len("Label:"):])
			}
			e := p.AddIntervalEvent(label, "HPM")
			cur = th.IntervalData(e.ID, len(p.Metrics()))
			sections++
			continue
		case cur == nil:
			continue
		case strings.HasPrefix(trimmed, "file:"):
			continue
		case strings.HasPrefix(trimmed, "Count:"):
			n, err := strconv.ParseFloat(strings.TrimSpace(strings.TrimPrefix(trimmed, "Count:")), 64)
			if err != nil {
				return fmt.Errorf("bad Count line %q", trimmed)
			}
			cur.NumCalls = n
		case strings.HasPrefix(trimmed, "Wall Clock Time:"):
			rest := strings.TrimSpace(strings.TrimPrefix(trimmed, "Wall Clock Time:"))
			rest = strings.TrimSuffix(rest, "seconds")
			v, err := strconv.ParseFloat(strings.TrimSpace(rest), 64)
			if err != nil {
				return fmt.Errorf("bad Wall Clock Time line %q", trimmed)
			}
			setMetric(TimeMetric, v*secondsToMicro)
		default:
			// Counter line: "NAME (description) : value".
			name, rest, ok := strings.Cut(trimmed, ":")
			if !ok {
				continue
			}
			v, err := strconv.ParseFloat(strings.TrimSpace(rest), 64)
			if err != nil {
				continue
			}
			if i := strings.IndexByte(name, '('); i >= 0 {
				name = name[:i]
			}
			name = strings.TrimSpace(name)
			if name == "" || !strings.HasPrefix(name, "PM_") {
				continue
			}
			setMetric(name, v)
		}
	}
	if err := sc.Err(); err != nil {
		return err
	}
	if !sawMagic {
		return fmt.Errorf("not HPMToolkit output (missing 'libHPM output summary')")
	}
	if sections == 0 {
		return fmt.Errorf("no instrumented sections found")
	}
	// Widen any sections recorded before later metrics appeared.
	nm := len(p.Metrics())
	th.EachInterval(func(_ int, d *model.IntervalData) {
		for len(d.PerMetric) < nm {
			d.PerMetric = append(d.PerMetric, model.MetricData{})
		}
	})
	return nil
}

// Write renders one rank of a profile as an HPMToolkit file.
func Write(path string, p *model.Profile, node int) error {
	th := p.FindThread(node, 0, 0)
	if th == nil {
		return fmt.Errorf("hpm: profile has no thread %d,0,0", node)
	}
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("hpm: %w", err)
	}
	w := bufio.NewWriter(f)

	fmt.Fprintf(w, "libHPM output summary\n")
	fmt.Fprintf(w, "Total execution wall clock time: 0.0 seconds\n")
	events := p.IntervalEvents()
	metrics := p.Metrics()
	timeID := p.MetricID(TimeMetric)
	section := 0
	th.EachInterval(func(eid int, d *model.IntervalData) {
		section++
		fmt.Fprintf(w, "\nInstrumented section: %d - Label: %s\n", section, events[eid].Name)
		fmt.Fprintf(w, "file: app.f, lines: 1 <--> 100\n")
		fmt.Fprintf(w, "Count: %.0f\n", d.NumCalls)
		if timeID >= 0 && timeID < len(d.PerMetric) {
			fmt.Fprintf(w, "Wall Clock Time: %.9g seconds\n",
				d.PerMetric[timeID].Inclusive/secondsToMicro)
		}
		for _, m := range metrics {
			if m.ID == timeID || m.ID >= len(d.PerMetric) {
				continue
			}
			if !strings.HasPrefix(m.Name, "PM_") {
				continue
			}
			fmt.Fprintf(w, "%s (counter) : %.0f\n", m.Name, d.PerMetric[m.ID].Inclusive)
		}
	})
	if err := w.Flush(); err != nil {
		f.Close()
		return fmt.Errorf("hpm: %w", err)
	}
	return f.Close()
}
