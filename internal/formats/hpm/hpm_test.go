package hpm

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"perfdmf/internal/model"
)

const sampleReport = `libHPM output summary
Total execution wall clock time: 12.5 seconds

Instrumented section: 1 - Label: main
file: sweep.f, lines: 10 <--> 120
Count: 1
Wall Clock Time: 10.5 seconds
PM_FPU0_CMPL (FPU 0 instructions) : 1234567
PM_FPU1_CMPL (FPU 1 instructions) : 234567
PM_CYC (Processor cycles) : 987654321

Instrumented section: 2 - Label: solver loop
file: sweep.f, lines: 40 <--> 80
Count: 250
Wall Clock Time: 7.25 seconds
PM_FPU0_CMPL (FPU 0 instructions) : 1000000
PM_CYC (Processor cycles) : 500000000
`

func TestParseSample(t *testing.T) {
	p, err := Parse(strings.NewReader(sampleReport))
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	if p.MetricID(TimeMetric) < 0 || p.MetricID("PM_CYC") < 0 ||
		p.MetricID("PM_FPU0_CMPL") < 0 || p.MetricID("PM_FPU1_CMPL") < 0 {
		t.Fatalf("metrics: %v", p.Metrics())
	}
	th := p.FindThread(0, 0, 0)
	e := p.FindIntervalEvent("main")
	d := th.FindIntervalData(e.ID)
	if d.NumCalls != 1 {
		t.Errorf("main count: %g", d.NumCalls)
	}
	if got := d.PerMetric[p.MetricID(TimeMetric)].Inclusive; got != 10.5e6 {
		t.Errorf("main wall time: %g", got)
	}
	if got := d.PerMetric[p.MetricID("PM_CYC")].Inclusive; got != 987654321 {
		t.Errorf("main cycles: %g", got)
	}
	e2 := p.FindIntervalEvent("solver loop")
	d2 := th.FindIntervalData(e2.ID)
	if d2.NumCalls != 250 {
		t.Errorf("solver count: %g", d2.NumCalls)
	}
	// Section 2 lacks PM_FPU1_CMPL: must be zero-filled, not short.
	if got := d2.PerMetric[p.MetricID("PM_FPU1_CMPL")].Inclusive; got != 0 {
		t.Errorf("missing counter should be 0, got %g", got)
	}
}

func TestParseErrors(t *testing.T) {
	if _, err := Parse(strings.NewReader("nope")); err == nil {
		t.Error("garbage accepted")
	}
	if _, err := Parse(strings.NewReader("libHPM output summary\n")); err == nil {
		t.Error("no sections accepted")
	}
	bad := "libHPM output summary\nInstrumented section: 1 - Label: x\nCount: many\n"
	if _, err := Parse(strings.NewReader(bad)); err == nil {
		t.Error("bad Count accepted")
	}
}

func TestMultiRank(t *testing.T) {
	dir := t.TempDir()
	p := model.New("multi")
	for rank := 0; rank < 2; rank++ {
		path := filepath.Join(dir, "app.hpm"+string(rune('0'+rank)))
		if err := os.WriteFile(path, []byte(sampleReport), 0o644); err != nil {
			t.Fatal(err)
		}
		if err := ReadRank(p, path, rank); err != nil {
			t.Fatal(err)
		}
	}
	if p.NumThreads() != 2 {
		t.Fatalf("threads: %d", p.NumThreads())
	}
}

func TestRoundTrip(t *testing.T) {
	orig, err := Parse(strings.NewReader(sampleReport))
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "app.hpm0")
	if err := Write(path, orig, 0); err != nil {
		t.Fatal(err)
	}
	got, err := Read(path)
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"main", "solver loop"} {
		we := orig.FindIntervalEvent(name)
		ge := got.FindIntervalEvent(name)
		if ge == nil {
			t.Fatalf("lost section %q", name)
		}
		wd := orig.FindThread(0, 0, 0).FindIntervalData(we.ID)
		gd := got.FindThread(0, 0, 0).FindIntervalData(ge.ID)
		for _, m := range orig.Metrics() {
			gm := got.MetricID(m.Name)
			if gm < 0 {
				t.Fatalf("lost metric %q", m.Name)
			}
			w := wd.PerMetric[m.ID].Inclusive
			g := gd.PerMetric[gm].Inclusive
			diff := w - g
			if diff < -1 || diff > 1 {
				t.Errorf("%s %s: got %g want %g", name, m.Name, g, w)
			}
		}
	}
}

func TestWriteErrors(t *testing.T) {
	p := model.New("x")
	if err := Write(filepath.Join(t.TempDir(), "f"), p, 0); err == nil {
		t.Error("empty profile accepted")
	}
}
