// Package formats ties the individual profile-format packages together:
// it names the supported formats, auto-detects the format of a file or
// directory, and loads any of them into the common model (paper §3.1:
// "PerfDMF is designed to parse parallel profile data from multiple
// sources ... through the use of embedded translators").
package formats

import (
	"bufio"
	"context"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"time"

	"perfdmf/internal/formats/dynaprof"
	"perfdmf/internal/formats/gprof"
	"perfdmf/internal/formats/hpm"
	"perfdmf/internal/formats/mpip"
	"perfdmf/internal/formats/psrun"
	"perfdmf/internal/formats/sppm"
	"perfdmf/internal/formats/tau"
	"perfdmf/internal/formats/xmlprof"
	"perfdmf/internal/model"
	"perfdmf/internal/obs"
)

// Format names accepted by Load and returned by Detect.
const (
	TAU      = "tau"
	Gprof    = "gprof"
	MpiP     = "mpip"
	Dynaprof = "dynaprof"
	HPM      = "hpm"
	Psrun    = "psrun"
	SPPM     = "sppm"
	XML      = "xml"
)

// All lists every supported format name.
var All = []string{TAU, Gprof, MpiP, Dynaprof, HPM, Psrun, SPPM, XML}

// Load parses path (a file, or a directory for TAU) as the named format.
func Load(format, path string) (*model.Profile, error) {
	return LoadCtx(context.Background(), format, path)
}

// LoadCtx is Load with span-tree propagation: when observability is active
// (or ctx already carries a span) the parse is recorded as a "parse" span,
// a child of whatever span ctx carries, with the parsed data-point count
// in RowsReturned.
func LoadCtx(ctx context.Context, format, path string) (p *model.Profile, err error) {
	_, sp := obs.StartSpan(ctx, "parse", "parse:"+format+":"+filepath.Base(path))
	start := time.Now()
	defer func() { finishParse(sp, format, start, p, err) }()
	p, err = load(format, path)
	return p, err
}

func load(format, path string) (*model.Profile, error) {
	switch format {
	case TAU:
		return tau.Read(path)
	case Gprof:
		return gprof.Read(path)
	case MpiP:
		return mpip.Read(path)
	case Dynaprof:
		return dynaprof.Read(path)
	case HPM:
		return hpm.Read(path)
	case Psrun:
		return psrun.Read(path)
	case SPPM:
		return sppm.Read(path)
	case XML:
		return xmlprof.Read(path)
	}
	return nil, fmt.Errorf("formats: unknown format %q (supported: %s)",
		format, strings.Join(All, ", "))
}

// Detect inspects path and returns the format name it appears to be, based
// on directory layout for TAU and leading content for the file formats.
func Detect(path string) (string, error) {
	if obs.TimingEnabled() {
		start := time.Now()
		defer func() { mDetectNS.Observe(int64(time.Since(start))) }()
	}
	fi, err := os.Stat(path)
	if err != nil {
		return "", fmt.Errorf("formats: %w", err)
	}
	if fi.IsDir() {
		entries, err := os.ReadDir(path)
		if err != nil {
			return "", fmt.Errorf("formats: %w", err)
		}
		for _, e := range entries {
			if strings.HasPrefix(e.Name(), tau.FilePrefix) ||
				(e.IsDir() && strings.HasPrefix(e.Name(), "MULTI__")) {
				return TAU, nil
			}
		}
		return "", fmt.Errorf("formats: directory %s does not look like a TAU profile", path)
	}

	f, err := os.Open(path)
	if err != nil {
		return "", fmt.Errorf("formats: %w", err)
	}
	defer f.Close()
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 1<<16), 1<<20)
	var lines []string
	for sc.Scan() && len(lines) < 50 {
		lines = append(lines, strings.TrimSpace(sc.Text()))
	}
	if err := sc.Err(); err != nil {
		return "", fmt.Errorf("formats: %w", err)
	}
	for _, ln := range lines {
		switch {
		case strings.HasPrefix(ln, "@ mpiP"):
			return MpiP, nil
		case strings.HasPrefix(ln, "Flat profile:"):
			return Gprof, nil
		case strings.HasPrefix(ln, "Dynaprof profile:"):
			return Dynaprof, nil
		case strings.HasPrefix(ln, "libHPM output summary"):
			return HPM, nil
		case strings.Contains(ln, "<hwpcreport"):
			return Psrun, nil
		case strings.Contains(ln, "<profile"):
			return XML, nil
		case strings.HasPrefix(ln, "# sPPM"):
			return SPPM, nil
		case strings.Contains(ln, "templated_functions"):
			return TAU, nil
		}
	}
	if base := filepath.Base(path); strings.HasPrefix(base, tau.FilePrefix) {
		return TAU, nil
	}
	return "", fmt.Errorf("formats: cannot determine the format of %s", path)
}

// LoadAuto detects the format of path and loads it. A bare TAU profile
// file is loaded via its parent directory.
func LoadAuto(path string) (*model.Profile, error) {
	return LoadAutoCtx(context.Background(), path)
}

// LoadAutoCtx is LoadAuto with span-tree propagation (see LoadCtx).
func LoadAutoCtx(ctx context.Context, path string) (*model.Profile, error) {
	format, err := Detect(path)
	if err != nil {
		return nil, err
	}
	if format == TAU {
		if fi, err := os.Stat(path); err == nil && !fi.IsDir() {
			path = filepath.Dir(path)
		}
	}
	return LoadCtx(ctx, format, path)
}

// ScanDir lists the regular files in dir whose names match the optional
// prefix and suffix filters, sorted by name — the paper's §4 mechanism for
// selecting "a subset of files in a directory that start with a particular
// prefix or end with a particular suffix".
func ScanDir(dir, prefix, suffix string) ([]string, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("formats: %w", err)
	}
	var out []string
	for _, e := range entries {
		if e.IsDir() {
			continue
		}
		name := e.Name()
		if prefix != "" && !strings.HasPrefix(name, prefix) {
			continue
		}
		if suffix != "" && !strings.HasSuffix(name, suffix) {
			continue
		}
		out = append(out, filepath.Join(dir, name))
	}
	sort.Strings(out)
	return out, nil
}

// LoadMultiRank merges one file per MPI rank into a single trial, for the
// formats whose tools write per-process output (dynaprof, HPMToolkit,
// PerfSuite). Files are assigned ranks in slice order, so pass them sorted
// (ScanDir already does). TAU handles its own directories; mpiP, gprof and
// sPPM write one file per run.
func LoadMultiRank(format string, paths []string) (*model.Profile, error) {
	return LoadMultiRankCtx(context.Background(), format, paths)
}

// LoadMultiRankCtx is LoadMultiRank with span-tree propagation: the merge
// is one "parse" span covering all ranks, a child of ctx's span.
func LoadMultiRankCtx(ctx context.Context, format string, paths []string) (p *model.Profile, err error) {
	if len(paths) == 0 {
		return nil, fmt.Errorf("formats: no input files")
	}
	var readRank func(p *model.Profile, path string, rank int) error
	switch format {
	case Dynaprof:
		readRank = dynaprof.ReadRank
	case HPM:
		readRank = hpm.ReadRank
	case Psrun:
		readRank = psrun.ReadRank
	default:
		return nil, fmt.Errorf("formats: %s does not support per-rank files (supported: %s, %s, %s)",
			format, Dynaprof, HPM, Psrun)
	}
	_, sp := obs.StartSpan(ctx, "parse", fmt.Sprintf("parse:%s:%d-ranks", format, len(paths)))
	start := time.Now()
	defer func() { finishParse(sp, format, start, p, err) }()
	p = model.New(format + "-multirank")
	for rank, path := range paths {
		if err = readRank(p, path, rank); err != nil {
			return nil, err
		}
	}
	return p, nil
}
