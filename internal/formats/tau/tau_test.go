package tau

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"perfdmf/internal/model"
)

func sampleProfile(metrics int) *model.Profile {
	p := model.New("sample")
	names := []string{"TIME", "PAPI_FP_OPS", "PAPI_L1_DCM"}
	for i := 0; i < metrics; i++ {
		p.AddMetric(names[i])
	}
	main := p.AddIntervalEvent("main() ", "TAU_DEFAULT")
	mpi := p.AddIntervalEvent("MPI_Send()", "MPI")
	ue := p.AddAtomicEvent("Message size sent", "TAU_EVENT")
	for n := 0; n < 2; n++ {
		for t := 0; t < 2; t++ {
			th := p.Thread(n, 0, t)
			base := float64(n*10 + t)
			d := th.IntervalData(main.ID, metrics)
			d.NumCalls = 1
			d.NumSubrs = 42
			for m := 0; m < metrics; m++ {
				d.PerMetric[m] = model.MetricData{
					Inclusive: 1000 + base + float64(m),
					Exclusive: 100 + base + float64(m),
				}
			}
			d2 := th.IntervalData(mpi.ID, metrics)
			d2.NumCalls = 250
			for m := 0; m < metrics; m++ {
				d2.PerMetric[m] = model.MetricData{
					Inclusive: 900 - base - float64(m),
					Exclusive: 900 - base - float64(m),
				}
			}
			ad := th.AtomicData(ue.ID)
			ad.SampleCount = 250
			ad.Minimum = 8
			ad.Maximum = 65536
			ad.Mean = 1024.5
			ad.SumSqr = 3e8
		}
	}
	return p
}

func TestRoundTripSingleMetric(t *testing.T) {
	p := sampleProfile(1)
	dir := t.TempDir()
	if err := Write(dir, p); err != nil {
		t.Fatal(err)
	}
	// Flat layout: profile.N.C.T at top level.
	if _, err := os.Stat(filepath.Join(dir, "profile.0.0.0")); err != nil {
		t.Fatal(err)
	}
	got, err := Read(dir)
	if err != nil {
		t.Fatal(err)
	}
	compareProfiles(t, p, got, 1)
}

func TestRoundTripMultiMetric(t *testing.T) {
	p := sampleProfile(3)
	dir := t.TempDir()
	if err := Write(dir, p); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(filepath.Join(dir, "MULTI__TIME", "profile.1.0.1")); err != nil {
		t.Fatal(err)
	}
	got, err := Read(dir)
	if err != nil {
		t.Fatal(err)
	}
	compareProfiles(t, p, got, 3)
}

func compareProfiles(t *testing.T, want, got *model.Profile, metrics int) {
	t.Helper()
	if got.NumThreads() != want.NumThreads() {
		t.Fatalf("threads: got %d want %d", got.NumThreads(), want.NumThreads())
	}
	if len(got.Metrics()) != metrics {
		t.Fatalf("metrics: got %v", got.Metrics())
	}
	if err := got.Validate(); err != nil {
		t.Fatal(err)
	}
	for _, wth := range want.Threads() {
		gth := got.FindThread(wth.ID.Node, wth.ID.Context, wth.ID.Thread)
		if gth == nil {
			t.Fatalf("missing thread %v", wth.ID)
		}
		for _, we := range want.IntervalEvents() {
			ge := got.FindIntervalEvent(we.Name)
			if ge == nil {
				t.Fatalf("missing event %q", we.Name)
			}
			if ge.Group != we.Group {
				t.Errorf("event %q group: got %q want %q", we.Name, ge.Group, we.Group)
			}
			wd := wth.FindIntervalData(we.ID)
			gd := gth.FindIntervalData(ge.ID)
			if wd == nil || gd == nil {
				t.Fatalf("missing data for %q on %v", we.Name, wth.ID)
			}
			if gd.NumCalls != wd.NumCalls || gd.NumSubrs != wd.NumSubrs {
				t.Errorf("%q calls/subrs: got %g/%g want %g/%g",
					we.Name, gd.NumCalls, gd.NumSubrs, wd.NumCalls, wd.NumSubrs)
			}
			for _, wm := range want.Metrics() {
				gm := got.MetricID(wm.Name)
				if gm < 0 {
					t.Fatalf("missing metric %q", wm.Name)
				}
				if gd.PerMetric[gm] != wd.PerMetric[wm.ID] {
					t.Errorf("%q %s on %v: got %+v want %+v", we.Name, wm.Name,
						wth.ID, gd.PerMetric[gm], wd.PerMetric[wm.ID])
				}
			}
		}
		for _, we := range want.AtomicEvents() {
			ge := got.FindAtomicEvent(we.Name)
			if ge == nil {
				t.Fatalf("missing atomic event %q", we.Name)
			}
			wd := wth.FindAtomicData(we.ID)
			gd := gth.FindAtomicData(ge.ID)
			if *wd != *gd {
				t.Errorf("atomic %q on %v: got %+v want %+v", we.Name, wth.ID, gd, wd)
			}
		}
	}
}

func TestParseFileName(t *testing.T) {
	n, c, th, err := ParseFileName("profile.12.3.4")
	if err != nil || n != 12 || c != 3 || th != 4 {
		t.Fatalf("got %d %d %d %v", n, c, th, err)
	}
	for _, bad := range []string{"profile.1.2", "profile.a.b.c", "prof.1.2.3", "profile.1.2.3.4", "profile.-1.0.0"} {
		if _, _, _, err := ParseFileName(bad); err == nil {
			t.Errorf("ParseFileName(%q) accepted", bad)
		}
	}
}

func TestListProfileFilesFilters(t *testing.T) {
	dir := t.TempDir()
	for _, name := range []string{"profile.0.0.0", "profile.1.0.0", "profile.10.0.0", "profile.README", "other.txt"} {
		if err := os.WriteFile(filepath.Join(dir, name), []byte("x"), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	files, err := ListProfileFiles(dir, "", "")
	if err != nil {
		t.Fatal(err)
	}
	if len(files) != 3 {
		t.Fatalf("files: %v", files)
	}
	// Numeric sort: 0, 1, 10.
	if !strings.HasSuffix(files[2], "profile.10.0.0") {
		t.Fatalf("sort order: %v", files)
	}
	files, _ = ListProfileFiles(dir, "profile.1", "")
	if len(files) != 2 {
		t.Fatalf("prefix filter: %v", files)
	}
	files, _ = ListProfileFiles(dir, "", ".0.0")
	if len(files) != 3 {
		t.Fatalf("suffix filter: %v", files)
	}
}

func TestReadErrors(t *testing.T) {
	if _, err := Read(t.TempDir()); err == nil {
		t.Error("empty dir accepted")
	}
	dir := t.TempDir()
	os.WriteFile(filepath.Join(dir, "profile.0.0.0"), []byte("garbage header\n"), 0o644)
	if _, err := Read(dir); err == nil {
		t.Error("garbage header accepted")
	}
	dir2 := t.TempDir()
	os.WriteFile(filepath.Join(dir2, "profile.0.0.0"),
		[]byte("2 templated_functions_MULTI_TIME\n# hdr\n\"f\" 1 0 1 2 0\n"), 0o644)
	if _, err := Read(dir2); err == nil {
		t.Error("truncated function list accepted")
	}
	if _, err := Read(filepath.Join(dir2, "nonexistent")); err == nil {
		t.Error("missing dir accepted")
	}
}

func TestReadHandCraftedFile(t *testing.T) {
	dir := t.TempDir()
	content := `2 templated_functions_MULTI_P_WALL_CLOCK_TIME
# Name Calls Subrs Excl Incl ProfileCalls
"main() int (int, char **)" 1 5 2.25e4 1e6 0 GROUP="TAU_USER"
".TAU application" 1 1 0 1e6 0
0 aggregates
1 userevents
# eventname numevents max min mean sumsqr
"alloc bytes" 10 4096 16 1000 2e7
`
	os.WriteFile(filepath.Join(dir, "profile.0.0.0"), []byte(content), 0o644)
	p, err := Read(dir)
	if err != nil {
		t.Fatal(err)
	}
	if p.MetricID("P_WALL_CLOCK_TIME") != 0 {
		t.Fatalf("metric: %v", p.Metrics())
	}
	e := p.FindIntervalEvent("main() int (int, char **)")
	if e == nil || e.Group != "TAU_USER" {
		t.Fatalf("event: %+v", e)
	}
	d := p.FindThread(0, 0, 0).FindIntervalData(e.ID)
	if d.PerMetric[0].Exclusive != 2.25e4 || d.PerMetric[0].Inclusive != 1e6 || d.NumSubrs != 5 {
		t.Fatalf("data: %+v", d)
	}
	// Event with no GROUP attribute.
	if e2 := p.FindIntervalEvent(".TAU application"); e2 == nil || e2.Group != "" {
		t.Fatalf("ungrouped event: %+v", e2)
	}
	ae := p.FindAtomicEvent("alloc bytes")
	if ae == nil {
		t.Fatal("atomic event missing")
	}
	ad := p.FindThread(0, 0, 0).FindAtomicData(ae.ID)
	if ad.SampleCount != 10 || ad.Maximum != 4096 || ad.SumSqr != 2e7 {
		t.Fatalf("atomic data: %+v", ad)
	}
}

func TestWriteErrors(t *testing.T) {
	p := model.New("x")
	if err := Write(t.TempDir(), p); err == nil {
		t.Error("no-metric profile accepted")
	}
}
