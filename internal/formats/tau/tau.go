// Package tau reads and writes TAU parallel profile directories (paper
// §3.1): one "profile.N.C.T" text file per node/context/thread, with
// multi-metric trials laid out as one "MULTI__<METRIC>" subdirectory per
// metric. User-defined (atomic) events are supported.
//
// File grammar (one file):
//
//	<numFuncs> templated_functions_MULTI_<METRIC>
//	# Name Calls Subrs Excl Incl ProfileCalls
//	"<event name>" <calls> <subrs> <exclusive> <inclusive> <profileCalls> GROUP="<group>"
//	...
//	<numAggregates> aggregates
//	<numUserEvents> userevents
//	# eventname numevents max min mean sumsqr
//	"<event name>" <count> <max> <min> <mean> <sumsqr>
//	...
//
// Values are in the metric's native unit (microseconds for TIME).
package tau

import (
	"bufio"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"

	"perfdmf/internal/model"
)

// FilePrefix is the leading component of every TAU profile file name.
const FilePrefix = "profile."

// multiPrefix marks per-metric subdirectories of a multi-metric trial.
const multiPrefix = "MULTI__"

// Read loads a TAU profile directory into the common model. The directory
// either contains profile.N.C.T files directly (single metric) or
// MULTI__<METRIC> subdirectories (one per metric).
func Read(dir string) (*model.Profile, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("tau: %w", err)
	}
	p := model.New(filepath.Base(dir))

	var multiDirs []string
	sawPlain := false
	for _, e := range entries {
		switch {
		case e.IsDir() && strings.HasPrefix(e.Name(), multiPrefix):
			multiDirs = append(multiDirs, e.Name())
		case !e.IsDir() && strings.HasPrefix(e.Name(), FilePrefix):
			sawPlain = true
		}
	}
	sort.Strings(multiDirs)

	switch {
	case len(multiDirs) > 0:
		for _, md := range multiDirs {
			if err := readMetricDir(p, filepath.Join(dir, md)); err != nil {
				return nil, err
			}
		}
	case sawPlain:
		if err := readMetricDir(p, dir); err != nil {
			return nil, err
		}
	default:
		return nil, fmt.Errorf("tau: %s contains no profile.* files or MULTI__ directories", dir)
	}
	return p, nil
}

// readMetricDir parses every profile.N.C.T file in one directory; the
// metric name comes from each file's header.
func readMetricDir(p *model.Profile, dir string) error {
	files, err := ListProfileFiles(dir, "", "")
	if err != nil {
		return err
	}
	if len(files) == 0 {
		return fmt.Errorf("tau: %s contains no profile.* files", dir)
	}
	for _, f := range files {
		if err := readFile(p, f); err != nil {
			return err
		}
	}
	return nil
}

// ListProfileFiles returns the profile.* files in dir whose base name also
// matches the optional prefix and suffix filters (paper §4: "parsing a
// directory of files, or a subset of files in a directory that start with
// a particular prefix or end with a particular suffix"). Files are sorted
// by (node, context, thread).
func ListProfileFiles(dir, prefix, suffix string) ([]string, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("tau: %w", err)
	}
	type keyed struct {
		n, c, t int
		path    string
	}
	var files []keyed
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasPrefix(name, FilePrefix) {
			continue
		}
		if prefix != "" && !strings.HasPrefix(name, prefix) {
			continue
		}
		if suffix != "" && !strings.HasSuffix(name, suffix) {
			continue
		}
		n, c, t, err := ParseFileName(name)
		if err != nil {
			continue // not a profile data file (e.g. profile.README)
		}
		files = append(files, keyed{n, c, t, filepath.Join(dir, name)})
	}
	sort.Slice(files, func(i, j int) bool {
		a, b := files[i], files[j]
		if a.n != b.n {
			return a.n < b.n
		}
		if a.c != b.c {
			return a.c < b.c
		}
		return a.t < b.t
	})
	out := make([]string, len(files))
	for i, f := range files {
		out[i] = f.path
	}
	return out, nil
}

// ParseFileName extracts node, context and thread from "profile.N.C.T".
func ParseFileName(name string) (node, context, thread int, err error) {
	rest, ok := strings.CutPrefix(name, FilePrefix)
	if !ok {
		return 0, 0, 0, fmt.Errorf("tau: %q does not start with %q", name, FilePrefix)
	}
	parts := strings.Split(rest, ".")
	if len(parts) != 3 {
		return 0, 0, 0, fmt.Errorf("tau: %q is not profile.N.C.T", name)
	}
	nums := make([]int, 3)
	for i, s := range parts {
		n, err := strconv.Atoi(s)
		if err != nil || n < 0 {
			return 0, 0, 0, fmt.Errorf("tau: %q is not profile.N.C.T", name)
		}
		nums[i] = n
	}
	return nums[0], nums[1], nums[2], nil
}

func readFile(p *model.Profile, path string) error {
	f, err := os.Open(path)
	if err != nil {
		return fmt.Errorf("tau: %w", err)
	}
	defer f.Close()

	node, context, thread, err := ParseFileName(filepath.Base(path))
	if err != nil {
		return err
	}
	th := p.Thread(node, context, thread)

	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 1<<16), 1<<22)
	line := 0
	nextLine := func() (string, bool) {
		if !sc.Scan() {
			return "", false
		}
		line++
		return sc.Text(), true
	}
	fail := func(format string, args ...any) error {
		return fmt.Errorf("tau: %s:%d: %s", path, line, fmt.Sprintf(format, args...))
	}

	// Header: "<n> templated_functions_MULTI_<METRIC>".
	header, ok := nextLine()
	if !ok {
		return fail("empty file")
	}
	hfields := strings.Fields(header)
	if len(hfields) < 2 {
		return fail("bad header %q", header)
	}
	numFuncs, err := strconv.Atoi(hfields[0])
	if err != nil || numFuncs < 0 {
		return fail("bad function count %q", hfields[0])
	}
	metricName := "TIME"
	if m, ok := strings.CutPrefix(hfields[1], "templated_functions_MULTI_"); ok {
		metricName = m
	} else if hfields[1] != "templated_functions" {
		return fail("unrecognized header tag %q", hfields[1])
	}
	metric := p.AddMetric(metricName)

	// Column comment line.
	if _, ok := nextLine(); !ok {
		return fail("missing column header")
	}

	for i := 0; i < numFuncs; i++ {
		ln, ok := nextLine()
		if !ok {
			return fail("expected %d functions, got %d", numFuncs, i)
		}
		name, rest, err := splitQuoted(ln)
		if err != nil {
			return fail("%v", err)
		}
		group := ""
		if gi := strings.Index(rest, `GROUP="`); gi >= 0 {
			g := rest[gi+len(`GROUP="`):]
			if end := strings.IndexByte(g, '"'); end >= 0 {
				group = g[:end]
			}
			rest = rest[:gi]
		}
		fields := strings.Fields(rest)
		if len(fields) < 5 {
			return fail("function line needs 5 numeric fields, got %d", len(fields))
		}
		nums := make([]float64, 5)
		for j := 0; j < 5; j++ {
			nums[j], err = strconv.ParseFloat(fields[j], 64)
			if err != nil {
				return fail("bad number %q", fields[j])
			}
		}
		e := p.AddIntervalEvent(name, group)
		d := th.IntervalData(e.ID, len(p.Metrics()))
		d.NumCalls = nums[0]
		d.NumSubrs = nums[1]
		d.PerMetric[metric] = model.MetricData{Exclusive: nums[2], Inclusive: nums[3]}
	}

	// Aggregates (unused, but the count must be consumed).
	ln, ok := nextLine()
	if !ok {
		return nil // old files may end after functions
	}
	aggFields := strings.Fields(ln)
	if len(aggFields) >= 2 && aggFields[1] == "aggregates" {
		n, err := strconv.Atoi(aggFields[0])
		if err != nil {
			return fail("bad aggregate count")
		}
		for i := 0; i < n; i++ {
			if _, ok := nextLine(); !ok {
				return fail("truncated aggregates")
			}
		}
		ln, ok = nextLine()
		if !ok {
			return nil
		}
	}

	// User events.
	ueFields := strings.Fields(ln)
	if len(ueFields) >= 2 && ueFields[1] == "userevents" {
		n, err := strconv.Atoi(ueFields[0])
		if err != nil {
			return fail("bad user event count")
		}
		if n > 0 {
			if _, ok := nextLine(); !ok { // column header
				return fail("missing user event column header")
			}
		}
		for i := 0; i < n; i++ {
			ln, ok := nextLine()
			if !ok {
				return fail("expected %d user events, got %d", n, i)
			}
			name, rest, err := splitQuoted(ln)
			if err != nil {
				return fail("%v", err)
			}
			fields := strings.Fields(rest)
			if len(fields) < 5 {
				return fail("user event line needs 5 fields")
			}
			nums := make([]float64, 5)
			for j := 0; j < 5; j++ {
				nums[j], err = strconv.ParseFloat(fields[j], 64)
				if err != nil {
					return fail("bad number %q", fields[j])
				}
			}
			ae := p.AddAtomicEvent(name, "TAU_EVENT")
			d := th.AtomicData(ae.ID)
			d.SampleCount = int64(nums[0])
			d.Maximum = nums[1]
			d.Minimum = nums[2]
			d.Mean = nums[3]
			d.SumSqr = nums[4]
		}
	}
	return sc.Err()
}

// splitQuoted splits `"name" rest...` into the quoted name and the rest.
func splitQuoted(line string) (name, rest string, err error) {
	s := strings.TrimSpace(line)
	if !strings.HasPrefix(s, `"`) {
		return "", "", fmt.Errorf("expected quoted event name in %q", line)
	}
	end := strings.IndexByte(s[1:], '"')
	if end < 0 {
		return "", "", fmt.Errorf("unterminated event name in %q", line)
	}
	return s[1 : 1+end], s[2+end:], nil
}

// Write emits a profile as a TAU directory. Trials with one metric use the
// flat layout; multi-metric trials get MULTI__<METRIC> subdirectories.
func Write(dir string, p *model.Profile) error {
	metrics := p.Metrics()
	if len(metrics) == 0 {
		return fmt.Errorf("tau: profile has no metrics")
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return fmt.Errorf("tau: %w", err)
	}
	if len(metrics) == 1 {
		return writeMetricDir(dir, p, 0)
	}
	for _, m := range metrics {
		sub := filepath.Join(dir, multiPrefix+sanitizeMetric(m.Name))
		if err := os.MkdirAll(sub, 0o755); err != nil {
			return fmt.Errorf("tau: %w", err)
		}
		if err := writeMetricDir(sub, p, m.ID); err != nil {
			return err
		}
	}
	return nil
}

// sanitizeMetric makes a metric name safe as a directory suffix.
func sanitizeMetric(name string) string {
	return strings.Map(func(r rune) rune {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9', r == '_', r == '-':
			return r
		}
		return '_'
	}, name)
}

func writeMetricDir(dir string, p *model.Profile, metric int) error {
	metricName := p.Metrics()[metric].Name
	for _, th := range p.Threads() {
		path := filepath.Join(dir, fmt.Sprintf("%s%d.%d.%d",
			FilePrefix, th.ID.Node, th.ID.Context, th.ID.Thread))
		if err := writeFile(path, p, th, metric, metricName); err != nil {
			return err
		}
	}
	return nil
}

func writeFile(path string, p *model.Profile, th *model.Thread, metric int, metricName string) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("tau: %w", err)
	}
	w := bufio.NewWriterSize(f, 1<<16)

	// Count this thread's interval events.
	n := 0
	th.EachInterval(func(int, *model.IntervalData) { n++ })
	fmt.Fprintf(w, "%d templated_functions_MULTI_%s\n", n, metricName)
	fmt.Fprintf(w, "# Name Calls Subrs Excl Incl ProfileCalls\n")
	events := p.IntervalEvents()
	var werr error
	th.EachInterval(func(eid int, d *model.IntervalData) {
		md := d.PerMetric[metric]
		if _, err := fmt.Fprintf(w, "%q %g %g %.16g %.16g 0 GROUP=%q\n",
			events[eid].Name, d.NumCalls, d.NumSubrs, md.Exclusive, md.Inclusive,
			events[eid].Group); err != nil && werr == nil {
			werr = err
		}
	})
	fmt.Fprintf(w, "0 aggregates\n")

	na := 0
	th.EachAtomic(func(int, *model.AtomicData) { na++ })
	fmt.Fprintf(w, "%d userevents\n", na)
	if na > 0 {
		fmt.Fprintf(w, "# eventname numevents max min mean sumsqr\n")
		atomics := p.AtomicEvents()
		th.EachAtomic(func(eid int, d *model.AtomicData) {
			if _, err := fmt.Fprintf(w, "%q %d %.16g %.16g %.16g %.16g\n",
				atomics[eid].Name, d.SampleCount, d.Maximum, d.Minimum, d.Mean,
				d.SumSqr); err != nil && werr == nil {
				werr = err
			}
		})
	}
	if werr != nil {
		f.Close()
		return fmt.Errorf("tau: %w", werr)
	}
	if err := w.Flush(); err != nil {
		f.Close()
		return fmt.Errorf("tau: %w", err)
	}
	return f.Close()
}
