package tau_test

import (
	"testing"

	"perfdmf/internal/formats/tau"
	"perfdmf/internal/synth"
)

func BenchmarkWrite(b *testing.B) {
	p := synth.LargeTrial(synth.LargeTrialConfig{Threads: 32, Events: 50, Metrics: 2, Seed: 1})
	dir := b.TempDir()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := tau.Write(dir, p); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkRead(b *testing.B) {
	p := synth.LargeTrial(synth.LargeTrialConfig{Threads: 32, Events: 50, Metrics: 2, Seed: 1})
	dir := b.TempDir()
	if err := tau.Write(dir, p); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		got, err := tau.Read(dir)
		if err != nil {
			b.Fatal(err)
		}
		if got.DataPoints() != p.DataPoints() {
			b.Fatal("lost data")
		}
	}
}
