package psrun

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"perfdmf/internal/model"
)

const sampleDoc = `<?xml version="1.0" encoding="UTF-8"?>
<hwpcreport version="1.0" generator="psrun">
  <executable>sweep3d</executable>
  <hwpcevents>
    <hwpcevent name="PAPI_TOT_CYC" type="preset">987654321</hwpcevent>
    <hwpcevent name="PAPI_FP_OPS" type="preset">123456789</hwpcevent>
    <hwpcevent name="PAPI_L1_DCM" type="preset">55555</hwpcevent>
  </hwpcevents>
  <wallclock units="seconds">12.5</wallclock>
</hwpcreport>
`

func TestParseSample(t *testing.T) {
	p, err := Parse(strings.NewReader(sampleDoc))
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	if p.Name != "sweep3d" {
		t.Errorf("name: %q", p.Name)
	}
	e := p.FindIntervalEvent(EventName)
	if e == nil {
		t.Fatal("no Entire Program event")
	}
	d := p.FindThread(0, 0, 0).FindIntervalData(e.ID)
	if got := d.PerMetric[p.MetricID("PAPI_TOT_CYC")].Inclusive; got != 987654321 {
		t.Errorf("cycles: %g", got)
	}
	if got := d.PerMetric[p.MetricID(TimeMetric)].Inclusive; got != 12.5e6 {
		t.Errorf("wall time: %g", got)
	}
	if len(p.Metrics()) != 4 {
		t.Errorf("metrics: %v", p.Metrics())
	}
}

func TestParseErrors(t *testing.T) {
	if _, err := Parse(strings.NewReader("not xml at all")); err == nil {
		t.Error("non-XML accepted")
	}
	if _, err := Parse(strings.NewReader("<hwpcreport></hwpcreport>")); err == nil {
		t.Error("empty report accepted")
	}
	bad := `<hwpcreport><hwpcevents><hwpcevent name="X">abc</hwpcevent></hwpcevents></hwpcreport>`
	if _, err := Parse(strings.NewReader(bad)); err == nil {
		t.Error("bad counter value accepted")
	}
}

func TestMultiRank(t *testing.T) {
	dir := t.TempDir()
	p := model.New("multi")
	for rank := 0; rank < 4; rank++ {
		path := filepath.Join(dir, "run."+string(rune('0'+rank))+".xml")
		if err := os.WriteFile(path, []byte(sampleDoc), 0o644); err != nil {
			t.Fatal(err)
		}
		if err := ReadRank(p, path, rank); err != nil {
			t.Fatal(err)
		}
	}
	if p.NumThreads() != 4 {
		t.Fatalf("threads: %d", p.NumThreads())
	}
	if len(p.Metrics()) != 4 {
		t.Fatalf("metrics merged wrong: %v", p.Metrics())
	}
}

func TestRoundTrip(t *testing.T) {
	orig, err := Parse(strings.NewReader(sampleDoc))
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "out.xml")
	if err := Write(path, orig, 0); err != nil {
		t.Fatal(err)
	}
	got, err := Read(path)
	if err != nil {
		t.Fatal(err)
	}
	wd := orig.FindThread(0, 0, 0).FindIntervalData(orig.FindIntervalEvent(EventName).ID)
	gd := got.FindThread(0, 0, 0).FindIntervalData(got.FindIntervalEvent(EventName).ID)
	for _, m := range orig.Metrics() {
		gm := got.MetricID(m.Name)
		if gm < 0 {
			t.Fatalf("lost metric %q", m.Name)
		}
		if wd.PerMetric[m.ID] != gd.PerMetric[gm] {
			t.Errorf("%s: got %+v want %+v", m.Name, gd.PerMetric[gm], wd.PerMetric[m.ID])
		}
	}
}

func TestWriteErrors(t *testing.T) {
	p := model.New("x")
	if err := Write(filepath.Join(t.TempDir(), "f"), p, 0); err == nil {
		t.Error("empty profile accepted")
	}
}
