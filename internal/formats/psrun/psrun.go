// Package psrun parses PerfSuite psrun XML documents (NCSA), the last of
// the paper's six import formats. A psrun document records whole-program
// hardware counter totals for one process:
//
//	<hwpcreport version="1.0" generator="psrun">
//	  <executable>sweep3d</executable>
//	  <hwpcevents>
//	    <hwpcevent name="PAPI_TOT_CYC" type="preset">987654321</hwpcevent>
//	    <hwpcevent name="PAPI_FP_OPS" type="preset">123456789</hwpcevent>
//	  </hwpcevents>
//	  <wallclock units="seconds">12.5</wallclock>
//	</hwpcreport>
//
// There is no per-function breakdown, so the whole run becomes a single
// "Entire Program" event whose metrics are the counters plus wall-clock
// time (converted to microseconds). Multi-process runs are one XML file per
// rank, merged with ReadRank.
package psrun

import (
	"encoding/xml"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"

	"perfdmf/internal/model"
)

// EventName is the single whole-program interval event.
const EventName = "Entire Program"

// TimeMetric is the wall-clock metric name.
const TimeMetric = "WALL_CLOCK_TIME"

const secondsToMicro = 1e6

// report mirrors the psrun XML document.
type report struct {
	XMLName    xml.Name    `xml:"hwpcreport"`
	Version    string      `xml:"version,attr"`
	Generator  string      `xml:"generator,attr"`
	Executable string      `xml:"executable"`
	Events     []hwpcEvent `xml:"hwpcevents>hwpcevent"`
	Wallclock  *wallclock  `xml:"wallclock"`
}

type hwpcEvent struct {
	Name  string `xml:"name,attr"`
	Type  string `xml:"type,attr"`
	Value string `xml:",chardata"`
}

type wallclock struct {
	Units string `xml:"units,attr"`
	Value string `xml:",chardata"`
}

// Read parses a single psrun XML file.
func Read(path string) (*model.Profile, error) {
	p := model.New("psrun")
	if err := ReadRank(p, path, 0); err != nil {
		return nil, err
	}
	p.Name = path
	return p, nil
}

// ReadRank parses one psrun document into rank's thread of an existing
// profile.
func ReadRank(p *model.Profile, path string, rank int) error {
	f, err := os.Open(path)
	if err != nil {
		return fmt.Errorf("psrun: %w", err)
	}
	defer f.Close()
	if err := parseInto(p, f, rank); err != nil {
		return fmt.Errorf("psrun: %s: %w", path, err)
	}
	return nil
}

// Parse parses a psrun document from a reader (rank 0).
func Parse(r io.Reader) (*model.Profile, error) {
	p := model.New("psrun")
	if err := parseInto(p, r, 0); err != nil {
		return nil, err
	}
	return p, nil
}

func parseInto(p *model.Profile, r io.Reader, rank int) error {
	var rep report
	dec := xml.NewDecoder(r)
	if err := dec.Decode(&rep); err != nil {
		return fmt.Errorf("bad XML: %w", err)
	}
	if len(rep.Events) == 0 && rep.Wallclock == nil {
		return fmt.Errorf("document has no hwpcevent or wallclock elements")
	}
	if rep.Executable != "" && p.Name == "psrun" {
		p.Name = rep.Executable
	}
	e := p.AddIntervalEvent(EventName, "PSRUN")
	th := p.Thread(rank, 0, 0)
	d := th.IntervalData(e.ID, len(p.Metrics()))
	d.NumCalls = 1

	set := func(name string, v float64) {
		m := p.AddMetric(name)
		for len(d.PerMetric) <= m {
			d.PerMetric = append(d.PerMetric, model.MetricData{})
		}
		d.PerMetric[m] = model.MetricData{Inclusive: v, Exclusive: v}
	}
	for _, ev := range rep.Events {
		v, err := strconv.ParseFloat(strings.TrimSpace(ev.Value), 64)
		if err != nil {
			return fmt.Errorf("bad hwpcevent value %q for %s", ev.Value, ev.Name)
		}
		set(ev.Name, v)
	}
	if rep.Wallclock != nil {
		v, err := strconv.ParseFloat(strings.TrimSpace(rep.Wallclock.Value), 64)
		if err != nil {
			return fmt.Errorf("bad wallclock value %q", rep.Wallclock.Value)
		}
		if rep.Wallclock.Units == "" || rep.Wallclock.Units == "seconds" {
			v *= secondsToMicro
		}
		set(TimeMetric, v)
	}
	// Widen in case another rank introduced extra metrics earlier.
	nm := len(p.Metrics())
	for len(d.PerMetric) < nm {
		d.PerMetric = append(d.PerMetric, model.MetricData{})
	}
	return nil
}

// Write renders one rank of a profile as a psrun XML document.
func Write(path string, p *model.Profile, node int) error {
	th := p.FindThread(node, 0, 0)
	if th == nil {
		return fmt.Errorf("psrun: profile has no thread %d,0,0", node)
	}
	e := p.FindIntervalEvent(EventName)
	if e == nil {
		// Fall back to the first event; psrun has exactly one section.
		evs := p.IntervalEvents()
		if len(evs) == 0 {
			return fmt.Errorf("psrun: profile has no events")
		}
		e = evs[0]
	}
	d := th.FindIntervalData(e.ID)
	if d == nil {
		return fmt.Errorf("psrun: thread %d,0,0 has no data for %q", node, e.Name)
	}
	rep := report{Version: "1.0", Generator: "psrun", Executable: p.Name}
	timeID := p.MetricID(TimeMetric)
	for _, m := range p.Metrics() {
		if m.ID >= len(d.PerMetric) {
			continue
		}
		v := d.PerMetric[m.ID].Inclusive
		if m.ID == timeID {
			rep.Wallclock = &wallclock{
				Units: "seconds",
				Value: strconv.FormatFloat(v/secondsToMicro, 'g', -1, 64),
			}
			continue
		}
		rep.Events = append(rep.Events, hwpcEvent{
			Name:  m.Name,
			Type:  "preset",
			Value: strconv.FormatFloat(v, 'f', -1, 64),
		})
	}
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("psrun: %w", err)
	}
	enc := xml.NewEncoder(f)
	enc.Indent("", "  ")
	if _, err := io.WriteString(f, xml.Header); err != nil {
		f.Close()
		return fmt.Errorf("psrun: %w", err)
	}
	if err := enc.Encode(rep); err != nil {
		f.Close()
		return fmt.Errorf("psrun: %w", err)
	}
	return f.Close()
}
