// Parse-layer observability: every Load records a per-format duration and
// data-point histogram, and — when tracing is active — a "parse" span that
// slots into the caller's span tree (one child per file for multi-rank
// loads). Metric names are built from the fixed format list at init, so
// the set is static and shows up in /metrics from the first scrape.
package formats

import (
	"time"

	"perfdmf/internal/model"
	"perfdmf/internal/obs"
)

var (
	mParseTotal  = obs.Default.Counter("formats_parse_total")
	mParseErrors = obs.Default.Counter("formats_parse_errors_total")
	mDetectNS    = obs.Default.Histogram("formats_detect_ns")

	// Per-format histograms, keyed by the Format constants. Read-only
	// after init, so lookups need no lock.
	mParseNS   = make(map[string]*obs.Histogram, len(All))
	mParseRows = make(map[string]*obs.Histogram, len(All))
)

func init() {
	for _, f := range All {
		mParseNS[f] = obs.Default.Histogram("formats_parse_" + f + "_ns")
		mParseRows[f] = obs.Default.Histogram("formats_parse_" + f + "_rows")
	}
}

// finishParse stamps metrics and the span for one completed parse.
func finishParse(sp *obs.Span, format string, start time.Time, p *model.Profile, err error) {
	elapsed := time.Since(start)
	if err != nil {
		mParseErrors.Inc()
	} else {
		mParseTotal.Inc()
		var points int64
		if p != nil {
			points = int64(p.DataPoints())
		}
		if h := mParseNS[format]; h != nil {
			h.Observe(int64(elapsed))
			mParseRows[format].Observe(points)
		}
		if sp != nil {
			sp.RowsReturned = points
		}
	}
	sp.Finish(err)
}
