package xmlprof

import (
	"bytes"
	"path/filepath"
	"strings"
	"testing"

	"perfdmf/internal/model"
)

func sample() *model.Profile {
	p := model.New("xml-sample")
	p.Meta["node_count"] = "4"
	p.Meta["problem"] = "64x64x64"
	tID := p.AddMetric("TIME")
	fID := p.AddMetric("PAPI_FP_OPS")
	main := p.AddIntervalEvent("main()", "TAU_DEFAULT")
	send := p.AddIntervalEvent("MPI_Send()", "MPI")
	msg := p.AddAtomicEvent("Message size", "MPI")
	for n := 0; n < 4; n++ {
		th := p.Thread(n, 0, 0)
		d := th.IntervalData(main.ID, 2)
		d.NumCalls = 1
		d.NumSubrs = 7
		d.PerMetric[tID] = model.MetricData{Inclusive: 1e6 + float64(n), Exclusive: 1e5}
		d.PerMetric[fID] = model.MetricData{Inclusive: 5e8, Exclusive: 4e8}
		d2 := th.IntervalData(send.ID, 2)
		d2.NumCalls = 320
		d2.PerMetric[tID] = model.MetricData{Inclusive: 2.5e5, Exclusive: 2.5e5}
		a := th.AtomicData(msg.ID)
		a.SampleCount = 320
		a.Minimum = 8
		a.Maximum = 1 << 20
		a.Mean = 4096.25
		a.SumSqr = 8.25e12
	}
	return p
}

func TestRoundTripExact(t *testing.T) {
	p := sample()
	var buf bytes.Buffer
	if err := Export(&buf, p); err != nil {
		t.Fatal(err)
	}
	got, err := Import(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Name != p.Name {
		t.Errorf("name: %q", got.Name)
	}
	if got.Meta["node_count"] != "4" || got.Meta["problem"] != "64x64x64" {
		t.Errorf("meta: %v", got.Meta)
	}
	if len(got.Metrics()) != 2 || got.Metrics()[1].Name != "PAPI_FP_OPS" {
		t.Fatalf("metrics: %v", got.Metrics())
	}
	if got.NumThreads() != 4 {
		t.Fatalf("threads: %d", got.NumThreads())
	}
	for _, wth := range p.Threads() {
		gth := got.FindThread(wth.ID.Node, wth.ID.Context, wth.ID.Thread)
		wth.EachInterval(func(eid int, wd *model.IntervalData) {
			gd := gth.FindIntervalData(eid)
			if gd == nil {
				t.Fatalf("thread %v lost event %d", wth.ID, eid)
			}
			if gd.NumCalls != wd.NumCalls || gd.NumSubrs != wd.NumSubrs {
				t.Errorf("calls/subrs differ on %v", wth.ID)
			}
			for m := range wd.PerMetric {
				if gd.PerMetric[m] != wd.PerMetric[m] {
					t.Errorf("thread %v event %d metric %d: %+v vs %+v",
						wth.ID, eid, m, gd.PerMetric[m], wd.PerMetric[m])
				}
			}
		})
		wth.EachAtomic(func(eid int, wd *model.AtomicData) {
			gd := gth.FindAtomicData(eid)
			if gd == nil || *gd != *wd {
				t.Errorf("atomic data differs on %v: %+v vs %+v", wth.ID, gd, wd)
			}
		})
	}
	// Groups preserved.
	if got.FindIntervalEvent("MPI_Send()").Group != "MPI" {
		t.Error("event group lost")
	}
	if got.FindAtomicEvent("Message size").Group != "MPI" {
		t.Error("atomic group lost")
	}
	// Derived flag preserved.
	p2 := sample()
	p2.DeriveMetric("FLOPS", model.Ratio("PAPI_FP_OPS", "TIME", 1e6))
	var buf2 bytes.Buffer
	if err := Export(&buf2, p2); err != nil {
		t.Fatal(err)
	}
	got2, err := Import(&buf2)
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, m := range got2.Metrics() {
		if m.Name == "FLOPS" {
			found = true
			if !m.Derived {
				t.Error("derived flag lost on round trip")
			}
		}
	}
	if !found {
		t.Error("derived metric lost")
	}
}

func TestFileRoundTrip(t *testing.T) {
	p := sample()
	path := filepath.Join(t.TempDir(), "trial.xml")
	if err := Write(path, p); err != nil {
		t.Fatal(err)
	}
	got, err := Read(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.DataPoints() != p.DataPoints() {
		t.Fatalf("datapoints: %d vs %d", got.DataPoints(), p.DataPoints())
	}
}

func TestImportErrors(t *testing.T) {
	bad := []string{
		"not xml",
		`<profile name="x"><metrics><metric id="5" name="TIME"/></metrics></profile>`,
		`<profile name="x"><events><event id="3" name="f"/></events></profile>`,
		`<profile name="x"><metrics><metric id="0" name="A"/><metric id="1" name="A"/></metrics></profile>`,
		`<profile name="x"><threads><thread node="0" context="0" thread="0">
			<interval event="9" calls="1"/></thread></threads></profile>`,
		`<profile name="x"><metrics><metric id="0" name="TIME"/></metrics>
			<events><event id="0" name="f"/></events>
			<threads><thread node="0" context="0" thread="0">
			<interval event="0" calls="1"><m id="7" incl="1" excl="1"/></interval></thread></threads></profile>`,
	}
	for i, src := range bad {
		if _, err := Import(strings.NewReader(src)); err == nil {
			t.Errorf("case %d accepted", i)
		}
	}
}
