// Package xmlprof implements PerfDMF's common XML representation (paper
// §3.1: "Export of profile data is also supported in a common XML
// representation"). Unlike the tool-specific formats, the XML document is
// lossless: metrics, interval events with groups, atomic events, trial
// metadata, and every thread's measurements round-trip exactly.
package xmlprof

import (
	"encoding/xml"
	"fmt"
	"io"
	"os"
	"sort"

	"perfdmf/internal/model"
)

// Document is the root element.
type Document struct {
	XMLName xml.Name     `xml:"profile"`
	Name    string       `xml:"name,attr"`
	Meta    []MetaItem   `xml:"metadata>item"`
	Metrics []MetricElem `xml:"metrics>metric"`
	Events  []EventElem  `xml:"events>event"`
	Atomics []AtomicElem `xml:"atomicevents>event"`
	Threads []ThreadElem `xml:"threads>thread"`
}

// MetaItem is one trial metadata pair.
type MetaItem struct {
	Key   string `xml:"key,attr"`
	Value string `xml:",chardata"`
}

// MetricElem declares one metric.
type MetricElem struct {
	ID      int    `xml:"id,attr"`
	Name    string `xml:"name,attr"`
	Derived bool   `xml:"derived,attr,omitempty"`
}

// EventElem declares one interval event.
type EventElem struct {
	ID    int    `xml:"id,attr"`
	Name  string `xml:"name,attr"`
	Group string `xml:"group,attr,omitempty"`
}

// AtomicElem declares one atomic event.
type AtomicElem struct {
	ID    int    `xml:"id,attr"`
	Name  string `xml:"name,attr"`
	Group string `xml:"group,attr,omitempty"`
}

// ThreadElem holds one thread's measurements.
type ThreadElem struct {
	Node     int            `xml:"node,attr"`
	Context  int            `xml:"context,attr"`
	Thread   int            `xml:"thread,attr"`
	Interval []IntervalElem `xml:"interval"`
	Atomic   []AtomicData   `xml:"atomic"`
}

// IntervalElem is one (event, thread) interval record.
type IntervalElem struct {
	Event int          `xml:"event,attr"`
	Calls float64      `xml:"calls,attr"`
	Subrs float64      `xml:"subrs,attr"`
	Data  []MetricData `xml:"m"`
}

// MetricData is one metric's (inclusive, exclusive) pair.
type MetricData struct {
	Metric    int     `xml:"id,attr"`
	Inclusive float64 `xml:"incl,attr"`
	Exclusive float64 `xml:"excl,attr"`
}

// AtomicData is one (atomic event, thread) record.
type AtomicData struct {
	Event  int     `xml:"event,attr"`
	Count  int64   `xml:"count,attr"`
	Max    float64 `xml:"max,attr"`
	Min    float64 `xml:"min,attr"`
	Mean   float64 `xml:"mean,attr"`
	SumSqr float64 `xml:"sumsqr,attr"`
}

// Write exports a profile to path as XML.
func Write(path string, p *model.Profile) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("xmlprof: %w", err)
	}
	if err := Export(f, p); err != nil {
		f.Close()
		return fmt.Errorf("xmlprof: %s: %w", path, err)
	}
	return f.Close()
}

// Export writes a profile as XML to w.
func Export(w io.Writer, p *model.Profile) error {
	doc := Document{Name: p.Name}
	keys := make([]string, 0, len(p.Meta))
	for k := range p.Meta {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		doc.Meta = append(doc.Meta, MetaItem{Key: k, Value: p.Meta[k]})
	}
	for _, m := range p.Metrics() {
		doc.Metrics = append(doc.Metrics, MetricElem{ID: m.ID, Name: m.Name, Derived: m.Derived})
	}
	for _, e := range p.IntervalEvents() {
		doc.Events = append(doc.Events, EventElem{ID: e.ID, Name: e.Name, Group: e.Group})
	}
	for _, e := range p.AtomicEvents() {
		doc.Atomics = append(doc.Atomics, AtomicElem{ID: e.ID, Name: e.Name, Group: e.Group})
	}
	for _, th := range p.Threads() {
		te := ThreadElem{Node: th.ID.Node, Context: th.ID.Context, Thread: th.ID.Thread}
		th.EachInterval(func(eid int, d *model.IntervalData) {
			ie := IntervalElem{Event: eid, Calls: d.NumCalls, Subrs: d.NumSubrs}
			for m, md := range d.PerMetric {
				ie.Data = append(ie.Data, MetricData{
					Metric: m, Inclusive: md.Inclusive, Exclusive: md.Exclusive,
				})
			}
			te.Interval = append(te.Interval, ie)
		})
		th.EachAtomic(func(eid int, d *model.AtomicData) {
			te.Atomic = append(te.Atomic, AtomicData{
				Event: eid, Count: d.SampleCount, Max: d.Maximum, Min: d.Minimum,
				Mean: d.Mean, SumSqr: d.SumSqr,
			})
		})
		doc.Threads = append(doc.Threads, te)
	}
	if _, err := io.WriteString(w, xml.Header); err != nil {
		return err
	}
	enc := xml.NewEncoder(w)
	enc.Indent("", " ")
	return enc.Encode(doc)
}

// Read imports an XML profile from path.
func Read(path string) (*model.Profile, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("xmlprof: %w", err)
	}
	defer f.Close()
	p, err := Import(f)
	if err != nil {
		return nil, fmt.Errorf("xmlprof: %s: %w", path, err)
	}
	return p, nil
}

// Import reads an XML profile from r.
func Import(r io.Reader) (*model.Profile, error) {
	var doc Document
	if err := xml.NewDecoder(r).Decode(&doc); err != nil {
		return nil, fmt.Errorf("bad XML: %w", err)
	}
	p := model.New(doc.Name)
	for _, it := range doc.Meta {
		p.Meta[it.Key] = it.Value
	}
	// Metrics, events and atomics must be registered in ID order so the
	// document's IDs match the model's.
	sort.Slice(doc.Metrics, func(i, j int) bool { return doc.Metrics[i].ID < doc.Metrics[j].ID })
	for i, m := range doc.Metrics {
		if m.ID != i {
			return nil, fmt.Errorf("metric ids are not dense: got %d at position %d", m.ID, i)
		}
		id := p.AddMetric(m.Name)
		if id != i {
			return nil, fmt.Errorf("duplicate metric name %q", m.Name)
		}
		if m.Derived {
			p.SetDerived(id)
		}
	}
	sort.Slice(doc.Events, func(i, j int) bool { return doc.Events[i].ID < doc.Events[j].ID })
	for i, e := range doc.Events {
		if e.ID != i {
			return nil, fmt.Errorf("event ids are not dense: got %d at position %d", e.ID, i)
		}
		if got := p.AddIntervalEvent(e.Name, e.Group); got.ID != i {
			return nil, fmt.Errorf("duplicate event name %q", e.Name)
		}
	}
	sort.Slice(doc.Atomics, func(i, j int) bool { return doc.Atomics[i].ID < doc.Atomics[j].ID })
	for i, e := range doc.Atomics {
		if e.ID != i {
			return nil, fmt.Errorf("atomic event ids are not dense: got %d at position %d", e.ID, i)
		}
		if got := p.AddAtomicEvent(e.Name, e.Group); got.ID != i {
			return nil, fmt.Errorf("duplicate atomic event name %q", e.Name)
		}
	}
	nm := len(p.Metrics())
	nev := len(p.IntervalEvents())
	nat := len(p.AtomicEvents())
	for _, te := range doc.Threads {
		th := p.Thread(te.Node, te.Context, te.Thread)
		for _, ie := range te.Interval {
			if ie.Event < 0 || ie.Event >= nev {
				return nil, fmt.Errorf("thread %d,%d,%d references unknown event %d",
					te.Node, te.Context, te.Thread, ie.Event)
			}
			d := th.IntervalData(ie.Event, nm)
			d.NumCalls = ie.Calls
			d.NumSubrs = ie.Subrs
			for _, md := range ie.Data {
				if md.Metric < 0 || md.Metric >= nm {
					return nil, fmt.Errorf("interval record references unknown metric %d", md.Metric)
				}
				d.PerMetric[md.Metric] = model.MetricData{
					Inclusive: md.Inclusive, Exclusive: md.Exclusive,
				}
			}
		}
		for _, ad := range te.Atomic {
			if ad.Event < 0 || ad.Event >= nat {
				return nil, fmt.Errorf("thread %d,%d,%d references unknown atomic event %d",
					te.Node, te.Context, te.Thread, ad.Event)
			}
			d := th.AtomicData(ad.Event)
			d.SampleCount = ad.Count
			d.Maximum = ad.Max
			d.Minimum = ad.Min
			d.Mean = ad.Mean
			d.SumSqr = ad.SumSqr
		}
	}
	return p, nil
}
