// Package gprof parses GNU gprof text output (Graham, Kessler, McKusick —
// the first profile format the paper lists) into the common profile model,
// and writes the same shape back out for testing and interchange.
//
// The parser consumes the two standard report sections:
//
//   - the flat profile ("%  cumulative  self  calls  ...  name") supplies
//     exclusive time and call counts;
//   - the call graph ("index % time  self  children  called  name")
//     supplies inclusive time (self + children) for each primary line.
//
// gprof measures a single process, so all data lands on thread (0,0,0).
// Seconds are converted to microseconds, the model's canonical time unit.
package gprof

import (
	"bufio"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"

	"perfdmf/internal/model"
)

// MetricName is the metric gprof profiles record.
const MetricName = "TIME"

const secondsToMicro = 1e6

// Read parses a gprof report file.
func Read(path string) (*model.Profile, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("gprof: %w", err)
	}
	defer f.Close()
	p, err := Parse(f)
	if err != nil {
		return nil, fmt.Errorf("gprof: %s: %w", path, err)
	}
	p.Name = path
	return p, nil
}

// Parse parses a gprof report from a reader.
func Parse(r io.Reader) (*model.Profile, error) {
	p := model.New("gprof")
	metric := p.AddMetric(MetricName)
	th := p.Thread(0, 0, 0)

	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<16), 1<<22)

	type flatRow struct {
		self  float64
		calls float64
	}
	flat := make(map[string]flatRow)
	inclusive := make(map[string]float64)

	const (
		secNone = iota
		secFlat
		secGraph
	)
	section := secNone
	sawFlat := false
	for sc.Scan() {
		line := sc.Text()
		trimmed := strings.TrimSpace(line)
		switch {
		case strings.HasPrefix(trimmed, "Flat profile:"):
			section = secFlat
			sawFlat = true
			continue
		case strings.HasPrefix(trimmed, "Call graph"):
			section = secGraph
			continue
		}
		switch section {
		case secFlat:
			name, row, ok := parseFlatLine(trimmed)
			if ok {
				flat[name] = row
			}
		case secGraph:
			name, incl, ok := parseGraphPrimaryLine(line)
			if ok {
				inclusive[name] = incl
			}
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if !sawFlat {
		return nil, fmt.Errorf("no 'Flat profile:' section found")
	}
	if len(flat) == 0 {
		return nil, fmt.Errorf("flat profile contains no samples")
	}

	for name, row := range flat {
		e := p.AddIntervalEvent(name, "GPROF_DEFAULT")
		d := th.IntervalData(e.ID, 1)
		d.NumCalls = row.calls
		excl := row.self * secondsToMicro
		incl := excl
		if v, ok := inclusive[name]; ok && v*secondsToMicro > incl {
			incl = v * secondsToMicro
		}
		d.PerMetric[metric] = model.MetricData{Exclusive: excl, Inclusive: incl}
	}
	return p, nil
}

// parseFlatLine parses one data line of the flat profile:
//
//	%time  cumulative  self  [calls  self-ms/call  total-ms/call]  name
func parseFlatLine(line string) (string, struct{ self, calls float64 }, bool) {
	var zero struct{ self, calls float64 }
	fields := strings.Fields(line)
	if len(fields) < 4 {
		return "", zero, false
	}
	// The first three fields must be numeric.
	nums := make([]float64, 3)
	for i := 0; i < 3; i++ {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return "", zero, false
		}
		nums[i] = v
	}
	calls := 0.0
	nameStart := 3
	if v, err := strconv.ParseFloat(fields[3], 64); err == nil && len(fields) >= 7 {
		calls = v
		nameStart = 6
	} else if err == nil && len(fields) == 5 {
		// calls present but per-call columns absent (uncalled leaf).
		calls = v
		nameStart = 4
	}
	if nameStart >= len(fields) {
		return "", zero, false
	}
	name := strings.Join(fields[nameStart:], " ")
	return name, struct{ self, calls float64 }{self: nums[2], calls: calls}, true
}

// parseGraphPrimaryLine parses a primary call-graph line, which is the only
// line in an entry that begins with "[n]" in the index column:
//
//	[3]    52.0    0.02    0.30     121         name [3]
func parseGraphPrimaryLine(line string) (string, float64, bool) {
	trimmed := strings.TrimSpace(line)
	if !strings.HasPrefix(trimmed, "[") {
		return "", 0, false
	}
	fields := strings.Fields(trimmed)
	if len(fields) < 5 {
		return "", 0, false
	}
	self, err1 := strconv.ParseFloat(fields[2], 64)
	children, err2 := strconv.ParseFloat(fields[3], 64)
	if err1 != nil || err2 != nil {
		return "", 0, false
	}
	// Name runs from field 4 (or 5 when a "called" column is present) to
	// the trailing "[n]" tag.
	nameStart := 4
	if _, err := parseCalled(fields[4]); err == nil && len(fields) >= 6 {
		nameStart = 5
	}
	nameEnd := len(fields)
	if strings.HasPrefix(fields[nameEnd-1], "[") {
		nameEnd--
	}
	if nameStart >= nameEnd {
		return "", 0, false
	}
	name := strings.Join(fields[nameStart:nameEnd], " ")
	return name, self + children, true
}

// parseCalled parses the "called" column, which may be "121" or "121+5".
func parseCalled(s string) (float64, error) {
	if i := strings.IndexByte(s, '+'); i >= 0 {
		s = s[:i]
	}
	return strconv.ParseFloat(s, 64)
}

// Write renders a profile as a gprof-style report. Only thread (0,0,0) and
// the TIME metric are written, matching what gprof itself can express.
func Write(path string, p *model.Profile) error {
	th := p.FindThread(0, 0, 0)
	if th == nil {
		return fmt.Errorf("gprof: profile has no thread 0,0,0")
	}
	metric := p.MetricID(MetricName)
	if metric < 0 {
		return fmt.Errorf("gprof: profile has no %s metric", MetricName)
	}
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("gprof: %w", err)
	}
	w := bufio.NewWriter(f)

	type row struct {
		name              string
		self, incl, calls float64
	}
	var rows []row
	total := 0.0
	events := p.IntervalEvents()
	th.EachInterval(func(eid int, d *model.IntervalData) {
		md := d.PerMetric[metric]
		rows = append(rows, row{
			name:  events[eid].Name,
			self:  md.Exclusive / secondsToMicro,
			incl:  md.Inclusive / secondsToMicro,
			calls: d.NumCalls,
		})
		total += md.Exclusive / secondsToMicro
	})
	// gprof sorts the flat profile by self time, descending.
	for i := 0; i < len(rows); i++ {
		for j := i + 1; j < len(rows); j++ {
			if rows[j].self > rows[i].self {
				rows[i], rows[j] = rows[j], rows[i]
			}
		}
	}

	fmt.Fprintf(w, "Flat profile:\n\n")
	fmt.Fprintf(w, "Each sample counts as 0.01 seconds.\n")
	fmt.Fprintf(w, "  %%   cumulative   self              self     total\n")
	fmt.Fprintf(w, " time   seconds   seconds    calls  ms/call  ms/call  name\n")
	cum := 0.0
	for _, r := range rows {
		cum += r.self
		pct := 0.0
		if total > 0 {
			pct = 100 * r.self / total
		}
		selfMS, totalMS := 0.0, 0.0
		if r.calls > 0 {
			selfMS = 1000 * r.self / r.calls
			totalMS = 1000 * r.incl / r.calls
		}
		fmt.Fprintf(w, "%6.2f %10.2f %8.2f %8.0f %8.2f %8.2f  %s\n",
			pct, cum, r.self, r.calls, selfMS, totalMS, r.name)
	}

	fmt.Fprintf(w, "\n\t\t     Call graph\n\n")
	fmt.Fprintf(w, "granularity: each sample hit covers 2 byte(s)\n\n")
	fmt.Fprintf(w, "index %% time    self  children    called     name\n")
	for i, r := range rows {
		pct := 0.0
		if total > 0 {
			pct = 100 * r.incl / total
			if pct > 100 {
				pct = 100
			}
		}
		fmt.Fprintf(w, "[%d] %8.1f %7.2f %9.2f %9.0f         %s [%d]\n",
			i+1, pct, r.self, r.incl-r.self, r.calls, r.name, i+1)
		fmt.Fprintf(w, "-----------------------------------------------\n")
	}
	if err := w.Flush(); err != nil {
		f.Close()
		return fmt.Errorf("gprof: %w", err)
	}
	return f.Close()
}
