package gprof

import (
	"math"
	"path/filepath"
	"strings"
	"testing"

	"perfdmf/internal/model"
)

const sampleReport = `Flat profile:

Each sample counts as 0.01 seconds.
  %   cumulative   self              self     total
 time   seconds   seconds    calls  ms/call  ms/call  name
 60.00      0.60     0.60      100     6.00    12.00  compute
 30.00      0.90     0.30     7208     0.04     0.04  open
 10.00      1.00     0.10        1   100.00  1000.00  main

		     Call graph

granularity: each sample hit covers 2 byte(s) for 1.00% of 1.00 seconds

index % time    self  children    called     name
[1]     100.0    0.10      0.90         1         main [1]
-----------------------------------------------
[2]      90.0    0.60      0.30       100         compute [2]
-----------------------------------------------
[3]      30.0    0.30      0.00      7208         open [3]
-----------------------------------------------
`

func TestParseSample(t *testing.T) {
	p, err := Parse(strings.NewReader(sampleReport))
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	th := p.FindThread(0, 0, 0)
	if th == nil {
		t.Fatal("no thread 0,0,0")
	}
	check := func(name string, excl, incl, calls float64) {
		t.Helper()
		e := p.FindIntervalEvent(name)
		if e == nil {
			t.Fatalf("missing event %q", name)
		}
		d := th.FindIntervalData(e.ID)
		if math.Abs(d.PerMetric[0].Exclusive-excl) > 1 ||
			math.Abs(d.PerMetric[0].Inclusive-incl) > 1 ||
			d.NumCalls != calls {
			t.Errorf("%s: excl=%g incl=%g calls=%g, want %g/%g/%g",
				name, d.PerMetric[0].Exclusive, d.PerMetric[0].Inclusive, d.NumCalls,
				excl, incl, calls)
		}
	}
	// Microseconds.
	check("main", 0.10e6, 1.00e6, 1)
	check("compute", 0.60e6, 0.90e6, 100)
	check("open", 0.30e6, 0.30e6, 7208)
}

func TestParseFlatOnly(t *testing.T) {
	flat := `Flat profile:

Each sample counts as 0.01 seconds.
  %   cumulative   self              self     total
 time   seconds   seconds    calls  ms/call  ms/call  name
100.00      0.50     0.50      10     50.00    50.00  solo func name
`
	p, err := Parse(strings.NewReader(flat))
	if err != nil {
		t.Fatal(err)
	}
	e := p.FindIntervalEvent("solo func name")
	if e == nil {
		t.Fatal("event with spaces in name not parsed")
	}
	d := p.FindThread(0, 0, 0).FindIntervalData(e.ID)
	if d.PerMetric[0].Inclusive != d.PerMetric[0].Exclusive {
		t.Errorf("inclusive should default to exclusive: %+v", d)
	}
}

func TestParseErrors(t *testing.T) {
	if _, err := Parse(strings.NewReader("not a gprof file")); err == nil {
		t.Error("garbage accepted")
	}
	if _, err := Parse(strings.NewReader("Flat profile:\n\nno data rows\n")); err == nil {
		t.Error("empty flat profile accepted")
	}
	if _, err := Read(filepath.Join(t.TempDir(), "missing")); err == nil {
		t.Error("missing file accepted")
	}
}

func TestRoundTrip(t *testing.T) {
	p := model.New("rt")
	m := p.AddMetric(MetricName)
	th := p.Thread(0, 0, 0)
	names := []string{"alpha", "beta_func", "gamma"}
	for i, name := range names {
		e := p.AddIntervalEvent(name, "GPROF_DEFAULT")
		d := th.IntervalData(e.ID, 1)
		d.NumCalls = float64(10 * (i + 1))
		excl := float64(i+1) * 0.25e6
		d.PerMetric[m] = model.MetricData{Exclusive: excl, Inclusive: excl * 2}
	}
	path := filepath.Join(t.TempDir(), "gmon.txt")
	if err := Write(path, p); err != nil {
		t.Fatal(err)
	}
	got, err := Read(path)
	if err != nil {
		t.Fatal(err)
	}
	gth := got.FindThread(0, 0, 0)
	for _, name := range names {
		we := p.FindIntervalEvent(name)
		ge := got.FindIntervalEvent(name)
		if ge == nil {
			t.Fatalf("missing %q after round trip", name)
		}
		wd := th.FindIntervalData(we.ID)
		gd := gth.FindIntervalData(ge.ID)
		// The text format has 2 decimal places of seconds: tolerate 0.01 s.
		if math.Abs(wd.PerMetric[0].Exclusive-gd.PerMetric[0].Exclusive) > 0.01e6 {
			t.Errorf("%s exclusive: got %g want %g", name,
				gd.PerMetric[0].Exclusive, wd.PerMetric[0].Exclusive)
		}
		if math.Abs(wd.PerMetric[0].Inclusive-gd.PerMetric[0].Inclusive) > 0.01e6 {
			t.Errorf("%s inclusive: got %g want %g", name,
				gd.PerMetric[0].Inclusive, wd.PerMetric[0].Inclusive)
		}
		if wd.NumCalls != gd.NumCalls {
			t.Errorf("%s calls: got %g want %g", name, gd.NumCalls, wd.NumCalls)
		}
	}
}

func TestWriteErrors(t *testing.T) {
	p := model.New("x")
	if err := Write(filepath.Join(t.TempDir(), "f"), p); err == nil {
		t.Error("profile without thread accepted")
	}
	p.AddMetric("OTHER")
	p.Thread(0, 0, 0)
	if err := Write(filepath.Join(t.TempDir(), "f"), p); err == nil {
		t.Error("profile without TIME metric accepted")
	}
}
