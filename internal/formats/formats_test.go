package formats

import (
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"perfdmf/internal/formats/gprof"
	"perfdmf/internal/formats/xmlprof"
	"perfdmf/internal/model"
)

func writeFile(t *testing.T, dir, name, content string) string {
	t.Helper()
	path := filepath.Join(dir, name)
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestDetect(t *testing.T) {
	dir := t.TempDir()
	cases := map[string]string{
		MpiP:     "@ mpiP\n@ Command : x\n",
		Gprof:    "Flat profile:\n",
		Dynaprof: "Dynaprof profile: papiprobe\n",
		HPM:      "libHPM output summary\n",
		Psrun:    "<?xml version=\"1.0\"?>\n<hwpcreport version=\"1.0\">\n",
		XML:      "<?xml version=\"1.0\"?>\n<profile name=\"x\">\n",
		SPPM:     "# sPPM self-instrumented timing\n",
	}
	i := 0
	for want, content := range cases {
		path := writeFile(t, dir, "f"+string(rune('a'+i)), content)
		i++
		got, err := Detect(path)
		if err != nil || got != want {
			t.Errorf("Detect(%s content) = %q, %v; want %q", want, got, err, want)
		}
	}
	// TAU directory.
	tauDir := filepath.Join(dir, "taurun")
	os.MkdirAll(tauDir, 0o755)
	writeFile(t, tauDir, "profile.0.0.0", "1 templated_functions_MULTI_TIME\n# hdr\n\"f\" 1 0 1 1 0\n")
	if got, err := Detect(tauDir); err != nil || got != TAU {
		t.Errorf("Detect(tau dir) = %q, %v", got, err)
	}
	// Bare TAU file.
	if got, err := Detect(filepath.Join(tauDir, "profile.0.0.0")); err != nil || got != TAU {
		t.Errorf("Detect(tau file) = %q, %v", got, err)
	}
	// Unknown content.
	unk := writeFile(t, dir, "unknown.bin", "random stuff\n")
	if _, err := Detect(unk); err == nil {
		t.Error("unknown content detected as something")
	}
	// Missing path.
	if _, err := Detect(filepath.Join(dir, "nope")); err == nil {
		t.Error("missing path accepted")
	}
	// Non-TAU directory.
	empty := filepath.Join(dir, "emptydir")
	os.MkdirAll(empty, 0o755)
	if _, err := Detect(empty); err == nil {
		t.Error("empty dir detected as something")
	}
}

func TestLoadDispatch(t *testing.T) {
	dir := t.TempDir()
	// Build a small profile, write it as XML, load through the dispatcher.
	p := model.New("dispatch")
	m := p.AddMetric("TIME")
	e := p.AddIntervalEvent("f", "")
	d := p.Thread(0, 0, 0).IntervalData(e.ID, 1)
	d.NumCalls = 1
	d.PerMetric[m] = model.MetricData{Inclusive: 10, Exclusive: 10}
	xmlPath := filepath.Join(dir, "t.xml")
	if err := xmlprof.Write(xmlPath, p); err != nil {
		t.Fatal(err)
	}
	got, err := Load(XML, xmlPath)
	if err != nil || got.NumThreads() != 1 {
		t.Fatalf("Load(xml): %v %v", got, err)
	}
	if _, err := Load("nosuch", xmlPath); err == nil {
		t.Error("unknown format accepted")
	}
	// LoadAuto on a gprof file.
	gPath := filepath.Join(dir, "gmon.txt")
	if err := gprof.Write(gPath, got); err == nil {
		// got has TIME metric and thread 0,0,0, so Write succeeds; LoadAuto
		// must find its way back.
		auto, err := LoadAuto(gPath)
		if err != nil {
			t.Fatalf("LoadAuto(gprof): %v", err)
		}
		if auto.FindIntervalEvent("f") == nil {
			t.Error("LoadAuto lost event")
		}
	} else {
		t.Fatalf("gprof.Write: %v", err)
	}
	// LoadAuto on a bare TAU file resolves to the parent directory.
	tauDir := filepath.Join(dir, "taurun")
	os.MkdirAll(tauDir, 0o755)
	writeFile(t, tauDir, "profile.0.0.0", "1 templated_functions_MULTI_TIME\n# hdr\n\"g\" 2 0 5 5 0\n")
	auto, err := LoadAuto(filepath.Join(tauDir, "profile.0.0.0"))
	if err != nil {
		t.Fatalf("LoadAuto(tau file): %v", err)
	}
	if auto.FindIntervalEvent("g") == nil {
		t.Error("tau LoadAuto lost event")
	}
}

func TestAllFormatsListed(t *testing.T) {
	if len(All) != 8 {
		t.Fatalf("All = %v", All)
	}
	seen := map[string]bool{}
	for _, f := range All {
		if seen[f] {
			t.Fatalf("duplicate format %q", f)
		}
		seen[f] = true
	}
}

func TestScanDir(t *testing.T) {
	dir := t.TempDir()
	for _, name := range []string{"app.hpm0_n0", "app.hpm1_n1", "app.hpm10_n2", "other.txt", "app.log"} {
		writeFile(t, dir, name, "x")
	}
	os.MkdirAll(filepath.Join(dir, "app.hpm_dir"), 0o755)
	files, err := ScanDir(dir, "app.hpm", "")
	if err != nil {
		t.Fatal(err)
	}
	if len(files) != 3 {
		t.Fatalf("prefix scan: %v", files)
	}
	files, _ = ScanDir(dir, "", ".txt")
	if len(files) != 1 {
		t.Fatalf("suffix scan: %v", files)
	}
	files, _ = ScanDir(dir, "app", ".log")
	if len(files) != 1 {
		t.Fatalf("prefix+suffix scan: %v", files)
	}
	if _, err := ScanDir(filepath.Join(dir, "missing"), "", ""); err == nil {
		t.Error("missing dir accepted")
	}
}

func TestLoadMultiRank(t *testing.T) {
	dir := t.TempDir()
	doc := `<hwpcreport version="1.0" generator="psrun">
  <executable>a.out</executable>
  <hwpcevents><hwpcevent name="PAPI_TOT_CYC" type="preset">100</hwpcevent></hwpcevents>
  <wallclock units="seconds">1.5</wallclock>
</hwpcreport>`
	for r := 0; r < 3; r++ {
		writeFile(t, dir, fmt.Sprintf("run.%d.xml", r), doc)
	}
	paths, err := ScanDir(dir, "run.", ".xml")
	if err != nil || len(paths) != 3 {
		t.Fatalf("scan: %v %v", paths, err)
	}
	p, err := LoadMultiRank(Psrun, paths)
	if err != nil {
		t.Fatal(err)
	}
	if p.NumThreads() != 3 {
		t.Fatalf("threads: %d", p.NumThreads())
	}
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	// Unsupported formats and empty input rejected.
	if _, err := LoadMultiRank(Gprof, paths); err == nil {
		t.Error("gprof multi-rank accepted")
	}
	if _, err := LoadMultiRank(Psrun, nil); err == nil {
		t.Error("empty input accepted")
	}
	if _, err := LoadMultiRank(Psrun, []string{filepath.Join(dir, "nope.xml")}); err == nil {
		t.Error("missing file accepted")
	}
}
