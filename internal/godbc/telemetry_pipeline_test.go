package godbc

import (
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"perfdmf/internal/obs"
)

// testSpan builds a minimal persistable span for pipeline tests.
func testSpan(id int64, age time.Duration) *obs.Span {
	return &obs.Span{
		ID: id, Root: "load:test", Kind: "exec",
		Statement: "INSERT INTO w (n) VALUES (?)",
		Start:     time.Now().Add(-age), Total: 50 * time.Microsecond,
	}
}

// telemetryRowCount counts rows in one telemetry table through a fresh
// connection.
func telemetryRowCount(t *testing.T, dsn, table string) int64 {
	t.Helper()
	c := openT(t, dsn)
	rows, err := c.Query("SELECT COUNT(*) FROM " + table)
	if err != nil {
		t.Fatal(err)
	}
	defer rows.Close()
	if !rows.Next() {
		t.Fatalf("no row counting %s", table)
	}
	n, _ := rows.Value(0).(int64)
	return n
}

// TestTelemetryGroupCommitConcurrent is the writer's -race stress guard:
// several producers Store batches while another goroutine hammers the
// Flush barrier. The acknowledged-batch contract must hold exactly — every
// entry whose Store returned nil is committed — and the accepted-but-
// uncommitted backlog must stay bounded by the queue geometry, not grow
// with the workload.
func TestTelemetryGroupCommitConcurrent(t *testing.T) {
	dsn := freshMem(t)
	const (
		producers = 4
		batches   = 30
		batchLen  = 7
		groupSize = 32
		queueCap  = 8
	)
	st, err := OpenTelemetryStore(dsn, TelemetryOptions{
		BudgetPct:    -1, // the writer is under test, not the sampler
		GroupSize:    groupSize,
		MaxBatchAge:  2 * time.Millisecond,
		QueueBatches: queueCap,
		RetainRows:   -1, // retention off: every acknowledged span must survive
	})
	if err != nil {
		t.Fatal(err)
	}

	var acked, rejected atomic.Int64
	var ids atomic.Int64
	var maxQueued atomic.Int64
	sample := func() {
		q := int64(st.QueuedEntries())
		for {
			cur := maxQueued.Load()
			if q <= cur || maxQueued.CompareAndSwap(cur, q) {
				return
			}
		}
	}

	var wg sync.WaitGroup
	for p := 0; p < producers; p++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for b := 0; b < batches; b++ {
				batch := make([]obs.SinkEntry, batchLen)
				for i := range batch {
					batch[i] = obs.SinkEntry{Span: testSpan(ids.Add(1), 0), Slow: i == 0}
				}
				if err := st.Store(batch); err != nil {
					rejected.Add(batchLen) // queue full: shed, never blocked
				} else {
					acked.Add(batchLen)
				}
				sample()
			}
		}()
	}
	flushStop := make(chan struct{})
	var flushWG sync.WaitGroup
	flushWG.Add(1)
	go func() {
		defer flushWG.Done()
		for {
			select {
			case <-flushStop:
				return
			default:
				if err := st.Flush(); err != nil {
					t.Error(err)
					return
				}
				sample()
			}
		}
	}()
	wg.Wait()
	close(flushStop)
	flushWG.Wait()

	if err := st.Flush(); err != nil {
		t.Fatal(err)
	}
	if q := st.QueuedEntries(); q != 0 {
		t.Fatalf("queued entries after final flush = %d, want 0", q)
	}
	spans := telemetryRowCount(t, dsn, SpansTable)
	if spans != acked.Load() {
		t.Fatalf("lost acknowledged entries: %d spans persisted, %d acknowledged (%d rejected)",
			spans, acked.Load(), rejected.Load())
	}
	slow := telemetryRowCount(t, dsn, SlowLogTable)
	if want := acked.Load() / batchLen; slow != want {
		t.Fatalf("slowlog rows = %d, want %d (one per acknowledged batch)", slow, want)
	}
	// Bounded backlog: channel capacity + the writer's in-flight group and
	// partial batch. Far below the workload total, which is the point.
	bound := int64(queueCap*batchLen + 2*groupSize + batchLen)
	if m := maxQueued.Load(); m > bound {
		t.Fatalf("queued backlog reached %d entries, bound %d", m, bound)
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	// Store after Close is a clean, counted error — not a panic or a hang.
	if err := st.Store([]obs.SinkEntry{{Span: testSpan(ids.Add(1), 0)}}); err == nil {
		t.Fatal("Store on a closed store succeeded")
	}
}

// TestTelemetryRetention: the writer's shutdown sweep enforces both caps —
// newest RetainRows rows survive the row cap, and rows older than
// RetainAge are pruned regardless — in both telemetry tables, with the
// losses counted.
func TestTelemetryRetention(t *testing.T) {
	dsn := freshMem(t)
	prunedSpansBefore := mTelPrunedSpans.Value()
	prunedSlowBefore := mTelPrunedSlow.Value()
	st, err := OpenTelemetryStore(dsn, TelemetryOptions{
		BudgetPct:  -1,
		RetainRows: 10,
		RetainAge:  30 * time.Minute,
		PruneEvery: time.Hour, // only the Close sweep runs in this test
	})
	if err != nil {
		t.Fatal(err)
	}
	// 40 fresh spans (every 4th slow) + 10 ancient ones. The age rule
	// removes the ancient 10; the row cap then trims the fresh 40 to the
	// newest 10.
	var batch []obs.SinkEntry
	for i := 0; i < 40; i++ {
		batch = append(batch, obs.SinkEntry{Span: testSpan(int64(i+1), 0), Slow: i%4 == 0})
	}
	for i := 0; i < 10; i++ {
		batch = append(batch, obs.SinkEntry{Span: testSpan(int64(i+100), 2*time.Hour), Slow: true})
	}
	if err := st.Store(batch); err != nil {
		t.Fatal(err)
	}
	if err := st.Flush(); err != nil {
		t.Fatal(err)
	}
	if n := telemetryRowCount(t, dsn, SpansTable); n != 50 {
		t.Fatalf("pre-prune span rows = %d, want 50", n)
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	if n := telemetryRowCount(t, dsn, SpansTable); n != 10 {
		t.Fatalf("span rows after retention = %d, want 10", n)
	}
	// Slow rows: 10 of the fresh 40 + all 10 ancient = 20 before pruning.
	// Age prunes the ancient 10; the row cap (10) already holds after that.
	if n := telemetryRowCount(t, dsn, SlowLogTable); n != 10 {
		t.Fatalf("slowlog rows after retention = %d, want 10", n)
	}
	if d := mTelPrunedSpans.Value() - prunedSpansBefore; d != 40 {
		t.Fatalf("obs_telemetry_pruned_spans_total moved by %d, want 40", d)
	}
	if d := mTelPrunedSlow.Value() - prunedSlowBefore; d != 10 {
		t.Fatalf("obs_telemetry_pruned_slowlog_total moved by %d, want 10", d)
	}
	// The survivors are the newest fresh rows: ids 31..40.
	c := openT(t, dsn)
	rows, err := c.Query("SELECT MIN(span_id), MAX(span_id) FROM " + SpansTable)
	if err != nil {
		t.Fatal(err)
	}
	defer rows.Close()
	if !rows.Next() {
		t.Fatal("no aggregate row")
	}
	lo, _ := rows.Value(0).(int64)
	hi, _ := rows.Value(1).(int64)
	if lo != 31 || hi != 40 {
		t.Fatalf("surviving span ids [%d, %d], want [31, 40]", lo, hi)
	}
}

// TestTelemetryStoreNeverBlocks pins Store's non-blocking contract in
// isolation: with the writer wedged (none running at all), the queue
// absorbs its capacity, then sheds with a counted error — synchronously,
// with no goroutine to rescue a blocked send.
func TestTelemetryStoreNeverBlocks(t *testing.T) {
	ts := &TelemetryStore{
		queue:    make(chan []obs.SinkEntry, 2),
		flushReq: make(chan chan error),
		stopCh:   make(chan struct{}),
		done:     make(chan struct{}),
		opts:     TelemetryOptions{}.withDefaults(),
	}
	batch := []obs.SinkEntry{{Span: testSpan(1, 0)}, {Span: testSpan(2, 0)}}
	dropsBefore := mTelQueueDrops.Value()
	for i := 0; i < 2; i++ {
		if err := ts.Store(batch); err != nil {
			t.Fatalf("Store %d with queue space: %v", i, err)
		}
	}
	if q := ts.QueuedEntries(); q != 4 {
		t.Fatalf("queued = %d, want 4", q)
	}
	err := ts.Store(batch) // queue full; must return, not block
	if err == nil || !strings.Contains(err.Error(), "queue full") {
		t.Fatalf("full-queue Store error = %v", err)
	}
	if d := mTelQueueDrops.Value() - dropsBefore; d != 2 {
		t.Fatalf("obs_telemetry_writer_queue_drops_total moved by %d, want 2 (one per shed entry)", d)
	}
	if q := ts.QueuedEntries(); q != 4 {
		t.Fatalf("queued after shed = %d, want 4 (shed batch not counted)", q)
	}
	if err := ts.Store(nil); err != nil {
		t.Fatalf("empty batch: %v", err)
	}
}

// TestTelemetryBudgetResolution covers the budget precedence — explicit
// option over DSN option over default — and the DSN option's validation on
// ordinary connections.
func TestTelemetryBudgetResolution(t *testing.T) {
	cases := []struct {
		dsn      string
		explicit float64
		want     float64
	}{
		{"mem:b", 2, 2},                       // explicit wins
		{"mem:b?telemetrybudget=3.5", 2, 2},   // explicit beats DSN
		{"mem:b?telemetrybudget=3.5", 0, 3.5}, // DSN option
		{"mem:b", 0, DefaultTelemetryBudgetPct},
		{"mem:b?telemetrybudget=3.5", -1, 0}, // negative disables
		{"mem:b?telemetrybudget=0", 0, 0},    // explicit zero in the DSN disables
	}
	for _, tc := range cases {
		got, err := resolveTelemetryBudget(tc.dsn, tc.explicit)
		if err != nil {
			t.Errorf("resolveTelemetryBudget(%q, %v): %v", tc.dsn, tc.explicit, err)
			continue
		}
		if got != tc.want {
			t.Errorf("resolveTelemetryBudget(%q, %v) = %v, want %v", tc.dsn, tc.explicit, got, tc.want)
		}
	}
	if _, err := resolveTelemetryBudget("mem:b?telemetrybudget=fast", 0); err == nil {
		t.Error("bad telemetrybudget value resolved without error")
	}

	// The option is a first-class DSN key: ordinary connections accept it
	// (and validate it) even though only the telemetry store reads it.
	c, err := Open("mem:budgetopt?telemetrybudget=5")
	if err != nil {
		t.Fatalf("Open with telemetrybudget: %v", err)
	}
	c.Close()
	if _, err := Open("mem:budgetopt?telemetrybudget=fast"); err == nil ||
		!strings.Contains(err.Error(), "not a non-negative number") {
		t.Fatalf("Open with bad telemetrybudget = %v, want validation error", err)
	}
	if _, err := Open("mem:budgetopt?telemetrybudget=-1"); err == nil {
		t.Fatal("Open accepted a negative telemetrybudget")
	}

	// End to end: the DSN budget reaches the governor; a negative explicit
	// budget disables it.
	st, err := OpenTelemetryStore("mem:budgetopt?telemetrybudget=2.5", TelemetryOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if g := st.Governor(); g == nil || g.BudgetPct() != 2.5 {
		t.Fatalf("governor budget = %v, want 2.5", g.BudgetPct())
	}
	st.Close()
	st2, err := OpenTelemetryStore("mem:budgetopt?telemetrybudget=2.5", TelemetryOptions{BudgetPct: -1})
	if err != nil {
		t.Fatal(err)
	}
	if st2.Governor() != nil {
		t.Fatal("governor present despite disabled budget")
	}
	st2.Close()
}

// TestCatalogTelemetry: the OBS_TELEMETRY row tracks the live pipeline —
// active with governor state while StartTelemetry runs, active=false (with
// final counters intact) after stop.
func TestCatalogTelemetry(t *testing.T) {
	dsn := freshMem(t)
	stop, err := StartTelemetry(dsn, TelemetryOptions{Sink: obs.SinkOptions{FlushEvery: time.Hour}})
	if err != nil {
		t.Fatal(err)
	}
	stopped := false
	defer func() {
		if !stopped {
			stop() //nolint:errcheck // best-effort cleanup on failure paths
		}
	}()

	c := openT(t, dsn)
	mustExec(t, c, "CREATE TABLE w (n BIGINT)")
	mustExec(t, c, "INSERT INTO w (n) VALUES (?)", int64(1))

	_, out := collect(t, c, "SELECT active, sample_rate, budget_pct, queue_capacity, retain_rows FROM OBS_TELEMETRY")
	if len(out) != 1 {
		t.Fatalf("OBS_TELEMETRY rows = %v, want exactly 1", out)
	}
	if out[0][0] != "true" {
		t.Fatalf("active = %q while pipeline runs, want true", out[0][0])
	}
	if out[0][1] != "1" {
		t.Fatalf("sample_rate = %q before any shedding, want 1", out[0][1])
	}
	if out[0][2] != "5" {
		t.Fatalf("budget_pct = %q, want default 5", out[0][2])
	}

	stopped = true
	if err := stop(); err != nil {
		t.Fatal(err)
	}
	_, out = collect(t, c, "SELECT active, stored FROM OBS_TELEMETRY")
	if len(out) != 1 || out[0][0] != "false" {
		t.Fatalf("OBS_TELEMETRY after stop = %v, want active=false", out)
	}
}
