// The continuous-observability layer of the telemetry pipeline: on a fixed
// cadence the writer goroutine scrapes the metric registry into
// obs.DefaultHistory, mirrors the sample into PERFDMF_METRICS_HISTORY,
// reloads alert rules from PERFDMF_ALERT_RULES, evaluates them against the
// history ring, and persists episode transitions into PERFDMF_ALERTS. All
// of it rides the writer's quiet relaxed connection: history writes use
// the same non-blocking TryBegin discipline as span group commits (a
// stalled sample is shed from the table, never from the ring), and every
// write's cost feeds the sampling governor like any other telemetry.
package godbc

import (
	"fmt"
	"strings"
	"time"

	"perfdmf/internal/obs"
	"perfdmf/internal/sqlexec"
)

// Continuous-observability table names.
const (
	MetricsHistoryTable = "PERFDMF_METRICS_HISTORY"
	AlertRulesTable     = "PERFDMF_ALERT_RULES"
	AlertsTable         = sqlexec.AlertsBackingTable // "PERFDMF_ALERTS"
)

// alertRulesReload bounds how often the scrape loop re-reads the rules
// table, so sub-second scrape cadences do not turn rule loading into the
// dominant write-path query.
const alertRulesReload = time.Second

// observabilityDDL is idempotent; EnsureObservabilitySchema runs it.
var observabilityDDL = []string{
	`CREATE TABLE IF NOT EXISTS PERFDMF_METRICS_HISTORY (
		at TIMESTAMP,
		elapsed_us BIGINT,
		name VARCHAR NOT NULL,
		kind VARCHAR,
		value DOUBLE,
		delta_count BIGINT,
		delta_sum BIGINT,
		p50 BIGINT,
		p95 BIGINT,
		p99 BIGINT)`,

	`CREATE TABLE IF NOT EXISTS PERFDMF_ALERT_RULES (
		rule_id BIGINT PRIMARY KEY AUTO_INCREMENT,
		name VARCHAR NOT NULL,
		metric VARCHAR NOT NULL,
		kind VARCHAR NOT NULL,
		agg VARCHAR,
		op VARCHAR,
		threshold DOUBLE,
		zscore DOUBLE,
		window_ms BIGINT,
		for_ms BIGINT,
		severity VARCHAR,
		enabled BOOLEAN,
		created_at TIMESTAMP)`,

	`CREATE TABLE IF NOT EXISTS PERFDMF_ALERTS (
		alert_id BIGINT PRIMARY KEY AUTO_INCREMENT,
		rule_id BIGINT,
		rule_name VARCHAR,
		metric VARCHAR,
		severity VARCHAR,
		state VARCHAR NOT NULL,
		value DOUBLE,
		threshold DOUBLE,
		detail VARCHAR,
		pending_at TIMESTAMP,
		firing_at TIMESTAMP,
		resolved_at TIMESTAMP)`,
}

// History/alert writer metrics. They live in the obs_history / obs_alerts
// families next to the evaluation-side counters obs owns.
var (
	mHistPersistedPoints = obs.Default.Counter("obs_history_persisted_points_total")
	mHistPersistStalls   = obs.Default.Counter("obs_history_persist_stalls_total")
	mHistPrunedRows      = obs.Default.Counter("obs_history_pruned_rows_total")
	mAlertsPrunedRows    = obs.Default.Counter("obs_alerts_pruned_rows_total")
)

// EnsureObservabilitySchema creates the metric-history and alerting tables
// if they do not exist. The telemetry store runs it when history is
// enabled; the alerts CLI runs it before inserting rules.
func EnsureObservabilitySchema(c Conn) error {
	for _, ddl := range observabilityDDL {
		if _, err := c.Exec(ddl); err != nil {
			return fmt.Errorf("godbc: observability schema: %w", err)
		}
	}
	return nil
}

// connHasTable reports whether the connection's database has the table.
func connHasTable(c Conn, name string) bool {
	tables, err := c.MetaData().Tables()
	if err != nil {
		return false
	}
	for _, t := range tables {
		if strings.EqualFold(t, name) {
			return true
		}
	}
	return false
}

// AddAlertRule persists one alert rule (creating the schema on first use)
// and returns its rule id.
func AddAlertRule(c Conn, r obs.AlertRule) (int64, error) {
	if err := EnsureObservabilitySchema(c); err != nil {
		return 0, err
	}
	if r.Name == "" || r.Metric == "" {
		return 0, fmt.Errorf("godbc: alert rule needs a name and a metric")
	}
	if r.Kind == "" {
		r.Kind = obs.AlertKindThreshold
	}
	if r.Window <= 0 {
		r.Window = obs.DefaultAlertWindow
	}
	if r.Severity == "" {
		r.Severity = "warn"
	}
	res, err := c.Exec(`INSERT INTO PERFDMF_ALERT_RULES
		(name, metric, kind, agg, op, threshold, zscore, window_ms, for_ms, severity, enabled, created_at)
		VALUES (?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?)`,
		r.Name, r.Metric, r.Kind, r.Agg, r.Op, r.Threshold, r.ZScore,
		r.Window.Milliseconds(), r.For.Milliseconds(), r.Severity, true, time.Now())
	if err != nil {
		return 0, fmt.Errorf("godbc: add alert rule: %w", err)
	}
	return res.LastInsertID, nil
}

// LoadAlertRules reads the enabled alert rules, sorted by rule id. A
// database without the rules table has no rules.
func LoadAlertRules(c Conn) ([]obs.AlertRule, error) {
	if !connHasTable(c, AlertRulesTable) {
		return nil, nil
	}
	rows, err := c.Query(`SELECT rule_id, name, metric, kind, agg, op, threshold, zscore,
		window_ms, for_ms, severity FROM PERFDMF_ALERT_RULES WHERE enabled = TRUE ORDER BY rule_id`)
	if err != nil {
		return nil, fmt.Errorf("godbc: load alert rules: %w", err)
	}
	defer rows.Close()
	var out []obs.AlertRule
	for rows.Next() {
		var r obs.AlertRule
		var windowMS, forMS int64
		if err := rows.Scan(&r.ID, &r.Name, &r.Metric, &r.Kind, &r.Agg, &r.Op,
			&r.Threshold, &r.ZScore, &windowMS, &forMS, &r.Severity); err != nil {
			return nil, err
		}
		r.Window = time.Duration(windowMS) * time.Millisecond
		r.For = time.Duration(forMS) * time.Millisecond
		out = append(out, r)
	}
	return out, rows.Err()
}

// openObservability readies the continuous layer on the store's
// connection: schema, the history insert statement, the alert set with its
// rules, and the open episodes a previous process left behind (so this
// process can resolve them).
func (ts *TelemetryStore) openObservability() error {
	if err := EnsureObservabilitySchema(ts.conn); err != nil {
		return err
	}
	insHist, err := ts.conn.Prepare(`INSERT INTO PERFDMF_METRICS_HISTORY
		(at, elapsed_us, name, kind, value, delta_count, delta_sum, p50, p95, p99)
		VALUES (?, ?, ?, ?, ?, ?, ?, ?, ?, ?)`)
	if err != nil {
		return fmt.Errorf("godbc: history prepare: %w", err)
	}
	ts.insHist = insHist
	ts.alerts = obs.NewAlertSet()
	ts.episodeByRule = make(map[int64]int64)
	rules, err := LoadAlertRules(ts.conn)
	if err != nil {
		return err
	}
	ts.alerts.SetRules(rules, time.Now())
	ts.lastRuleLoad = time.Now()
	return ts.restoreOpenEpisodes()
}

// restoreOpenEpisodes resumes pending/firing episodes from PERFDMF_ALERTS:
// their state machines pick up where the previous process stopped, and a
// later evaluation that finds the predicate no longer holding resolves the
// persisted row instead of leaving it firing forever.
func (ts *TelemetryStore) restoreOpenEpisodes() error {
	rows, err := ts.conn.Query(`SELECT alert_id, rule_id, state, value, pending_at, firing_at
		FROM PERFDMF_ALERTS WHERE state <> 'resolved'`)
	if err != nil {
		return fmt.Errorf("godbc: restore alert episodes: %w", err)
	}
	defer rows.Close()
	for rows.Next() {
		var alertID, ruleID int64
		var state string
		var value float64
		var pendingAt, firingAt time.Time
		if err := rows.Scan(&alertID, &ruleID, &state, &value, &pendingAt, &firingAt); err != nil {
			return err
		}
		since := pendingAt
		if state == obs.AlertStateFiring && !firingAt.IsZero() {
			since = firingAt
		}
		ts.alerts.Restore(ruleID, state, since, value, alertID)
		ts.episodeByRule[ruleID] = alertID
	}
	return rows.Err()
}

// historyEnabled reports whether the continuous layer is on for this store.
func (ts *TelemetryStore) historyEnabled() bool { return ts.insHist != nil }

// scrapeTick is one cadence step on the writer goroutine: reload rules (at
// most once per alertRulesReload), scrape the registry into the ring,
// mirror the sample into the history table, evaluate the rules, and
// persist any episode transitions.
func (ts *TelemetryStore) scrapeTick(now time.Time) {
	if !ts.historyEnabled() {
		return
	}
	if now.Sub(ts.lastRuleLoad) >= alertRulesReload {
		if rules, err := LoadAlertRules(ts.conn); err == nil {
			ts.pendingTrans = append(ts.pendingTrans, ts.alerts.SetRules(rules, now)...)
		} else {
			mTelWriterErrors.Inc()
		}
		ts.lastRuleLoad = now
	}
	sample := obs.DefaultHistory.Sample(obs.Default)
	ts.persistSample(sample)
	ts.pendingTrans = append(ts.pendingTrans, ts.alerts.Eval(obs.DefaultHistory, now)...)
	ts.persistTransitions()
	ts.lastScrapeNS.Store(now.UnixNano())
}

// persistSample mirrors one scrape into PERFDMF_METRICS_HISTORY. Like span
// group commits it never waits for the engine's write lock: a stall sheds
// the sample from the table (the in-memory ring still has it) and reports
// to the governor.
func (ts *TelemetryStore) persistSample(s obs.HistorySample) {
	if len(s.Points) == 0 {
		return
	}
	start := time.Now()
	ok, err := TryBeginConn(ts.conn)
	if err == nil && !ok {
		mHistPersistStalls.Inc()
		ts.gov.ReportStall()
		return
	}
	if err != nil {
		mTelWriterErrors.Inc()
		return
	}
	for _, p := range s.Points {
		var deltaCount, deltaSum, p50, p95, p99 any
		if p.Kind == "histogram" {
			deltaCount, deltaSum = p.DeltaCount, p.DeltaSum
			p50, p95, p99 = p.P50, p.P95, p.P99
		}
		if _, err := ts.insHist.Exec(s.At, s.Elapsed.Microseconds(), p.Name, p.Kind,
			p.Value, deltaCount, deltaSum, p50, p95, p99); err != nil {
			ts.conn.Rollback() //nolint:errcheck
			mTelWriterErrors.Inc()
			ts.gov.ReportWrite(time.Since(start))
			return
		}
	}
	if err := ts.conn.Commit(); err != nil {
		mTelWriterErrors.Inc()
	} else {
		mHistPersistedPoints.Add(int64(len(s.Points)))
	}
	ts.gov.ReportWrite(time.Since(start))
}

// persistTransitions applies the queued episode transitions in one
// transaction. A stalled write lock leaves them queued for the next tick —
// transitions carry their own timestamps, so deferred persistence does not
// distort the episode timeline.
func (ts *TelemetryStore) persistTransitions() {
	if len(ts.pendingTrans) == 0 {
		return
	}
	start := time.Now()
	ok, err := TryBeginConn(ts.conn)
	if err == nil && !ok {
		ts.gov.ReportStall()
		return
	}
	if err != nil {
		mTelWriterErrors.Inc()
		ts.pendingTrans = nil
		return
	}
	for i := range ts.pendingTrans {
		if err := ts.applyTransitionTx(&ts.pendingTrans[i]); err != nil {
			ts.conn.Rollback() //nolint:errcheck
			mTelWriterErrors.Inc()
			ts.pendingTrans = nil
			ts.gov.ReportWrite(time.Since(start))
			return
		}
	}
	if err := ts.conn.Commit(); err != nil {
		mTelWriterErrors.Inc()
	}
	ts.pendingTrans = ts.pendingTrans[:0]
	ts.gov.ReportWrite(time.Since(start))
}

// applyTransitionTx persists one transition inside the open transaction:
// a new pending episode inserts a row; firing and resolved update it in
// place, so one row tells the episode's whole pending→firing→resolved
// story through its three timestamps.
func (ts *TelemetryStore) applyTransitionTx(t *obs.AlertTransition) error {
	episode := t.EpisodeID
	if episode == 0 {
		episode = ts.episodeByRule[t.RuleID]
	}
	switch t.To {
	case obs.AlertStatePending:
		res, err := ts.conn.Exec(`INSERT INTO PERFDMF_ALERTS
			(rule_id, rule_name, metric, severity, state, value, threshold, detail, pending_at)
			VALUES (?, ?, ?, ?, ?, ?, ?, ?, ?)`,
			t.RuleID, t.RuleName, t.Metric, t.Severity, obs.AlertStatePending,
			t.Value, t.Threshold, t.Detail, t.At)
		if err != nil {
			return err
		}
		ts.episodeByRule[t.RuleID] = res.LastInsertID
		ts.alerts.SetEpisodeID(t.RuleID, res.LastInsertID)
	case obs.AlertStateFiring:
		if episode == 0 {
			// Resumed or shed episode with no durable row: open one now.
			res, err := ts.conn.Exec(`INSERT INTO PERFDMF_ALERTS
				(rule_id, rule_name, metric, severity, state, value, threshold, detail, pending_at, firing_at)
				VALUES (?, ?, ?, ?, ?, ?, ?, ?, ?, ?)`,
				t.RuleID, t.RuleName, t.Metric, t.Severity, obs.AlertStateFiring,
				t.Value, t.Threshold, t.Detail, t.At, t.At)
			if err != nil {
				return err
			}
			ts.episodeByRule[t.RuleID] = res.LastInsertID
			ts.alerts.SetEpisodeID(t.RuleID, res.LastInsertID)
			return nil
		}
		if _, err := ts.conn.Exec(`UPDATE PERFDMF_ALERTS
			SET state = ?, value = ?, detail = ?, firing_at = ? WHERE alert_id = ?`,
			obs.AlertStateFiring, t.Value, t.Detail, t.At, episode); err != nil {
			return err
		}
	case obs.AlertStateResolved:
		delete(ts.episodeByRule, t.RuleID)
		if episode == 0 {
			return nil // the episode never reached the table; nothing to close
		}
		if _, err := ts.conn.Exec(`UPDATE PERFDMF_ALERTS
			SET state = ?, value = ?, detail = ?, resolved_at = ? WHERE alert_id = ?`,
			obs.AlertStateResolved, t.Value, t.Detail, t.At, episode); err != nil {
			return err
		}
	}
	return nil
}

// pruneObservability enforces retention on the continuous tables: history
// rows age out and are capped like span rows; alert episodes are pruned
// only once resolved (open episodes are live state, not history).
func (ts *TelemetryStore) pruneObservability() {
	if !ts.historyEnabled() {
		return
	}
	if ts.opts.RetainAge > 0 {
		cutoff := time.Now().Add(-ts.opts.RetainAge)
		if res, err := ts.conn.Exec(
			"DELETE FROM PERFDMF_METRICS_HISTORY WHERE at < ?", cutoff); err != nil {
			mTelWriterErrors.Inc()
		} else {
			mHistPrunedRows.Add(res.RowsAffected)
		}
		if res, err := ts.conn.Exec(
			"DELETE FROM PERFDMF_ALERTS WHERE state = 'resolved' AND resolved_at < ?", cutoff); err != nil {
			mTelWriterErrors.Inc()
		} else {
			mAlertsPrunedRows.Add(res.RowsAffected)
		}
	}
	if ts.opts.RetainRows > 0 {
		ts.pruneHistoryRows()
	}
}

// pruneHistoryRows caps PERFDMF_METRICS_HISTORY at RetainRows rows by
// deleting everything older than the RetainRows-th newest timestamp.
// Several rows share one scrape timestamp, so the cap is approximate by up
// to one sample's width — retention is a bound, not an invariant.
func (ts *TelemetryStore) pruneHistoryRows() {
	rows, err := ts.conn.Query(
		"SELECT at FROM PERFDMF_METRICS_HISTORY ORDER BY at DESC LIMIT 1 OFFSET ?",
		ts.opts.RetainRows-1)
	if err != nil {
		mTelWriterErrors.Inc()
		return
	}
	defer rows.Close()
	if !rows.Next() {
		return // within the cap
	}
	keepFrom, ok := rows.Value(0).(time.Time)
	rows.Close()
	if !ok {
		return
	}
	res, err := ts.conn.Exec("DELETE FROM PERFDMF_METRICS_HISTORY WHERE at < ?", keepFrom)
	if err != nil {
		mTelWriterErrors.Inc()
		return
	}
	mHistPrunedRows.Add(res.RowsAffected)
}

// LastScrape returns when the scrape loop last ran, zero before the first
// scrape (or with history disabled).
func (ts *TelemetryStore) LastScrape() time.Time {
	ns := ts.lastScrapeNS.Load()
	if ns == 0 {
		return time.Time{}
	}
	return time.Unix(0, ns)
}

// AlertsSnapshot reports every rule's live evaluation state, nil when the
// continuous layer is off.
func (ts *TelemetryStore) AlertsSnapshot() []obs.AlertStatus {
	if ts.alerts == nil {
		return nil
	}
	return ts.alerts.Snapshot()
}

// AlertsState snapshots the most recent pipeline's alert evaluation, for
// the /alerts endpoint. ok is false when no pipeline with history enabled
// has run in this process.
func AlertsState() ([]obs.AlertStatus, bool) {
	p := activeTelemetry.Load()
	if p == nil || p.store.alerts == nil {
		return nil, false
	}
	return p.store.AlertsSnapshot(), true
}
