package godbc

import (
	"strings"
	"testing"
	"time"

	"perfdmf/internal/obs"
)

// TestTelemetrySelfHosted is the tentpole regression test: spans produced
// by ordinary statements land in PERFDMF_SPANS / PERFDMF_SLOWLOG and are
// queryable with SQL on the same database — and the sink's own INSERTs
// provably do not trace themselves back into the sink.
func TestTelemetrySelfHosted(t *testing.T) {
	obs.SetSlowQueryThreshold(time.Nanosecond) // everything is "slow"
	defer obs.SetSlowQueryThreshold(0)

	dsn := "mem:selfhosted"
	st, err := OpenTelemetryStore(dsn, TelemetryOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	sink := obs.NewTelemetrySink(st.Store, obs.SinkOptions{FlushEvery: time.Hour})
	obs.InstallSink(sink)
	defer obs.UninstallSink()

	// The telemetry tables are ordinary tables: discoverable via MetaData.
	c, err := Open(dsn + "?trace=1")
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	tables, err := c.MetaData().Tables()
	if err != nil {
		t.Fatal(err)
	}
	joined := strings.Join(tables, ",")
	if !strings.Contains(joined, SpansTable) || !strings.Contains(joined, SlowLogTable) {
		t.Fatalf("telemetry tables not in metadata: %v", tables)
	}

	mustExec(t, c, "CREATE TABLE workload (id BIGINT PRIMARY KEY, v BIGINT)")
	for i := 0; i < 5; i++ {
		mustExec(t, c, "INSERT INTO workload (id, v) VALUES (?, ?)", i, i*i)
	}
	rows, err := c.Query("SELECT COUNT(*) FROM workload")
	if err != nil {
		t.Fatal(err)
	}
	rows.Close()

	if sink.Buffered() == 0 {
		t.Fatal("sink buffered nothing despite active statements")
	}
	if err := sink.Flush(); err != nil {
		t.Fatal(err)
	}
	// Store is asynchronous now: the sink flush only enqueued the batch.
	// Flush the store too so the writer's group commit is visible below.
	if err := st.Flush(); err != nil {
		t.Fatal(err)
	}

	// The framework's own performance data, via the framework's own SQL.
	count := func(query string, args ...any) int64 {
		t.Helper()
		r, err := c.Query(query, args...)
		if err != nil {
			t.Fatal(err)
		}
		defer r.Close()
		if !r.Next() {
			t.Fatalf("no row from %s", query)
		}
		var n int64
		if err := r.Scan(&n); err != nil {
			t.Fatal(err)
		}
		return n
	}
	if n := count("SELECT COUNT(*) FROM PERFDMF_SPANS WHERE op = ?", "INSERT"); n < 5 {
		t.Fatalf("spans table has %d INSERT spans, want >= 5", n)
	}
	if n := count("SELECT COUNT(*) FROM PERFDMF_SPANS WHERE kind = ?", "query"); n < 1 {
		t.Fatalf("spans table has %d query spans", n)
	}
	// The ISSUE's canonical telemetry query shape: per-op aggregation.
	r, err := c.Query("SELECT op, COUNT(*), SUM(dur_us) FROM PERFDMF_SPANS GROUP BY op")
	if err != nil {
		t.Fatal(err)
	}
	ops := map[string]int64{}
	for r.Next() {
		var op string
		var n, dur int64
		if err := r.Scan(&op, &n, &dur); err != nil {
			t.Fatal(err)
		}
		ops[op] = n
	}
	r.Close()
	if ops["INSERT"] < 5 || ops["SELECT"] < 1 || ops["CREATE"] < 1 {
		t.Fatalf("GROUP BY op = %v", ops)
	}

	// Slow entries (threshold 1ns catches everything) mirror into the slow
	// log table and join back to the spans table by span_id.
	if n := count("SELECT COUNT(*) FROM PERFDMF_SLOWLOG"); n < 5 {
		t.Fatalf("slowlog table has %d rows", n)
	}
	if n := count(`SELECT COUNT(*) FROM PERFDMF_SLOWLOG s
		JOIN PERFDMF_SPANS p ON s.span_id = p.span_id`); n < 5 {
		t.Fatalf("slowlog/spans join produced %d rows", n)
	}

	// Re-entrancy: the sink's own INSERTs ran on a quiet connection, so no
	// stored span may mention the telemetry tables...
	spans, err := c.Query("SELECT statement FROM PERFDMF_SPANS")
	if err != nil {
		t.Fatal(err)
	}
	for spans.Next() {
		var stmt string
		if err := spans.Scan(&stmt); err != nil {
			t.Fatal(err)
		}
		up := strings.ToUpper(stmt)
		if strings.Contains(up, SpansTable) || strings.Contains(up, SlowLogTable) {
			// The COUNT queries this test itself ran over the telemetry
			// tables on the traced connection are expected; the sink's
			// INSERTs are not.
			if strings.HasPrefix(strings.TrimSpace(up), "INSERT") {
				t.Fatalf("sink traced its own INSERT: %q", stmt)
			}
		}
	}
	spans.Close()

	// ...and flushing leaves nothing new behind beyond the verification
	// queries above (all SELECTs on the traced conn). Drain and re-check:
	// after a flush with only quiet-connection activity, the buffer is empty.
	if err := sink.Flush(); err != nil {
		t.Fatal(err)
	}
	if err := sink.Flush(); err != nil {
		t.Fatal(err)
	}
	if n := sink.Buffered(); n != 0 {
		t.Fatalf("sink re-buffered %d entries after its own flush", n)
	}
}

// TestTelemetryDisabledIsFree: with no sink installed and no tracing, the
// statement path produces no spans at all.
func TestTelemetryDisabledIsFree(t *testing.T) {
	c, err := Open("mem:notelemetry")
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	cc := c.(*conn)
	if sp := cc.startSpan("exec", "CREATE TABLE x (id BIGINT)", 0); sp != nil {
		t.Fatal("span created with all consumers off")
	}
	s := obs.NewTelemetrySink(func([]obs.SinkEntry) error { return nil }, obs.SinkOptions{})
	obs.InstallSink(s)
	defer obs.UninstallSink()
	if sp := cc.startSpan("exec", "CREATE TABLE x (id BIGINT)", 0); sp == nil {
		t.Fatal("no span despite installed sink")
	}
}

// TestDSNUnknownOptions is the strict-parser regression suite: misspelled
// or unsupported option keys must fail Open with a clear error on both
// drivers, while every known key still opens.
func TestDSNUnknownOptions(t *testing.T) {
	dir := t.TempDir()
	cases := []struct {
		dsn     string
		wantErr string // "" = must open
	}{
		// The motivating misspelling: ?trce=1 must not silently no-op.
		{"mem:strict?trce=1", `unknown DSN option "trce"`},
		{"mem:strict?slow_ms=50", `unknown DSN option "slow_ms"`},
		{"mem:strict?readonly=1&bogus=x", `unknown DSN option "bogus"`},
		// sync/checkpoint are file-driver options, not mem-driver ones.
		{"mem:strict?sync=1", `unknown DSN option "sync"`},
		{"mem:strict?checkpoint=100", `unknown DSN option "checkpoint"`},
		{"file:" + dir + "?trcae=yes", `unknown DSN option "trcae"`},
		{"file:" + dir + "?Trace=1", `unknown DSN option "Trace"`}, // keys are case-sensitive
		{"file:" + dir + "?telemetry=1", `unknown DSN option "telemetry"`},
		// All known spellings still work.
		{"mem:strict?trace=1&slowms=5&readonly=0", ""},
		{"file:" + dir + "?sync=1&checkpoint=100&trace=0&slowms=0&readonly=0", ""},
	}
	for _, tc := range cases {
		c, err := Open(tc.dsn)
		if tc.wantErr == "" {
			if err != nil {
				t.Errorf("Open(%q) failed: %v", tc.dsn, err)
				continue
			}
			c.Close()
			continue
		}
		if err == nil {
			c.Close()
			t.Errorf("Open(%q) accepted an unknown option", tc.dsn)
			continue
		}
		if !strings.Contains(err.Error(), tc.wantErr) {
			t.Errorf("Open(%q) error %q does not mention %q", tc.dsn, err, tc.wantErr)
		}
		if !strings.Contains(err.Error(), "known options:") {
			t.Errorf("Open(%q) error %q does not list known options", tc.dsn, err)
		}
	}
}
