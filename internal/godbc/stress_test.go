package godbc

import (
	"fmt"
	"sync"
	"testing"
)

// TestConcurrentWriters drives one connection per goroutine against a
// shared engine: the paper's shared-repository scenario, where several
// analysts load trials at once. The engine serializes writers; every
// insert must land exactly once.
func TestConcurrentWriters(t *testing.T) {
	dsn := freshMem(t)
	setup := openT(t, dsn)
	if _, err := setup.Exec(
		"CREATE TABLE t (id BIGINT PRIMARY KEY AUTO_INCREMENT, writer BIGINT, n BIGINT)"); err != nil {
		t.Fatal(err)
	}

	const (
		writers = 8
		each    = 200
	)
	var wg sync.WaitGroup
	errs := make(chan error, writers)
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			c, err := Open(dsn)
			if err != nil {
				errs <- err
				return
			}
			defer c.Close()
			ins, err := c.Prepare("INSERT INTO t (writer, n) VALUES (?, ?)")
			if err != nil {
				errs <- err
				return
			}
			for i := 0; i < each; i++ {
				if _, err := ins.Exec(w, i); err != nil {
					errs <- fmt.Errorf("writer %d: %w", w, err)
					return
				}
			}
		}(w)
	}
	// Concurrent readers while the writers run.
	stop := make(chan struct{})
	var rg sync.WaitGroup
	for r := 0; r < 4; r++ {
		rg.Add(1)
		go func() {
			defer rg.Done()
			c, err := Open(dsn)
			if err != nil {
				errs <- err
				return
			}
			defer c.Close()
			for {
				select {
				case <-stop:
					return
				default:
				}
				rows, err := c.Query("SELECT COUNT(*) FROM t")
				if err != nil {
					errs <- err
					return
				}
				rows.Next()
				var n int64
				rows.Scan(&n) //nolint:errcheck
				if n < 0 || n > writers*each {
					errs <- fmt.Errorf("impossible count %d", n)
					return
				}
			}
		}()
	}
	wg.Wait()
	close(stop)
	rg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}

	rows, err := setup.Query("SELECT writer, COUNT(*) FROM t GROUP BY writer ORDER BY writer")
	if err != nil {
		t.Fatal(err)
	}
	seen := 0
	for rows.Next() {
		var w, n int64
		rows.Scan(&w, &n) //nolint:errcheck
		if n != each {
			t.Fatalf("writer %d wrote %d rows, want %d", w, n, each)
		}
		seen++
	}
	if seen != writers {
		t.Fatalf("%d writers seen, want %d", seen, writers)
	}
	// Auto-increment ids are unique: max id == total rows.
	rows, _ = setup.Query("SELECT COUNT(*), MAX(id), COUNT(DISTINCT id) FROM t")
	rows.Next()
	var total, maxID, distinct int64
	rows.Scan(&total, &maxID, &distinct) //nolint:errcheck
	if total != writers*each || maxID != total || distinct != total {
		t.Fatalf("ids: total=%d max=%d distinct=%d", total, maxID, distinct)
	}
}

// TestConcurrentTransactions interleaves explicit transactions from
// multiple connections; rollbacks must never leak rows.
func TestConcurrentTransactions(t *testing.T) {
	dsn := freshMem(t)
	setup := openT(t, dsn)
	setup.Exec("CREATE TABLE t (a BIGINT)")

	var wg sync.WaitGroup
	for w := 0; w < 6; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			c, err := Open(dsn)
			if err != nil {
				t.Error(err)
				return
			}
			defer c.Close()
			for i := 0; i < 50; i++ {
				if err := c.Begin(); err != nil {
					t.Error(err)
					return
				}
				c.Exec("INSERT INTO t VALUES (?)", w) //nolint:errcheck
				if i%2 == 0 {
					c.Commit() //nolint:errcheck
				} else {
					c.Rollback() //nolint:errcheck
				}
			}
		}(w)
	}
	wg.Wait()
	rows, _ := setup.Query("SELECT COUNT(*) FROM t")
	rows.Next()
	var n int64
	rows.Scan(&n) //nolint:errcheck
	if n != 6*25 {
		t.Fatalf("rows = %d, want %d (committed halves only)", n, 6*25)
	}
}
