package godbc

import (
	"strings"
	"testing"
)

func TestReadOnlyConnection(t *testing.T) {
	dsn := freshMem(t)
	rw := openT(t, dsn)
	if _, err := rw.Exec("CREATE TABLE t (a BIGINT)"); err != nil {
		t.Fatal(err)
	}
	if _, err := rw.Exec("INSERT INTO t VALUES (1)"); err != nil {
		t.Fatal(err)
	}

	ro, err := Open(dsn + "?readonly=1")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ro.Close() })

	// Reads work.
	rows, err := ro.Query("SELECT COUNT(*) FROM t")
	if err != nil {
		t.Fatal(err)
	}
	rows.Next()
	var n int64
	rows.Scan(&n)
	if n != 1 {
		t.Fatalf("count = %d", n)
	}
	md := ro.MetaData()
	if tables, err := md.Tables(); err != nil || len(tables) != 1 {
		t.Fatalf("metadata: %v %v", tables, err)
	}

	// Every mutation path is rejected.
	writes := []string{
		"INSERT INTO t VALUES (2)",
		"UPDATE t SET a = 3",
		"DELETE FROM t",
		"CREATE TABLE u (x BIGINT)",
		"DROP TABLE t",
		"ALTER TABLE t ADD COLUMN b BIGINT",
		"CREATE INDEX ix ON t (a)",
	}
	for _, q := range writes {
		if _, err := ro.Exec(q); err == nil || !strings.Contains(err.Error(), "read-only") {
			t.Errorf("%s: %v", q, err)
		}
	}
	if err := ro.Begin(); err == nil {
		t.Error("Begin on read-only connection accepted")
	}
	// Prepared statements hit the same wall.
	stmt, err := ro.Prepare("INSERT INTO t VALUES (?)")
	if err != nil {
		t.Fatal(err) // preparing is fine; executing is not
	}
	if _, err := stmt.Exec(9); err == nil {
		t.Error("prepared write on read-only connection accepted")
	}
	// The underlying data is untouched.
	rows, _ = rw.Query("SELECT COUNT(*) FROM t")
	rows.Next()
	rows.Scan(&n)
	if n != 1 {
		t.Fatalf("data mutated through read-only conn: %d rows", n)
	}
}

func TestReadOnlyFileDriver(t *testing.T) {
	dir := t.TempDir()
	rw := openT(t, "file:"+dir)
	rw.Exec("CREATE TABLE t (a BIGINT)")
	ro, err := Open("file:" + dir + "?readonly=1")
	if err != nil {
		t.Fatal(err)
	}
	defer ro.Close()
	if _, err := ro.Exec("INSERT INTO t VALUES (1)"); err == nil {
		t.Fatal("write through read-only file conn accepted")
	}
	if _, err := ro.Query("SELECT * FROM t"); err != nil {
		t.Fatal(err)
	}
}
