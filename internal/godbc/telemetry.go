// Self-hosted telemetry: PerfDMF stores its own spans and slow queries in
// the same relational engine it manages application profiles with. The
// paper's thesis — performance data belongs in a queryable relational
// store — applied to the framework itself:
//
//	SELECT op, COUNT(*), SUM(dur_us) FROM PERFDMF_SPANS GROUP BY op
//
// The obs.TelemetrySink owns buffering, backpressure and head sampling;
// TelemetryStore owns the schema and an asynchronous group-commit write
// path: sink batches land in a bounded queue, a dedicated writer goroutine
// coalesces them into one relaxed-durability transaction per group, prunes
// the telemetry tables by age and row cap, and feeds every write's cost
// back into the sampling governor so persistence stays inside the overhead
// budget. The store's connection is quiet (it never produces spans), so
// persisting telemetry cannot generate more telemetry.
package godbc

import (
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"perfdmf/internal/obs"
)

// Telemetry table names, discoverable like any other table via MetaData().
const (
	SpansTable   = "PERFDMF_SPANS"
	SlowLogTable = "PERFDMF_SLOWLOG"
)

// telemetryDDL is idempotent; the store runs it at open. It deliberately
// still creates the original (pre-span-tree) schema: the tree columns are
// added afterwards by telemetryMigrations through ALTER TABLE, so fresh
// and pre-existing databases take the same dynamic-schema upgrade path.
var telemetryDDL = []string{
	`CREATE TABLE IF NOT EXISTS PERFDMF_SPANS (
		span_id BIGINT PRIMARY KEY,
		start_time TIMESTAMP,
		kind VARCHAR NOT NULL,
		op VARCHAR,
		statement VARCHAR,
		params BIGINT,
		parse_us BIGINT,
		plan_us BIGINT,
		execute_us BIGINT,
		materialize_us BIGINT,
		dur_us BIGINT,
		rows_scanned BIGINT,
		rows_returned BIGINT,
		index_used BOOLEAN,
		plan_summary VARCHAR,
		err VARCHAR)`,

	`CREATE TABLE IF NOT EXISTS PERFDMF_SLOWLOG (
		span_id BIGINT PRIMARY KEY,
		start_time TIMESTAMP,
		kind VARCHAR NOT NULL,
		op VARCHAR,
		statement VARCHAR,
		dur_us BIGINT,
		rows_scanned BIGINT,
		rows_returned BIGINT,
		err VARCHAR)`,
}

// telemetryMigrations lists columns added after the original schema
// shipped. Each is applied with ALTER TABLE ADD COLUMN only when
// MetaData() shows the column missing, so rows written by older versions
// survive and read back as NULL (a NULL parent_span_id is a root span).
var telemetryMigrations = []struct{ table, column, typ string }{
	{SpansTable, "parent_span_id", "BIGINT"},
	{SpansTable, "root_op", "VARCHAR"},
	{SlowLogTable, "root_op", "VARCHAR"},
}

// migrateTelemetrySchema brings an existing telemetry schema up to date,
// discovering the current shape through the connection's MetaData.
func migrateTelemetrySchema(c Conn) error {
	md := c.MetaData()
	for _, m := range telemetryMigrations {
		cols, err := md.Columns(m.table)
		if err != nil {
			return fmt.Errorf("godbc: telemetry migration: columns of %s: %w", m.table, err)
		}
		present := false
		for _, col := range cols {
			if strings.EqualFold(col.Name, m.column) {
				present = true
				break
			}
		}
		if present {
			continue
		}
		ddl := "ALTER TABLE " + m.table + " ADD COLUMN " + m.column + " " + m.typ
		if _, err := c.Exec(ddl); err != nil {
			return fmt.Errorf("godbc: telemetry migration: %s: %w", ddl, err)
		}
	}
	return nil
}

// seedSpanIDs pushes the process-wide span-id counter past the highest
// persisted span id. Ids are monotonic per process; without this, a new
// process writing into an archive another run already populated would
// collide with the span_id primary key and lose whole batches.
func seedSpanIDs(c Conn) error {
	rows, err := c.Query("SELECT MAX(span_id) FROM PERFDMF_SPANS")
	if err != nil {
		return fmt.Errorf("godbc: telemetry span-id seed: %w", err)
	}
	defer rows.Close()
	if rows.Next() {
		if max, ok := rows.Value(0).(int64); ok {
			obs.EnsureSpanIDsAbove(max)
		}
	}
	return rows.Err()
}

const telemetryStatementMax = 512 // stored statement text cap, bytes

// Telemetry pipeline defaults, exported so operators reading the docs and
// code see the same numbers.
const (
	// DefaultTelemetryBudgetPct is the end-to-end overhead budget the
	// sampling governor enforces when neither TelemetryOptions.BudgetPct
	// nor the DSN's ?telemetrybudget option sets one.
	DefaultTelemetryBudgetPct = 5.0
	// DefaultTelemetryRetainRows caps PERFDMF_SPANS / PERFDMF_SLOWLOG at
	// this many rows unless the caller picks a cap (or disables it with a
	// negative RetainRows). A long-running daemon must not let its own
	// telemetry grow the archive without bound.
	DefaultTelemetryRetainRows = 100_000
)

// TelemetryOptions tunes the whole self-hosted telemetry pipeline. The
// zero value picks sensible defaults everywhere.
type TelemetryOptions struct {
	// Sink configures the buffering side (capacity, flush period). The
	// Governor field is owned by the pipeline and overwritten.
	Sink obs.SinkOptions
	// BudgetPct is the end-to-end overhead budget (percent) the sampling
	// governor targets. 0 defers to the DSN's ?telemetrybudget option and
	// then DefaultTelemetryBudgetPct; negative disables the governor (every
	// span is kept).
	BudgetPct float64
	// GroupSize caps the entries committed in one writer transaction
	// (default 512).
	GroupSize int
	// MaxBatchAge bounds how long a sub-GroupSize group may wait before it
	// is committed anyway (default 100ms).
	MaxBatchAge time.Duration
	// QueueBatches bounds the writer queue, in sink batches (default 64).
	// A full queue fails Store — the sink counts the error and the spans
	// are shed, never the workload blocked.
	QueueBatches int
	// RetainAge prunes spans and slow-log rows whose start_time is older
	// (0 disables age pruning).
	RetainAge time.Duration
	// RetainRows caps the row count of each telemetry table, pruning the
	// oldest span ids beyond it. 0 picks DefaultTelemetryRetainRows;
	// negative disables the cap.
	RetainRows int
	// PruneEvery is the retention sweep cadence on the writer goroutine
	// (default 5s). A final sweep always runs at Close.
	PruneEvery time.Duration
	// HistoryEvery turns on the continuous-observability layer: every
	// HistoryEvery the writer goroutine scrapes the metric registry into
	// obs.DefaultHistory, mirrors the sample into PERFDMF_METRICS_HISTORY,
	// and evaluates the PERFDMF_ALERT_RULES against the history ring. 0
	// (the default) leaves it off.
	HistoryEvery time.Duration
}

func (o TelemetryOptions) withDefaults() TelemetryOptions {
	if o.GroupSize <= 0 {
		o.GroupSize = 512
	}
	if o.MaxBatchAge <= 0 {
		o.MaxBatchAge = 100 * time.Millisecond
	}
	if o.QueueBatches <= 0 {
		o.QueueBatches = 64
	}
	if o.RetainRows == 0 {
		o.RetainRows = DefaultTelemetryRetainRows
	}
	if o.PruneEvery <= 0 {
		o.PruneEvery = 5 * time.Second
	}
	return o
}

// Writer-side metrics, resolved once. They share the obs_telemetry family
// with the sink's counters so the whole pipeline groups on one dashboard.
var (
	mTelGroupCommits  = obs.Default.Counter("obs_telemetry_group_commits_total")
	mTelGroupCommitNS = obs.Default.Histogram("obs_telemetry_group_commit_ns")
	mTelGroupRows     = obs.Default.Histogram("obs_telemetry_group_commit_rows")
	mTelWriterErrors  = obs.Default.Counter("obs_telemetry_writer_errors_total")
	mTelWriterStalls  = obs.Default.Counter("obs_telemetry_writer_stalls_total")
	mTelQueueDrops    = obs.Default.Counter("obs_telemetry_writer_queue_drops_total")
	mTelPrunedSpans   = obs.Default.Counter("obs_telemetry_pruned_spans_total")
	mTelPrunedSlow    = obs.Default.Counter("obs_telemetry_pruned_slowlog_total")
	mTelPruneRuns     = obs.Default.Counter("obs_telemetry_prune_runs_total")
)

// TelemetryStore persists span batches through an ordinary godbc
// connection. Store (the obs.TelemetrySink callback) only enqueues: a
// dedicated writer goroutine owns the connection, coalesces queued batches
// into group commits with relaxed durability, and prunes the telemetry
// tables on a timer. A batch acknowledged by Store (nil error) is
// guaranteed to be committed by the time Close returns, unless the commit
// itself failed — which is counted and reported, never silent.
type TelemetryStore struct {
	conn    Conn
	insSpan Stmt
	insSlow Stmt
	gov     *obs.Governor
	opts    TelemetryOptions

	queue    chan []obs.SinkEntry
	flushReq chan chan error
	stopCh   chan struct{}
	done     chan struct{}

	queued atomic.Int64 // entries accepted but not yet committed
	closed atomic.Bool

	// Continuous-observability state (history.go). insHist is nil when
	// HistoryEvery is 0; the map/slice/time fields are owned by the writer
	// goroutine (seeded before it starts).
	insHist       Stmt
	alerts        *obs.AlertSet
	episodeByRule map[int64]int64
	lastRuleLoad  time.Time
	pendingTrans  []obs.AlertTransition
	lastScrapeNS  atomic.Int64

	stopOnce sync.Once
	closeErr error
}

// OpenTelemetryStore opens a dedicated quiet connection to dsn, ensures the
// PERFDMF_SPANS and PERFDMF_SLOWLOG tables exist, and starts the writer
// goroutine. The DSN should name the same database the application uses
// (mem: names and file: directories share one engine across connections),
// so the telemetry lands next to the profile data and is queryable with the
// same SQL. The sampling governor is created here from the resolved budget
// (options, then ?telemetrybudget, then the default); retrieve it with
// Governor to wire the sink.
func OpenTelemetryStore(dsn string, o TelemetryOptions) (*TelemetryStore, error) {
	o = o.withDefaults()
	budget, err := resolveTelemetryBudget(dsn, o.BudgetPct)
	if err != nil {
		return nil, err
	}
	c, err := Open(dsn)
	if err != nil {
		return nil, fmt.Errorf("godbc: telemetry store: %w", err)
	}
	if cc, ok := c.(*conn); ok {
		cc.quiet = true
		// Span batches ride relaxed commits: group durability is batched
		// so telemetry fsyncs never contend with the workload's own.
		cc.relaxed = true
		// The store must be able to write regardless of DSN observability
		// options; per-connection trace/slowms make no sense on a quiet
		// connection.
		cc.obs = obsOpts{}
	}
	for _, ddl := range telemetryDDL {
		if _, err := c.Exec(ddl); err != nil {
			c.Close()
			return nil, fmt.Errorf("godbc: telemetry schema: %w", err)
		}
	}
	if err := migrateTelemetrySchema(c); err != nil {
		c.Close()
		return nil, err
	}
	if err := seedSpanIDs(c); err != nil {
		c.Close()
		return nil, err
	}
	insSpan, err := c.Prepare(`INSERT INTO PERFDMF_SPANS (span_id, parent_span_id, root_op,
		start_time, kind, op, statement, params, parse_us, plan_us, execute_us, materialize_us,
		dur_us, rows_scanned, rows_returned, index_used, plan_summary, err)
		VALUES (?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?)`)
	if err != nil {
		c.Close()
		return nil, fmt.Errorf("godbc: telemetry prepare: %w", err)
	}
	insSlow, err := c.Prepare(`INSERT INTO PERFDMF_SLOWLOG (span_id, root_op, start_time, kind, op,
		statement, dur_us, rows_scanned, rows_returned, err)
		VALUES (?, ?, ?, ?, ?, ?, ?, ?, ?, ?)`)
	if err != nil {
		insSpan.Close()
		c.Close()
		return nil, fmt.Errorf("godbc: telemetry prepare: %w", err)
	}
	var gov *obs.Governor
	if budget > 0 {
		gov = obs.NewGovernor(budget)
	}
	ts := &TelemetryStore{
		conn:     c,
		insSpan:  insSpan,
		insSlow:  insSlow,
		gov:      gov,
		opts:     o,
		queue:    make(chan []obs.SinkEntry, o.QueueBatches),
		flushReq: make(chan chan error),
		stopCh:   make(chan struct{}),
		done:     make(chan struct{}),
	}
	if o.HistoryEvery > 0 {
		if err := ts.openObservability(); err != nil {
			insSpan.Close()
			insSlow.Close()
			c.Close()
			return nil, err
		}
	}
	go ts.writer()
	return ts, nil
}

// resolveTelemetryBudget picks the governor budget: an explicit option
// wins, then the DSN's ?telemetrybudget, then the default. Negative (or
// telemetrybudget=0) disables the governor and returns 0.
func resolveTelemetryBudget(dsn string, explicit float64) (float64, error) {
	if explicit < 0 {
		return 0, nil
	}
	if explicit > 0 {
		return explicit, nil
	}
	if _, rest, ok := strings.Cut(dsn, ":"); ok {
		if _, opts, err := parseDSNOptions(rest); err == nil {
			pct, set, err := parseTelemetryBudgetOption(opts)
			if err != nil {
				return 0, err
			}
			if set {
				return pct, nil
			}
		}
	}
	return DefaultTelemetryBudgetPct, nil
}

// Governor returns the store's sampling governor, nil when the budget is
// disabled.
func (ts *TelemetryStore) Governor() *obs.Governor { return ts.gov }

// QueuedEntries returns the entries accepted by Store but not yet
// committed.
func (ts *TelemetryStore) QueuedEntries() int { return int(ts.queued.Load()) }

// Store hands one sink batch to the writer goroutine. It never blocks: a
// full queue (the writer has fallen behind by QueueBatches flushes) fails
// the batch, which the sink counts as a store error. It satisfies the
// obs.TelemetrySink store callback.
func (ts *TelemetryStore) Store(batch []obs.SinkEntry) error {
	if len(batch) == 0 {
		return nil
	}
	if ts.closed.Load() {
		return fmt.Errorf("godbc: telemetry store is closed")
	}
	select {
	case ts.queue <- batch:
		ts.queued.Add(int64(len(batch)))
		return nil
	default:
		mTelQueueDrops.Add(int64(len(batch)))
		return fmt.Errorf("godbc: telemetry writer queue full (%d batches pending)", cap(ts.queue))
	}
}

// Flush blocks until every batch acknowledged so far has been committed
// (or the store has shut down). Tests and one-shot tools use it; the
// steady-state pipeline never needs a barrier.
func (ts *TelemetryStore) Flush() error {
	ack := make(chan error, 1)
	select {
	case ts.flushReq <- ack:
		select {
		case err := <-ack:
			return err
		case <-ts.done:
			return nil
		}
	case <-ts.done:
		return nil
	}
}

// writer is the group-commit loop: it owns the store's connection, absorbs
// queued sink batches, commits them in bounded groups when the size or age
// trigger fires, runs retention sweeps, and reports every write's duration
// to the governor. Steady-state commits never wait for the engine's write
// lock: a refused TryBegin leaves the group pending, reports a governor
// stall, and retries on the next trigger — only the Flush barrier and the
// Close drain block for the lock, because their callers need certainty.
func (ts *TelemetryStore) writer() {
	defer close(ts.done)
	age := time.NewTicker(ts.opts.MaxBatchAge)
	defer age.Stop()
	prune := time.NewTicker(ts.opts.PruneEvery)
	defer prune.Stop()
	// The scrape ticker's channel stays nil (never selected) when the
	// continuous layer is off.
	var scrapeC <-chan time.Time
	if ts.historyEnabled() && ts.opts.HistoryEvery > 0 {
		scrape := time.NewTicker(ts.opts.HistoryEvery)
		defer scrape.Stop()
		scrapeC = scrape.C
	}
	var pending []obs.SinkEntry
	// While commits are stalled behind the workload's write lock, stop
	// absorbing the queue once a couple of groups are pending: Store's
	// bound then holds the line (shedding, counted) instead of pending
	// growing without limit.
	maxPending := 2 * ts.opts.GroupSize
	for {
		queue := ts.queue
		if len(pending) >= maxPending {
			queue = nil
		}
		select {
		case b := <-queue:
			pending = append(pending, b...)
			for len(pending) >= ts.opts.GroupSize {
				if !ts.tryCommitGroup(pending[:ts.opts.GroupSize]) {
					break
				}
				pending = pending[ts.opts.GroupSize:]
			}
		case <-age.C:
			if len(pending) > 0 {
				n := len(pending)
				if n > ts.opts.GroupSize {
					n = ts.opts.GroupSize
				}
				if ts.tryCommitGroup(pending[:n]) {
					pending = pending[n:]
				}
			}
		case ack := <-ts.flushReq:
			pending = ts.drainQueue(pending)
			var err error
			if len(pending) > 0 {
				err = ts.commitGroup(pending)
				pending = nil
			}
			ack <- err
		case <-scrapeC:
			ts.scrapeTick(time.Now())
		case <-prune.C:
			ts.prune()
		case <-ts.stopCh:
			// Final drain: everything Store acknowledged must reach the
			// tables before Close returns. Then one last scrape (so the
			// workload's closing activity makes it into the history) and
			// one last retention sweep, so short-lived processes still
			// honour the caps.
			pending = ts.drainQueue(pending)
			if len(pending) > 0 {
				ts.commitGroup(pending) //nolint:errcheck // counted in obs_telemetry_writer_errors_total
			}
			ts.scrapeTick(time.Now())
			ts.prune()
			return
		}
	}
}

// drainQueue empties the writer queue without blocking.
func (ts *TelemetryStore) drainQueue(pending []obs.SinkEntry) []obs.SinkEntry {
	for {
		select {
		case b := <-ts.queue:
			pending = append(pending, b...)
		default:
			return pending
		}
	}
}

// commitGroup persists one group in a single relaxed-durability transaction
// — blocking until the engine's write lock is free — and feeds the wall
// time spent into the governor. The Flush barrier and the Close drain use
// it; steady-state commits go through tryCommitGroup.
func (ts *TelemetryStore) commitGroup(group []obs.SinkEntry) error {
	start := time.Now()
	err := ts.conn.Begin()
	if err == nil {
		err = ts.insertGroupTx(group)
	}
	return ts.finishGroup(group, time.Since(start), err)
}

// tryCommitGroup is commitGroup without the wait: when the engine's write
// lock is held it reports a stall to the governor and returns false with
// the group left for the caller to retry. True means the group was consumed
// — committed, or failed with the error counted.
func (ts *TelemetryStore) tryCommitGroup(group []obs.SinkEntry) bool {
	start := time.Now()
	ok, err := TryBeginConn(ts.conn)
	if err == nil && !ok {
		mTelWriterStalls.Inc()
		ts.gov.ReportStall()
		return false
	}
	if err == nil {
		err = ts.insertGroupTx(group)
	}
	ts.finishGroup(group, time.Since(start), err) //nolint:errcheck // counted in obs_telemetry_writer_errors_total
	return true
}

// TryBeginConn starts a non-blocking transaction on c when it implements
// TxTrier, falling back to the blocking Begin (reported as ok) otherwise.
func TryBeginConn(c Conn) (bool, error) {
	if tt, ok := c.(TxTrier); ok {
		return tt.TryBegin()
	}
	return true, c.Begin()
}

// finishGroup settles one consumed group: governor feedback, queue
// accounting, and the commit/error counters.
func (ts *TelemetryStore) finishGroup(group []obs.SinkEntry, d time.Duration, err error) error {
	ts.gov.ReportWrite(d)
	ts.queued.Add(-int64(len(group)))
	if err != nil {
		mTelWriterErrors.Inc()
		return err
	}
	mTelGroupCommits.Inc()
	mTelGroupCommitNS.Observe(int64(d))
	mTelGroupRows.Observe(int64(len(group)))
	return nil
}

// insertGroupTx runs the group's inserts on the transaction the caller
// already opened, committing on success and rolling back on the first
// failed insert.
func (ts *TelemetryStore) insertGroupTx(group []obs.SinkEntry) error {
	for _, e := range group {
		sp := e.Span
		stmt := sp.Label(telemetryStatementMax)
		// A zero ParentID persists as NULL, matching rows written before
		// the parent_span_id migration: NULL-parented rows are roots.
		var parent any
		if sp.ParentID != 0 {
			parent = sp.ParentID
		}
		if _, err := ts.insSpan.Exec(
			sp.ID, parent, sp.Root, sp.Start, sp.Kind, sp.Op(), stmt, sp.Params,
			sp.Parse.Microseconds(), sp.Plan.Microseconds(),
			sp.Execute.Microseconds(), sp.Materialize.Microseconds(),
			sp.Total.Microseconds(), sp.RowsScanned, sp.RowsReturned,
			sp.IndexUsed, sp.PlanSummary, sp.Err,
		); err != nil {
			ts.conn.Rollback() //nolint:errcheck
			return fmt.Errorf("godbc: telemetry insert span %d: %w", sp.ID, err)
		}
		if !e.Slow {
			continue
		}
		if _, err := ts.insSlow.Exec(
			sp.ID, sp.Root, sp.Start, sp.Kind, sp.Op(), stmt,
			sp.Total.Microseconds(), sp.RowsScanned, sp.RowsReturned, sp.Err,
		); err != nil {
			ts.conn.Rollback() //nolint:errcheck
			return fmt.Errorf("godbc: telemetry insert slowlog %d: %w", sp.ID, err)
		}
	}
	return ts.conn.Commit()
}

// prune enforces the retention policy: rows older than RetainAge go first,
// then each table is capped at RetainRows by pruning the oldest span ids.
// It runs on the writer goroutine (the connection's only user) and charges
// its cost to the governor like any other telemetry write.
func (ts *TelemetryStore) prune() {
	if ts.opts.RetainAge <= 0 && ts.opts.RetainRows <= 0 {
		return
	}
	start := time.Now()
	if ts.opts.RetainAge > 0 {
		cutoff := time.Now().Add(-ts.opts.RetainAge)
		ts.pruneAge(SpansTable, cutoff, mTelPrunedSpans)
		ts.pruneAge(SlowLogTable, cutoff, mTelPrunedSlow)
	}
	if ts.opts.RetainRows > 0 {
		ts.pruneRows(SpansTable, mTelPrunedSpans)
		ts.pruneRows(SlowLogTable, mTelPrunedSlow)
	}
	ts.pruneObservability()
	ts.gov.ReportWrite(time.Since(start))
	mTelPruneRuns.Inc()
}

func (ts *TelemetryStore) pruneAge(table string, cutoff time.Time, pruned *obs.Counter) {
	res, err := ts.conn.Exec("DELETE FROM "+table+" WHERE start_time < ?", cutoff)
	if err != nil {
		mTelWriterErrors.Inc()
		return
	}
	pruned.Add(res.RowsAffected)
}

// pruneRows deletes everything older than the RetainRows-th newest span id
// of the table. Span ids are monotonic in start order, so "oldest rows"
// and "smallest ids" coincide.
func (ts *TelemetryStore) pruneRows(table string, pruned *obs.Counter) {
	rows, err := ts.conn.Query(
		"SELECT span_id FROM "+table+" ORDER BY span_id DESC LIMIT 1 OFFSET ?",
		ts.opts.RetainRows-1)
	if err != nil {
		mTelWriterErrors.Inc()
		return
	}
	defer rows.Close()
	if !rows.Next() {
		return // table is within the cap
	}
	keepFrom, ok := rows.Value(0).(int64)
	rows.Close()
	if !ok {
		return
	}
	res, err := ts.conn.Exec("DELETE FROM "+table+" WHERE span_id < ?", keepFrom)
	if err != nil {
		mTelWriterErrors.Inc()
		return
	}
	pruned.Add(res.RowsAffected)
}

// Close stops the writer (draining everything acknowledged, committing the
// tail, and running a final retention sweep), then releases the statements
// and the connection. Closing twice is safe.
func (ts *TelemetryStore) Close() error {
	ts.stopOnce.Do(func() {
		ts.closed.Store(true)
		close(ts.stopCh)
		<-ts.done
		ts.insSpan.Close() //nolint:errcheck
		ts.insSlow.Close() //nolint:errcheck
		if ts.insHist != nil {
			ts.insHist.Close() //nolint:errcheck
		}
		ts.closeErr = ts.conn.Close()
	})
	return ts.closeErr
}

// --- pipeline state, for /healthz and the OBS_TELEMETRY catalog ---

// TelemetryStats is a point-in-time snapshot of the self-telemetry
// pipeline: the governor's control state, queue pressure, lifetime
// throughput counters, and the retention configuration. /healthz embeds it
// and the OBS_TELEMETRY virtual catalog row is built from it.
type TelemetryStats struct {
	Active              bool
	SampleRate          float64
	BudgetPct           float64
	WriteOverheadPct    float64
	GovernorAdjustments int64
	QueueDepth          int // sink buffer + writer queue, in entries
	QueueCapacity       int // sink buffer capacity
	Offered             int64
	SampledOut          int64
	Dropped             int64
	Stored              int64
	StoreErrors         int64
	GroupCommits        int64
	PrunedSpans         int64
	PrunedSlowLog       int64
	LastFlush           time.Time
	RetainAge           time.Duration
	RetainRows          int

	// Continuous-observability state; zero values when HistoryEvery is 0.
	HistoryEnabled bool
	HistoryEvery   time.Duration
	LastScrape     time.Time
	AlertRules     int
	AlertsPending  int
	AlertsFiring   int
}

// telemetryPipeline ties a running sink/store pair together for state
// snapshots. The pointer survives Stop so post-run summaries still see the
// final counters, with Active false.
type telemetryPipeline struct {
	sink   *obs.TelemetrySink
	store  *TelemetryStore
	active atomic.Bool
}

var activeTelemetry atomic.Pointer[telemetryPipeline]

// TelemetryState snapshots the most recent telemetry pipeline. ok is false
// when StartTelemetry has never run in this process; Active is false once
// the pipeline has been stopped.
func TelemetryState() (TelemetryStats, bool) {
	p := activeTelemetry.Load()
	if p == nil {
		return TelemetryStats{}, false
	}
	gov := p.store.Governor()
	st := TelemetryStats{
		Active:              p.active.Load(),
		SampleRate:          gov.Rate(),
		BudgetPct:           gov.BudgetPct(),
		WriteOverheadPct:    gov.OverheadPct(),
		GovernorAdjustments: gov.Adjustments(),
		QueueDepth:          p.sink.Buffered() + p.store.QueuedEntries(),
		QueueCapacity:       p.sink.Capacity(),
		Offered:             obs.Default.Counter("obs_telemetry_offered_total").Value(),
		SampledOut:          obs.Default.Counter("obs_telemetry_sampled_out_total").Value(),
		Dropped:             obs.Default.Counter("obs_telemetry_dropped_total").Value(),
		Stored:              obs.Default.Counter("obs_telemetry_stored_total").Value(),
		StoreErrors:         obs.Default.Counter("obs_telemetry_store_errors_total").Value(),
		GroupCommits:        mTelGroupCommits.Value(),
		PrunedSpans:         mTelPrunedSpans.Value(),
		PrunedSlowLog:       mTelPrunedSlow.Value(),
		LastFlush:           p.sink.LastFlush(),
		RetainAge:           p.store.opts.RetainAge,
		RetainRows:          p.store.opts.RetainRows,
	}
	if p.store.historyEnabled() {
		st.HistoryEnabled = true
		st.HistoryEvery = p.store.opts.HistoryEvery
		st.LastScrape = p.store.LastScrape()
		for _, a := range p.store.AlertsSnapshot() {
			st.AlertRules++
			switch a.State {
			case obs.AlertStatePending:
				st.AlertsPending++
			case obs.AlertStateFiring:
				st.AlertsFiring++
			}
		}
	}
	return st, true
}

// FlushTelemetry drains the active pipeline end to end: the sink's buffer
// into the writer's queue, then the queue through a group commit into the
// database. It is a barrier — after a nil return, every span the sink had
// accepted before the call is committed. No-op when no pipeline is running.
func FlushTelemetry() error {
	p := activeTelemetry.Load()
	if p == nil || !p.active.Load() {
		return nil
	}
	// Drain the writer's queue first: after a burst it may be full, and a
	// sink flush into a full queue sheds the batch instead of blocking.
	// With the queue empty the sink's batch is guaranteed a slot; the
	// second store flush commits it.
	if err := p.store.Flush(); err != nil {
		return err
	}
	if err := p.sink.Flush(); err != nil {
		return err
	}
	return p.store.Flush()
}

// StartTelemetry wires the whole self-hosted telemetry path: it opens a
// TelemetryStore on dsn (starting the group-commit writer), creates the
// budget governor, starts an obs.TelemetrySink sampling and flushing into
// the store, and installs the sink globally so every connection's completed
// spans are captured. The returned stop function uninstalls the sink,
// flushes the tail through the writer, and closes the store.
func StartTelemetry(dsn string, o TelemetryOptions) (stop func() error, err error) {
	st, err := OpenTelemetryStore(dsn, o)
	if err != nil {
		return nil, err
	}
	so := o.Sink
	so.Governor = st.Governor()
	sink := obs.NewTelemetrySink(st.Store, so)
	sink.Start()
	p := &telemetryPipeline{sink: sink, store: st}
	p.active.Store(true)
	activeTelemetry.Store(p)
	obs.InstallSink(sink)
	return func() error {
		obs.UninstallSink()
		// Drain the writer's queue before the sink's final flush: after a
		// burst the queue may be full, and the tail of the telemetry would
		// be shed (a counted error) at the very moment a clean drain is
		// wanted. With the queue emptied the final batch always fits, and
		// st.Close commits it.
		err := st.Flush()
		if cerr := sink.Close(); err == nil {
			err = cerr
		}
		if cerr := st.Close(); err == nil {
			err = cerr
		}
		p.active.Store(false)
		return err
	}, nil
}
