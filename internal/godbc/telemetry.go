// Self-hosted telemetry: PerfDMF stores its own spans and slow queries in
// the same relational engine it manages application profiles with. The
// paper's thesis — performance data belongs in a queryable relational
// store — applied to the framework itself:
//
//	SELECT op, COUNT(*), SUM(dur_us) FROM PERFDMF_SPANS GROUP BY op
//
// The obs.TelemetrySink owns buffering/backpressure; TelemetryStore owns
// the schema and the INSERT path. The store's connection is quiet (it never
// produces spans), so persisting telemetry cannot generate more telemetry.
package godbc

import (
	"fmt"
	"strings"

	"perfdmf/internal/obs"
)

// Telemetry table names, discoverable like any other table via MetaData().
const (
	SpansTable   = "PERFDMF_SPANS"
	SlowLogTable = "PERFDMF_SLOWLOG"
)

// telemetryDDL is idempotent; the store runs it at open. It deliberately
// still creates the original (pre-span-tree) schema: the tree columns are
// added afterwards by telemetryMigrations through ALTER TABLE, so fresh
// and pre-existing databases take the same dynamic-schema upgrade path.
var telemetryDDL = []string{
	`CREATE TABLE IF NOT EXISTS PERFDMF_SPANS (
		span_id BIGINT PRIMARY KEY,
		start_time TIMESTAMP,
		kind VARCHAR NOT NULL,
		op VARCHAR,
		statement VARCHAR,
		params BIGINT,
		parse_us BIGINT,
		plan_us BIGINT,
		execute_us BIGINT,
		materialize_us BIGINT,
		dur_us BIGINT,
		rows_scanned BIGINT,
		rows_returned BIGINT,
		index_used BOOLEAN,
		plan_summary VARCHAR,
		err VARCHAR)`,

	`CREATE TABLE IF NOT EXISTS PERFDMF_SLOWLOG (
		span_id BIGINT PRIMARY KEY,
		start_time TIMESTAMP,
		kind VARCHAR NOT NULL,
		op VARCHAR,
		statement VARCHAR,
		dur_us BIGINT,
		rows_scanned BIGINT,
		rows_returned BIGINT,
		err VARCHAR)`,
}

// telemetryMigrations lists columns added after the original schema
// shipped. Each is applied with ALTER TABLE ADD COLUMN only when
// MetaData() shows the column missing, so rows written by older versions
// survive and read back as NULL (a NULL parent_span_id is a root span).
var telemetryMigrations = []struct{ table, column, typ string }{
	{SpansTable, "parent_span_id", "BIGINT"},
	{SpansTable, "root_op", "VARCHAR"},
	{SlowLogTable, "root_op", "VARCHAR"},
}

// migrateTelemetrySchema brings an existing telemetry schema up to date,
// discovering the current shape through the connection's MetaData.
func migrateTelemetrySchema(c Conn) error {
	md := c.MetaData()
	for _, m := range telemetryMigrations {
		cols, err := md.Columns(m.table)
		if err != nil {
			return fmt.Errorf("godbc: telemetry migration: columns of %s: %w", m.table, err)
		}
		present := false
		for _, col := range cols {
			if strings.EqualFold(col.Name, m.column) {
				present = true
				break
			}
		}
		if present {
			continue
		}
		ddl := "ALTER TABLE " + m.table + " ADD COLUMN " + m.column + " " + m.typ
		if _, err := c.Exec(ddl); err != nil {
			return fmt.Errorf("godbc: telemetry migration: %s: %w", ddl, err)
		}
	}
	return nil
}

// seedSpanIDs pushes the process-wide span-id counter past the highest
// persisted span id. Ids are monotonic per process; without this, a new
// process writing into an archive another run already populated would
// collide with the span_id primary key and lose whole batches.
func seedSpanIDs(c Conn) error {
	rows, err := c.Query("SELECT MAX(span_id) FROM PERFDMF_SPANS")
	if err != nil {
		return fmt.Errorf("godbc: telemetry span-id seed: %w", err)
	}
	defer rows.Close()
	if rows.Next() {
		if max, ok := rows.Value(0).(int64); ok {
			obs.EnsureSpanIDsAbove(max)
		}
	}
	return rows.Err()
}

const telemetryStatementMax = 512 // stored statement text cap, bytes

// TelemetryStore persists span batches through an ordinary godbc
// connection. Its Store method matches the obs.TelemetrySink callback.
type TelemetryStore struct {
	conn    Conn
	insSpan Stmt
	insSlow Stmt
}

// OpenTelemetryStore opens a dedicated quiet connection to dsn and ensures
// the PERFDMF_SPANS and PERFDMF_SLOWLOG tables exist. The DSN should name
// the same database the application uses (mem: names and file: directories
// share one engine across connections), so the telemetry lands next to the
// profile data and is queryable with the same SQL.
func OpenTelemetryStore(dsn string) (*TelemetryStore, error) {
	c, err := Open(dsn)
	if err != nil {
		return nil, fmt.Errorf("godbc: telemetry store: %w", err)
	}
	if cc, ok := c.(*conn); ok {
		cc.quiet = true
		// The store must be able to write regardless of DSN observability
		// options; per-connection trace/slowms make no sense on a quiet
		// connection.
		cc.obs = obsOpts{}
	}
	for _, ddl := range telemetryDDL {
		if _, err := c.Exec(ddl); err != nil {
			c.Close()
			return nil, fmt.Errorf("godbc: telemetry schema: %w", err)
		}
	}
	if err := migrateTelemetrySchema(c); err != nil {
		c.Close()
		return nil, err
	}
	if err := seedSpanIDs(c); err != nil {
		c.Close()
		return nil, err
	}
	insSpan, err := c.Prepare(`INSERT INTO PERFDMF_SPANS (span_id, parent_span_id, root_op,
		start_time, kind, op, statement, params, parse_us, plan_us, execute_us, materialize_us,
		dur_us, rows_scanned, rows_returned, index_used, plan_summary, err)
		VALUES (?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?)`)
	if err != nil {
		c.Close()
		return nil, fmt.Errorf("godbc: telemetry prepare: %w", err)
	}
	insSlow, err := c.Prepare(`INSERT INTO PERFDMF_SLOWLOG (span_id, root_op, start_time, kind, op,
		statement, dur_us, rows_scanned, rows_returned, err)
		VALUES (?, ?, ?, ?, ?, ?, ?, ?, ?, ?)`)
	if err != nil {
		insSpan.Close()
		c.Close()
		return nil, fmt.Errorf("godbc: telemetry prepare: %w", err)
	}
	return &TelemetryStore{conn: c, insSpan: insSpan, insSlow: insSlow}, nil
}

// Store persists one sink batch in a single transaction. It satisfies the
// obs.TelemetrySink store callback.
func (ts *TelemetryStore) Store(batch []obs.SinkEntry) error {
	if len(batch) == 0 {
		return nil
	}
	if err := ts.conn.Begin(); err != nil {
		return err
	}
	for _, e := range batch {
		sp := e.Span
		stmt := sp.Label(telemetryStatementMax)
		// A zero ParentID persists as NULL, matching rows written before
		// the parent_span_id migration: NULL-parented rows are roots.
		var parent any
		if sp.ParentID != 0 {
			parent = sp.ParentID
		}
		if _, err := ts.insSpan.Exec(
			sp.ID, parent, sp.Root, sp.Start, sp.Kind, sp.Op(), stmt, sp.Params,
			sp.Parse.Microseconds(), sp.Plan.Microseconds(),
			sp.Execute.Microseconds(), sp.Materialize.Microseconds(),
			sp.Total.Microseconds(), sp.RowsScanned, sp.RowsReturned,
			sp.IndexUsed, sp.PlanSummary, sp.Err,
		); err != nil {
			ts.conn.Rollback() //nolint:errcheck
			return fmt.Errorf("godbc: telemetry insert span %d: %w", sp.ID, err)
		}
		if !e.Slow {
			continue
		}
		if _, err := ts.insSlow.Exec(
			sp.ID, sp.Root, sp.Start, sp.Kind, sp.Op(), stmt,
			sp.Total.Microseconds(), sp.RowsScanned, sp.RowsReturned, sp.Err,
		); err != nil {
			ts.conn.Rollback() //nolint:errcheck
			return fmt.Errorf("godbc: telemetry insert slowlog %d: %w", sp.ID, err)
		}
	}
	return ts.conn.Commit()
}

// Close releases the store's statements and connection.
func (ts *TelemetryStore) Close() error {
	ts.insSpan.Close() //nolint:errcheck
	ts.insSlow.Close() //nolint:errcheck
	return ts.conn.Close()
}

// StartTelemetry wires the whole self-hosted telemetry path: it opens a
// TelemetryStore on dsn, starts an obs.TelemetrySink flushing into it, and
// installs the sink globally so every connection's completed spans are
// captured. The returned stop function uninstalls the sink, flushes the
// tail, and closes the store.
func StartTelemetry(dsn string, o obs.SinkOptions) (stop func() error, err error) {
	st, err := OpenTelemetryStore(dsn)
	if err != nil {
		return nil, err
	}
	sink := obs.NewTelemetrySink(st.Store, o)
	sink.Start()
	obs.InstallSink(sink)
	return func() error {
		obs.UninstallSink()
		err := sink.Close()
		if cerr := st.Close(); err == nil {
			err = cerr
		}
		return err
	}, nil
}
