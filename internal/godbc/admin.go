package godbc

import (
	"sync"
	"sync/atomic"
	"time"

	"perfdmf/internal/sqlexec"
)

// The live-connection registry: every open conn is tracked by id so the
// introspection catalog (OBS_PLAN_CACHE) and admin surfaces can enumerate
// per-connection state without the connections' cooperation.
var (
	connRegMu sync.Mutex
	connReg   = make(map[int64]*conn)
	connIDs   atomic.Int64
)

func registerConn(c *conn) {
	c.id = connIDs.Add(1)
	connRegMu.Lock()
	connReg[c.id] = c
	connRegMu.Unlock()
}

func unregisterConn(c *conn) {
	connRegMu.Lock()
	delete(connReg, c.id)
	connRegMu.Unlock()
}

// planCacheSnapshots reports every live connection's statement-cache
// counters; it is the source behind OBS_PLAN_CACHE.
func planCacheSnapshots() []sqlexec.PlanCacheInfo {
	connRegMu.Lock()
	conns := make([]*conn, 0, len(connReg))
	for _, c := range connReg {
		conns = append(conns, c)
	}
	connRegMu.Unlock()
	out := make([]sqlexec.PlanCacheInfo, 0, len(conns))
	for _, c := range conns {
		entries, hits, misses := c.cache.snapshot()
		out = append(out, sqlexec.PlanCacheInfo{
			ConnID:       c.id,
			Entries:      entries,
			Capacity:     stmtCacheMax,
			Hits:         hits,
			Misses:       misses,
			ColumnarHits: c.cache.columnarHits(),
		})
	}
	return out
}

// telemetrySnapshot adapts TelemetryState for the OBS_TELEMETRY catalog.
// Wall-clock ages are computed here, not in sqlexec, whose catalog sources
// must stay deterministic.
func telemetrySnapshot() (sqlexec.TelemetryInfo, bool) {
	st, ok := TelemetryState()
	if !ok {
		return sqlexec.TelemetryInfo{}, false
	}
	lastFlushAge := -1.0
	if !st.LastFlush.IsZero() {
		lastFlushAge = time.Since(st.LastFlush).Seconds()
	}
	return sqlexec.TelemetryInfo{
		Active:              st.Active,
		SampleRate:          st.SampleRate,
		BudgetPct:           st.BudgetPct,
		WriteOverheadPct:    st.WriteOverheadPct,
		GovernorAdjustments: st.GovernorAdjustments,
		QueueDepth:          st.QueueDepth,
		QueueCapacity:       st.QueueCapacity,
		Offered:             st.Offered,
		SampledOut:          st.SampledOut,
		Dropped:             st.Dropped,
		Stored:              st.Stored,
		StoreErrors:         st.StoreErrors,
		GroupCommits:        st.GroupCommits,
		PrunedSpans:         st.PrunedSpans,
		PrunedSlowLog:       st.PrunedSlowLog,
		RetainRows:          st.RetainRows,
		RetainAgeSec:        st.RetainAge.Seconds(),
		LastFlushAgeSec:     lastFlushAge,
	}, true
}

func init() {
	sqlexec.SetPlanCacheSource(planCacheSnapshots)
	sqlexec.SetTelemetrySource(telemetrySnapshot)
}

// ActiveStatements snapshots every statement currently executing in the
// process, sorted by id — the data behind OBS_ACTIVE_STATEMENTS and the
// /statements endpoint.
func ActiveStatements() []sqlexec.StmtInfo {
	return sqlexec.Statements.Snapshot()
}

// KillStatement cancels the running statement with the given id: the
// DELETE-style admin entry point (the /statements endpoint and `perfdmf
// top -kill` use it; `KILL <id>` is the SQL spelling). It reports whether
// a live statement was found; the statement unwinds at its next
// cancellation check with sqlexec.ErrStatementKilled.
func KillStatement(id int64) bool {
	return sqlexec.Statements.Kill(id)
}
