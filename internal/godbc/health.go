package godbc

import "time"

// Health mirrors the engine's durability/liveness probe (reldb.Health) for
// consumers above the connectivity layer — `perfdmf serve`'s /healthz
// endpoint reads it through the HealthReporter interface.
type Health struct {
	Open           bool      `json:"open"`
	Durable        bool      `json:"durable"`
	WALWritable    bool      `json:"wal_writable"`
	WALError       string    `json:"wal_error,omitempty"`
	WALOpsPending  int       `json:"wal_ops_pending"`
	LastCheckpoint time.Time `json:"last_checkpoint"`
	Tables         int       `json:"tables"`
}

// OK reports whether the engine can serve reads and durable writes.
func (h Health) OK() bool { return h.Open && h.WALWritable }

// HealthReporter is implemented by connections that can probe the health of
// their underlying engine. Both built-in drivers implement it.
type HealthReporter interface {
	Health() (Health, error)
}

// Health probes the connection's engine. It errors only when the connection
// itself is closed; an unhealthy engine is reported in the struct.
func (c *conn) Health() (Health, error) {
	if err := c.check(); err != nil {
		return Health{}, err
	}
	h := c.db.Health()
	return Health{
		Open:           h.Open,
		Durable:        h.Durable,
		WALWritable:    h.WALWritable,
		WALError:       h.WALError,
		WALOpsPending:  h.WALOpsPending,
		LastCheckpoint: h.LastCheckpoint,
		Tables:         h.Tables,
	}, nil
}
