package godbc

import (
	"errors"
	"fmt"
	"runtime"
	"strings"
	"testing"
	"time"

	"perfdmf/internal/obs"
	"perfdmf/internal/reldb"
	"perfdmf/internal/sqlexec"
)

// collect drains a query into string-rendered rows for compact assertions.
func collect(t *testing.T, c Conn, src string, args ...any) (cols []string, out [][]string) {
	t.Helper()
	rows, err := c.Query(src, args...)
	if err != nil {
		t.Fatalf("%s: %v", src, err)
	}
	defer rows.Close()
	cols = rows.Columns()
	for rows.Next() {
		rec := make([]string, len(cols))
		for i := range rec {
			rec[i] = fmt.Sprint(rows.Value(i))
		}
		out = append(out, rec)
	}
	if err := rows.Err(); err != nil {
		t.Fatalf("%s: %v", src, err)
	}
	return cols, out
}

// TestCatalogTablesSelectable: every OBS_* virtual table answers a plain
// SELECT * through the driver with its documented column set.
func TestCatalogTablesSelectable(t *testing.T) {
	c := openT(t, freshMem(t))
	if _, err := c.Exec("CREATE TABLE seed (id BIGINT PRIMARY KEY AUTO_INCREMENT, n BIGINT)"); err != nil {
		t.Fatal(err)
	}
	want := map[string][]string{
		"OBS_METRICS":           {"name", "kind", "value", "count", "sum", "p50", "p95", "p99"},
		"OBS_ACTIVE_STATEMENTS": {"statement_id", "sql", "kind", "phase", "elapsed_us", "rows_scanned", "rows_returned", "workers", "killed"},
		"OBS_PLAN_CACHE":        {"conn_id", "entries", "capacity", "hits", "misses", "columnar_hits", "schema_version"},
		"OBS_TABLE_STATS":       {"table_name", "column_name", "row_count", "ndv", "null_frac", "min_value", "max_value", "live_rows", "stale", "analyzed_at"},
		"OBS_TELEMETRY": {"active", "sample_rate", "budget_pct", "write_overhead_pct",
			"governor_adjustments", "queue_depth", "queue_capacity",
			"offered", "sampled_out", "dropped", "stored", "store_errors",
			"group_commits", "pruned_spans", "pruned_slowlog",
			"retain_rows", "retain_age_sec", "last_flush_age_sec"},
		"OBS_METRICS_HISTORY": {"at", "elapsed_us", "name", "kind", "value",
			"delta_count", "delta_sum", "p50", "p95", "p99"},
		"OBS_ALERTS": {"alert_id", "rule_id", "rule_name", "metric", "severity",
			"state", "value", "threshold", "detail", "pending_at", "firing_at", "resolved_at"},
	}
	for _, table := range []string{"OBS_METRICS", "OBS_ACTIVE_STATEMENTS", "OBS_PLAN_CACHE",
		"OBS_TABLE_STATS", "OBS_TELEMETRY", "OBS_METRICS_HISTORY", "OBS_ALERTS"} {
		cols, _ := collect(t, c, "SELECT * FROM "+table)
		if strings.Join(cols, ",") != strings.Join(want[table], ",") {
			t.Errorf("%s columns = %v, want %v", table, cols, want[table])
		}
	}
}

// TestCatalogMetricsRows: OBS_METRICS carries the engine counters, and the
// catalog's own query counter is visible through it.
func TestCatalogMetricsRows(t *testing.T) {
	c := openT(t, freshMem(t))
	_, rows := collect(t, c,
		"SELECT name, kind, value FROM OBS_METRICS WHERE name = 'obs_catalog_queries_total'")
	if len(rows) != 1 {
		t.Fatalf("obs_catalog_queries_total rows = %v", rows)
	}
	if rows[0][1] != "counter" {
		t.Fatalf("kind = %q, want counter", rows[0][1])
	}
	// The SELECT above counted itself before snapshotting the registry.
	var v float64
	fmt.Sscan(rows[0][2], &v) //nolint:errcheck // checked below
	if v < 1 {
		t.Fatalf("obs_catalog_queries_total = %v, want >= 1", rows[0][2])
	}
}

// TestCatalogActiveStatements: a running query observes itself in
// OBS_ACTIVE_STATEMENTS.
func TestCatalogActiveStatements(t *testing.T) {
	c := openT(t, freshMem(t))
	src := "SELECT statement_id, sql, kind FROM OBS_ACTIVE_STATEMENTS"
	_, rows := collect(t, c, src)
	var self bool
	for _, r := range rows {
		if strings.Contains(r[1], "OBS_ACTIVE_STATEMENTS") && r[2] == "query" {
			self = true
		}
	}
	if !self {
		t.Fatalf("querying statement not visible in OBS_ACTIVE_STATEMENTS: %v", rows)
	}
}

// TestCatalogPlanCache: per-connection cache counters surface through
// OBS_PLAN_CACHE, and repeats count as hits.
func TestCatalogPlanCache(t *testing.T) {
	c := openT(t, freshMem(t))
	if _, err := c.Exec("CREATE TABLE pc (n BIGINT)"); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		rows, err := c.Query("SELECT n FROM pc")
		if err != nil {
			t.Fatal(err)
		}
		rows.Close()
	}
	id := c.(*conn).id
	_, out := collect(t, c,
		"SELECT conn_id, entries, capacity, hits, misses FROM OBS_PLAN_CACHE WHERE conn_id = ?", id)
	if len(out) != 1 {
		t.Fatalf("OBS_PLAN_CACHE rows for conn %d = %v", id, out)
	}
	var entries, capacity, hits, misses int64
	fmt.Sscan(out[0][1], &entries)  //nolint:errcheck // asserted below
	fmt.Sscan(out[0][2], &capacity) //nolint:errcheck // asserted below
	fmt.Sscan(out[0][3], &hits)     //nolint:errcheck // asserted below
	fmt.Sscan(out[0][4], &misses)   //nolint:errcheck // asserted below
	if entries < 2 || capacity != stmtCacheMax || hits < 2 || misses < 2 {
		t.Fatalf("plan cache snapshot = entries %d capacity %d hits %d misses %d", entries, capacity, hits, misses)
	}
}

// TestCatalogMetricsHistoryRows: one scrape of the default registry lands
// in the ring and is readable through OBS_METRICS_HISTORY with its delta.
func TestCatalogMetricsHistoryRows(t *testing.T) {
	c := openT(t, freshMem(t))
	obs.Default.Counter("catalog_hist_probe_total").Inc()
	obs.DefaultHistory.Sample(obs.Default)
	_, rows := collect(t, c,
		"SELECT name, kind, value FROM OBS_METRICS_HISTORY WHERE name = 'catalog_hist_probe_total'")
	if len(rows) != 1 {
		t.Fatalf("catalog_hist_probe_total history rows = %v, want 1", rows)
	}
	if rows[0][1] != "counter" || rows[0][2] != "1" {
		t.Fatalf("history row = %v, want counter delta 1", rows[0])
	}
}

// TestCatalogAlertsRows: OBS_ALERTS projects the persisted episode table —
// empty (not an error) without the backing table, episode rows in id order
// with it.
func TestCatalogAlertsRows(t *testing.T) {
	c := openT(t, freshMem(t))
	if _, rows := collect(t, c, "SELECT * FROM OBS_ALERTS"); len(rows) != 0 {
		t.Fatalf("OBS_ALERTS without backing table = %v, want empty", rows)
	}
	if err := EnsureObservabilitySchema(c); err != nil {
		t.Fatal(err)
	}
	for i, state := range []string{"resolved", "firing"} {
		if _, err := c.Exec(`INSERT INTO PERFDMF_ALERTS
			(rule_id, rule_name, metric, severity, state, value, threshold, detail, pending_at)
			VALUES (?, ?, ?, ?, ?, ?, ?, ?, ?)`,
			int64(i+1), fmt.Sprintf("rule%d", i+1), "m_total", "warn", state,
			float64(i)+0.5, 1.0, "d", time.Now()); err != nil {
			t.Fatal(err)
		}
	}
	_, rows := collect(t, c, "SELECT rule_name, state, severity FROM OBS_ALERTS")
	if len(rows) != 2 {
		t.Fatalf("OBS_ALERTS rows = %v, want 2", rows)
	}
	if rows[0][0] != "rule1" || rows[0][1] != "resolved" || rows[1][1] != "firing" {
		t.Fatalf("OBS_ALERTS projection = %v, want episodes in id order", rows)
	}
}

// TestAnalyzeFixture is the acceptance fixture: ANALYZE over a table with
// known duplicates and NULLs must produce exact row counts, NDVs, null
// fractions and min/max per column in OBS_TABLE_STATS.
func TestAnalyzeFixture(t *testing.T) {
	c := openT(t, freshMem(t))
	if _, err := c.Exec("CREATE TABLE fix (id BIGINT PRIMARY KEY AUTO_INCREMENT, name VARCHAR, v BIGINT)"); err != nil {
		t.Fatal(err)
	}
	for _, r := range []struct {
		name any
		v    int64
	}{
		{"a", 10}, {"b", 20}, {"b", 20}, {"c", 30}, {nil, 40},
	} {
		if _, err := c.Exec("INSERT INTO fix (name, v) VALUES (?, ?)", r.name, r.v); err != nil {
			t.Fatal(err)
		}
	}
	res, err := c.Exec("ANALYZE fix")
	if err != nil {
		t.Fatal(err)
	}
	if res.RowsAffected != 3 { // one stats row per column
		t.Fatalf("ANALYZE fix affected %d rows, want 3", res.RowsAffected)
	}

	_, rows := collect(t, c, `SELECT column_name, row_count, ndv, null_frac, min_value, max_value, stale
		FROM OBS_TABLE_STATS WHERE table_name = 'fix' ORDER BY column_name`)
	want := [][]string{
		{"id", "5", "5", "0", "1", "5", "false"},
		{"name", "5", "3", "0.2", "a", "c", "false"},
		{"v", "5", "4", "0", "10", "40", "false"},
	}
	if len(rows) != len(want) {
		t.Fatalf("stats rows = %v", rows)
	}
	for i := range want {
		if strings.Join(rows[i], "|") != strings.Join(want[i], "|") {
			t.Errorf("stats[%d] = %v, want %v", i, rows[i], want[i])
		}
	}
}

// TestAnalyzeStaleness: stats go stale when the table drifts and fresh
// after re-ANALYZE; bare ANALYZE covers every user table.
func TestAnalyzeStaleness(t *testing.T) {
	c := openT(t, freshMem(t))
	if _, err := c.Exec("CREATE TABLE drift (n BIGINT)"); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Exec("INSERT INTO drift (n) VALUES (?)", 1); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Exec("ANALYZE"); err != nil {
		t.Fatal(err)
	}
	stale := func() string {
		_, rows := collect(t, c,
			"SELECT stale, row_count, live_rows FROM OBS_TABLE_STATS WHERE table_name = 'drift'")
		if len(rows) != 1 {
			t.Fatalf("drift stats = %v", rows)
		}
		return strings.Join(rows[0], "|")
	}
	if got := stale(); got != "false|1|1" {
		t.Fatalf("fresh stats = %s", got)
	}
	if _, err := c.Exec("INSERT INTO drift (n) VALUES (?)", 2); err != nil {
		t.Fatal(err)
	}
	if got := stale(); got != "true|1|2" {
		t.Fatalf("post-insert stats = %s", got)
	}
	if _, err := c.Exec("ANALYZE drift"); err != nil {
		t.Fatal(err)
	}
	if got := stale(); got != "false|2|2" {
		t.Fatalf("re-analyzed stats = %s", got)
	}
}

// TestAnalyzeErrors: unknown tables and the stats table itself are
// rejected.
func TestAnalyzeErrors(t *testing.T) {
	c := openT(t, freshMem(t))
	if _, err := c.Exec("ANALYZE nosuch"); err == nil {
		t.Error("ANALYZE of a missing table succeeded")
	}
	if _, err := c.Exec("ANALYZE PERFDMF_TABLE_STATS"); err == nil {
		t.Error("ANALYZE of the stats table succeeded")
	}
}

// TestKillSQLErrors: KILL of an unknown or non-integer statement id fails
// cleanly.
func TestKillSQLErrors(t *testing.T) {
	c := openT(t, freshMem(t))
	if _, err := c.Exec("KILL ?", int64(1)<<60); err == nil {
		t.Error("KILL of unknown id succeeded")
	}
	if _, err := c.Exec("KILL ?", "abc"); err == nil {
		t.Error("KILL of string id succeeded")
	}
	// Built non-constant so the sqlcheck analyzer skips the intentionally
	// invalid statement.
	ident := "abc"
	if _, err := c.Exec("KILL " + ident); err == nil {
		t.Error("KILL abc parsed")
	}
}

// TestKillLongRunningStatement is the end-to-end acceptance test: a second
// connection kills a long scan via SQL KILL, and the victim unwinds with
// ErrStatementKilled without returning rows. Runs under -race.
func TestKillLongRunningStatement(t *testing.T) {
	dsn := freshMem(t)
	victim := openT(t, dsn)
	killer := openT(t, dsn)
	if _, err := victim.Exec("CREATE TABLE big (id BIGINT PRIMARY KEY AUTO_INCREMENT, n BIGINT)"); err != nil {
		t.Fatal(err)
	}
	// Seed through the engine directly; 300k single-row INSERTs through the
	// driver would dominate the test's runtime.
	db := victim.(*conn).db
	if err := db.Write(func(tx *reldb.Tx) error {
		for i := 0; i < 300_000; i++ {
			if _, err := tx.Insert("big", reldb.Row{reldb.Null, reldb.Int(int64(i))}); err != nil {
				return err
			}
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}

	const victimSQL = "SELECT id FROM big WHERE n * 7 - 3 > 0"
	for attempt := 0; attempt < 20; attempt++ {
		type outcome struct {
			rows Rows
			err  error
		}
		done := make(chan outcome, 1)
		go func() {
			rows, err := victim.Query(victimSQL)
			done <- outcome{rows, err}
		}()

		// Find the victim in the live registry once it is scanning.
		var id int64
	poll:
		for {
			select {
			case o := <-done:
				if o.err != nil {
					t.Fatalf("unkilled query failed: %v", o.err)
				}
				o.rows.Close()
				id = 0
				break poll
			default:
			}
			for _, si := range ActiveStatements() {
				if si.SQL == victimSQL && si.RowsScanned > 0 {
					id = si.ID
					break poll
				}
			}
			runtime.Gosched()
		}
		if id == 0 {
			continue // finished before we saw it scanning; retry
		}
		if _, err := killer.Exec("KILL ?", id); err != nil {
			// Lost the race between snapshot and kill.
			o := <-done
			if o.err == nil {
				o.rows.Close()
			}
			continue
		}
		o := <-done
		if o.err == nil {
			// KILL raced with completion: the statement finished before the
			// cancellation could be observed. Retry for a mid-scan kill.
			o.rows.Close()
			continue
		}
		if !errors.Is(o.err, sqlexec.ErrStatementKilled) {
			t.Fatalf("killed query returned %v, want ErrStatementKilled", o.err)
		}
		if o.rows != nil {
			t.Fatal("killed query returned a partial result set")
		}
		return
	}
	t.Fatal("query finished before KILL could land in 20 attempts")
}
