package godbc

import (
	"fmt"
	"testing"
	"time"

	"perfdmf/internal/obs"
)

// TestAlertRuleRoundTrip: AddAlertRule creates the schema on first use,
// fills defaults, and LoadAlertRules returns the decoded rule.
func TestAlertRuleRoundTrip(t *testing.T) {
	c := openT(t, freshMem(t))
	id, err := AddAlertRule(c, obs.AlertRule{Name: "r1", Metric: "godbc_exec_total", Threshold: 5})
	if err != nil {
		t.Fatal(err)
	}
	if id == 0 {
		t.Fatal("AddAlertRule returned id 0")
	}
	id2, err := AddAlertRule(c, obs.AlertRule{
		Name: "r2", Metric: "wal_pending", Kind: obs.AlertKindAnomaly,
		Agg: "last", ZScore: 4, Window: 30 * time.Second, For: 10 * time.Second,
		Severity: "critical",
	})
	if err != nil {
		t.Fatal(err)
	}
	rules, err := LoadAlertRules(c)
	if err != nil {
		t.Fatal(err)
	}
	if len(rules) != 2 || rules[0].ID != id || rules[1].ID != id2 {
		t.Fatalf("LoadAlertRules = %+v, want the two rules in id order", rules)
	}
	// Defaults filled on insert.
	if r := rules[0]; r.Kind != obs.AlertKindThreshold || r.Window != obs.DefaultAlertWindow || r.Severity != "warn" {
		t.Fatalf("defaults not applied: %+v", r)
	}
	if r := rules[1]; r.Window != 30*time.Second || r.For != 10*time.Second || r.ZScore != 4 {
		t.Fatalf("explicit fields lost: %+v", r)
	}

	// A rule without identity is rejected before touching the table.
	if _, err := AddAlertRule(c, obs.AlertRule{Metric: "x"}); err == nil {
		t.Fatal("nameless rule accepted")
	}

	// A database without the table simply has no rules.
	c2 := openT(t, freshMem(t))
	if rules, err := LoadAlertRules(c2); err != nil || rules != nil {
		t.Fatalf("fresh db rules = %v, %v; want nil, nil", rules, err)
	}
}

// pollSQL keeps evaluating query until pred accepts the first row's first
// value, or the deadline lapses.
func pollSQL(t *testing.T, c Conn, deadline time.Duration, query string, pred func(v any) bool, busy func()) bool {
	t.Helper()
	end := time.Now().Add(deadline)
	for time.Now().Before(end) {
		if busy != nil {
			busy()
		}
		rows, err := c.Query(query)
		if err != nil {
			t.Fatal(err)
		}
		var v any
		if rows.Next() {
			v = rows.Value(0)
		}
		rows.Close()
		if pred(v) {
			return true
		}
		time.Sleep(5 * time.Millisecond)
	}
	return false
}

// TestContinuousObservabilityEndToEnd drives the whole continuous layer
// against a real store: the scrape loop persists metric history, a
// threshold rule walks pending→firing under load and resolves when the
// load stops, and the episode's single PERFDMF_ALERTS row carries all three
// timestamps.
func TestContinuousObservabilityEndToEnd(t *testing.T) {
	dsn := freshMem(t)
	c := openT(t, dsn)
	mustExec(t, c, "CREATE TABLE workload (id BIGINT PRIMARY KEY AUTO_INCREMENT, v BIGINT)")

	// rate(godbc_exec_total) > 1/s, held 30ms before firing, over a window
	// short enough that going idle resolves within a few hundred ms.
	if _, err := AddAlertRule(c, obs.AlertRule{
		Name: "exec-rate", Metric: "godbc_exec_total", Op: "gt", Threshold: 1,
		Window: 150 * time.Millisecond, For: 30 * time.Millisecond, Severity: "critical",
	}); err != nil {
		t.Fatal(err)
	}

	st, err := OpenTelemetryStore(dsn, TelemetryOptions{HistoryEvery: 10 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	if !st.historyEnabled() {
		t.Fatal("history not enabled despite HistoryEvery")
	}

	// Keep the exec counter moving until the rule fires.
	n := int64(0)
	busy := func() {
		for i := 0; i < 5; i++ {
			n++
			mustExec(t, c, "INSERT INTO workload (v) VALUES (?)", n)
		}
	}
	if !pollSQL(t, c, 10*time.Second,
		"SELECT COUNT(*) FROM PERFDMF_ALERTS WHERE rule_name = 'exec-rate' AND state = 'firing'",
		func(v any) bool { cnt, _ := v.(int64); return cnt >= 1 }, busy) {
		t.Fatal("alert never reached firing under sustained load")
	}

	// Load stops; the window drains to rate 0 and the episode resolves.
	if !pollSQL(t, c, 10*time.Second,
		"SELECT COUNT(*) FROM PERFDMF_ALERTS WHERE rule_name = 'exec-rate' AND state = 'resolved'",
		func(v any) bool { cnt, _ := v.(int64); return cnt >= 1 }, nil) {
		t.Fatal("alert never resolved after load stopped")
	}

	// One row tells the whole story: all three timestamps on one episode.
	rows, err := c.Query(`SELECT pending_at, firing_at, resolved_at FROM PERFDMF_ALERTS
		WHERE rule_name = 'exec-rate' AND state = 'resolved'`)
	if err != nil {
		t.Fatal(err)
	}
	defer rows.Close()
	if !rows.Next() {
		t.Fatal("resolved episode row missing")
	}
	var pendingAt, firingAt, resolvedAt time.Time
	if err := rows.Scan(&pendingAt, &firingAt, &resolvedAt); err != nil {
		t.Fatal(err)
	}
	if pendingAt.IsZero() || firingAt.IsZero() || resolvedAt.IsZero() {
		t.Fatalf("episode timestamps incomplete: pending=%v firing=%v resolved=%v",
			pendingAt, firingAt, resolvedAt)
	}
	if firingAt.Before(pendingAt) || resolvedAt.Before(firingAt) {
		t.Fatalf("episode timestamps out of order: pending=%v firing=%v resolved=%v",
			pendingAt, firingAt, resolvedAt)
	}

	// The scrape loop also persisted delta-encoded metric history, and the
	// store's own history INSERTs ran quiet — godbc_exec_total's persisted
	// deltas must stay far below the row count of the history table itself
	// (self-observation would make them track each other).
	rows2, err := c.Query("SELECT COUNT(*) FROM PERFDMF_METRICS_HISTORY WHERE name = 'godbc_exec_total'")
	if err != nil {
		t.Fatal(err)
	}
	defer rows2.Close()
	if !rows2.Next() {
		t.Fatal("no count row")
	}
	var histRows int64
	if err := rows2.Scan(&histRows); err != nil {
		t.Fatal(err)
	}
	if histRows == 0 {
		t.Fatal("no godbc_exec_total history persisted")
	}

	// Store-level surface: LastScrape is fresh, the snapshot knows the rule.
	if st.LastScrape().IsZero() {
		t.Fatal("LastScrape still zero after scraping")
	}
	snap := st.AlertsSnapshot()
	if len(snap) != 1 || snap[0].RuleName != "exec-rate" {
		t.Fatalf("AlertsSnapshot = %+v, want the one rule", snap)
	}
}

// TestAlertEpisodeRestore: an open episode a previous process left in
// PERFDMF_ALERTS is adopted by a new store and resolved against the same
// row once the predicate no longer holds.
func TestAlertEpisodeRestore(t *testing.T) {
	dsn := freshMem(t)
	c := openT(t, dsn)
	if err := EnsureObservabilitySchema(c); err != nil {
		t.Fatal(err)
	}
	ruleID, err := AddAlertRule(c, obs.AlertRule{
		Name: "orphan", Metric: "godbc_exec_total", Op: "gt", Threshold: 1e12,
		Window: 100 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	// The "crashed process" left a firing episode behind.
	res, err := c.Exec(`INSERT INTO PERFDMF_ALERTS
		(rule_id, rule_name, metric, severity, state, value, threshold, detail, pending_at, firing_at)
		VALUES (?, ?, ?, ?, ?, ?, ?, ?, ?, ?)`,
		ruleID, "orphan", "godbc_exec_total", "warn", obs.AlertStateFiring,
		9.9, 1e12, "inherited", time.Now().Add(-time.Minute), time.Now().Add(-time.Minute))
	if err != nil {
		t.Fatal(err)
	}
	episodeID := res.LastInsertID

	st, err := OpenTelemetryStore(dsn, TelemetryOptions{HistoryEvery: 10 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()

	// An idle process cannot breach a 1e12 threshold: the inherited episode
	// must resolve in place.
	if !pollSQL(t, c, 10*time.Second,
		fmt.Sprintf("SELECT state FROM PERFDMF_ALERTS WHERE alert_id = %d", episodeID),
		func(v any) bool { s, _ := v.(string); return s == obs.AlertStateResolved }, nil) {
		t.Fatal("inherited episode never resolved")
	}
	// No second row was opened for the same episode.
	rows, err := c.Query("SELECT COUNT(*) FROM PERFDMF_ALERTS")
	if err != nil {
		t.Fatal(err)
	}
	defer rows.Close()
	rows.Next()
	var cnt int64
	if err := rows.Scan(&cnt); err != nil {
		t.Fatal(err)
	}
	if cnt != 1 {
		t.Fatalf("PERFDMF_ALERTS has %d rows, want the 1 inherited episode", cnt)
	}
}
