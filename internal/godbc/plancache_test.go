package godbc

import (
	"fmt"
	"strings"
	"testing"

	"perfdmf/internal/obs"
)

func counter(name string) int64 { return obs.Default.Counter(name).Value() }

// queryAll drains a query into ([][]any, cols).
func queryAll(t *testing.T, c Conn, q string, args ...any) ([]string, [][]any) {
	t.Helper()
	rows, err := c.Query(q, args...)
	if err != nil {
		t.Fatalf("%s: %v", q, err)
	}
	defer rows.Close()
	cols := rows.Columns()
	var out [][]any
	for rows.Next() {
		r := make([]any, len(cols))
		for i := range r {
			r[i] = rows.Value(i)
		}
		out = append(out, r)
	}
	if err := rows.Err(); err != nil {
		t.Fatalf("%s: %v", q, err)
	}
	return cols, out
}

// TestStatementCacheHits proves the statement cache short-circuits parsing:
// the first execution of a text is a miss, every repeat on the same
// connection is a hit, and the hit/miss counters move accordingly.
func TestStatementCacheHits(t *testing.T) {
	c := openT(t, freshMem(t))
	mustExec(t, c, "CREATE TABLE t (id BIGINT PRIMARY KEY, v BIGINT)")
	for i := 0; i < 5; i++ {
		mustExec(t, c, "INSERT INTO t (id, v) VALUES (?, ?)", i, i*10)
	}

	const q = "SELECT v FROM t WHERE id = ?"
	misses0, hits0 := counter("sqlexec_plan_cache_misses_total"), counter("sqlexec_plan_cache_hits_total")
	if _, rows := queryAll(t, c, q, 3); len(rows) != 1 || rows[0][0].(int64) != 30 {
		t.Fatalf("first run: %v", rows)
	}
	if d := counter("sqlexec_plan_cache_misses_total") - misses0; d != 1 {
		t.Fatalf("misses after first run = %d, want 1", d)
	}
	for i := 0; i < 4; i++ {
		queryAll(t, c, q, 3)
	}
	if d := counter("sqlexec_plan_cache_hits_total") - hits0; d != 4 {
		t.Fatalf("hits after repeats = %d, want 4", d)
	}
	// The INSERT text was also cached: repeating it is a hit, not a reparse.
	hits1 := counter("sqlexec_plan_cache_hits_total")
	mustExec(t, c, "INSERT INTO t (id, v) VALUES (?, ?)", 99, 990)
	if d := counter("sqlexec_plan_cache_hits_total") - hits1; d != 1 {
		t.Fatalf("repeated INSERT text not served from cache (hit delta %d)", d)
	}
}

// TestPreparedPlanInvalidation is the stale-schema proof: ALTER TABLE after
// Prepare must invalidate the cached plan, so the prepared statement sees
// the new schema (never results shaped by the old one).
func TestPreparedPlanInvalidation(t *testing.T) {
	c := openT(t, freshMem(t))
	mustExec(t, c, "CREATE TABLE t (id BIGINT PRIMARY KEY, v BIGINT)")
	mustExec(t, c, "INSERT INTO t (id, v) VALUES (1, 10), (2, 20)")

	st, err := c.Prepare("SELECT * FROM t WHERE id = ?")
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()

	rows, err := st.Query(1)
	if err != nil {
		t.Fatal(err)
	}
	if got := rows.Columns(); len(got) != 2 {
		t.Fatalf("pre-ALTER columns: %v", got)
	}
	rows.Close()

	mustExec(t, c, "ALTER TABLE t ADD COLUMN note VARCHAR DEFAULT 'x'")

	inval0 := counter("sqlexec_plan_cache_invalidations_total")
	rows, err = st.Query(1)
	if err != nil {
		t.Fatal(err)
	}
	cols := rows.Columns()
	if len(cols) != 3 || cols[2] != "note" {
		t.Fatalf("post-ALTER columns = %v, want stale plan replaced by 3-column schema", cols)
	}
	if !rows.Next() {
		t.Fatal("no row")
	}
	if got := rows.Value(2); got != "x" {
		t.Fatalf("new column value = %v, want default 'x'", got)
	}
	rows.Close()
	if d := counter("sqlexec_plan_cache_invalidations_total") - inval0; d < 1 {
		t.Fatalf("invalidation counter did not move (delta %d)", d)
	}
}

// TestPreparedPlanTracksIndexDDL: a prepared statement's memoized access
// path must follow CREATE INDEX / DROP INDEX issued after Prepare.
func TestPreparedPlanTracksIndexDDL(t *testing.T) {
	c := openT(t, freshMem(t))
	mustExec(t, c, "CREATE TABLE t (id BIGINT PRIMARY KEY, tag BIGINT, v BIGINT)")
	for i := 0; i < 50; i++ {
		mustExec(t, c, "INSERT INTO t (id, tag, v) VALUES (?, ?, ?)", i, i%7, i*3)
	}

	st, err := c.Prepare("SELECT v FROM t WHERE tag = ? ORDER BY v")
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	drain := func() int {
		t.Helper()
		rows, err := st.Query(3)
		if err != nil {
			t.Fatal(err)
		}
		defer rows.Close()
		n := 0
		for rows.Next() {
			n++
		}
		return n
	}

	want := drain() // full scan: memoizes the full-scan decision
	reuse0 := counter("sqlexec_access_plan_reuse_total")
	if got := drain(); got != want {
		t.Fatalf("repeat run rows = %d, want %d", got, want)
	}
	if d := counter("sqlexec_access_plan_reuse_total") - reuse0; d < 1 {
		t.Fatalf("memoized access path not reused (delta %d)", d)
	}

	// An index created after Prepare must be picked up (schema version bump
	// invalidates the full-scan memo and the replan finds the index).
	mustExec(t, c, "CREATE INDEX ix_tag ON t (tag)")
	idx0 := counter("sqlexec_index_access_total")
	if got := drain(); got != want {
		t.Fatalf("post-CREATE INDEX rows = %d, want %d", got, want)
	}
	if d := counter("sqlexec_index_access_total") - idx0; d < 1 {
		t.Fatal("prepared statement did not switch to the new index")
	}

	// Dropping it must not leave the plan pointing at a dead index.
	mustExec(t, c, "DROP INDEX ix_tag ON t")
	if got := drain(); got != want {
		t.Fatalf("post-DROP INDEX rows = %d, want %d", got, want)
	}
}

// TestWorkersDSNOption pins the ?workers=N contract: strict validation at
// Open, and accepted values execute queries correctly.
func TestWorkersDSNOption(t *testing.T) {
	for _, bad := range []string{"workers=abc", "workers=-1", "workers=1.5", "workers="} {
		if _, err := Open(fmt.Sprintf("mem:workers_bad?%s", bad)); err == nil {
			t.Errorf("DSN option %q accepted, want error", bad)
		} else if !strings.Contains(err.Error(), "workers") {
			t.Errorf("DSN option %q: error %v does not name the option", bad, err)
		}
	}

	name := freshMem(t)
	seed := openT(t, name)
	mustExec(t, seed, "CREATE TABLE t (id BIGINT PRIMARY KEY, v BIGINT)")
	for i := 0; i < 10; i++ {
		mustExec(t, seed, "INSERT INTO t (id, v) VALUES (?, ?)", i, i)
	}
	for _, opt := range []string{"workers=0", "workers=1", "workers=8"} {
		c := openT(t, name+"?"+opt)
		_, rows := queryAll(t, c, "SELECT COUNT(*) FROM t")
		if len(rows) != 1 || rows[0][0].(int64) != 10 {
			t.Errorf("%s: COUNT = %v", opt, rows)
		}
	}
}

// TestStatementCacheEviction fills the FIFO past its bound and checks the
// cache still serves correct results (evicted texts simply reparse).
func TestStatementCacheEviction(t *testing.T) {
	c := openT(t, freshMem(t))
	mustExec(t, c, "CREATE TABLE t (id BIGINT PRIMARY KEY)")
	mustExec(t, c, "INSERT INTO t (id) VALUES (7)")
	for i := 0; i < stmtCacheMax+10; i++ {
		// Distinct texts so each occupies a cache slot.
		_, rows := queryAll(t, c, fmt.Sprintf("SELECT id FROM t WHERE id = %d", i))
		if i == 7 && len(rows) != 1 {
			t.Fatalf("query 7: %v", rows)
		}
	}
	cc := c.(*conn)
	if n := len(cc.cache.entries); n > stmtCacheMax {
		t.Fatalf("cache grew past bound: %d entries", n)
	}
	// The earliest text was evicted; re-running it still works.
	if _, rows := queryAll(t, c, "SELECT id FROM t WHERE id = 7"); len(rows) != 1 {
		t.Fatalf("evicted text rerun: %v", rows)
	}
}
