package godbc

import (
	"strings"
	"testing"
	"time"

	"perfdmf/internal/obs"
)

// hasColumn reports through the connection's MetaData whether table has a
// column named col — the same discovery path the migration itself uses.
func hasColumn(t *testing.T, c Conn, table, col string) bool {
	t.Helper()
	cols, err := c.MetaData().Columns(table)
	if err != nil {
		t.Fatalf("MetaData().Columns(%s): %v", table, err)
	}
	for _, cl := range cols {
		if strings.EqualFold(cl.Name, col) {
			return true
		}
	}
	return false
}

// TestTelemetrySchemaMigration is the upgrade-path regression: an archive
// whose PERFDMF_SPANS was written before the span-tree columns existed
// must be migrated in place by OpenTelemetryStore (ALTER TABLE driven by
// MetaData), with the legacy rows surviving and reading back as
// NULL-parented roots next to newly-written tree rows.
func TestTelemetrySchemaMigration(t *testing.T) {
	dsn := "mem:telemetry_migrate"

	// Recreate the pre-migration world: the original DDL, one span row
	// written by the old code (no parent_span_id, no root_op).
	c, err := Open(dsn)
	if err != nil {
		t.Fatal(err)
	}
	for _, ddl := range telemetryDDL {
		if _, err := c.Exec(ddl); err != nil {
			t.Fatal(err)
		}
	}
	legacyID := int64(7)
	if _, err := c.Exec(
		`INSERT INTO PERFDMF_SPANS (span_id, kind, op, statement, dur_us) VALUES (?, ?, ?, ?, ?)`,
		legacyID, "exec", "INSERT", "INSERT INTO workload ...", int64(1234),
	); err != nil {
		t.Fatal(err)
	}
	if hasColumn(t, c, SpansTable, "parent_span_id") {
		t.Fatal("fresh base schema already has parent_span_id; migration test is vacuous")
	}
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}

	// Opening the store migrates the schema and seeds span ids above the
	// legacy maximum.
	st, err := OpenTelemetryStore(dsn, TelemetryOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()

	c2, err := Open(dsn)
	if err != nil {
		t.Fatal(err)
	}
	defer c2.Close()
	for _, m := range telemetryMigrations {
		if !hasColumn(t, c2, m.table, m.column) {
			t.Errorf("migration did not add %s.%s", m.table, m.column)
		}
	}
	if id := obs.NextSpanID(); id <= legacyID {
		t.Errorf("span ids not seeded past persisted max: next=%d", id)
	}

	// New rows written through the migrated store coexist with the legacy
	// row; a zero ParentID persists as NULL just like pre-migration rows.
	childID := legacyID + 100
	if err := st.Store([]obs.SinkEntry{
		{Span: &obs.Span{ID: childID, ParentID: legacyID, Root: "upload:mig", Kind: "exec",
			Statement: "INSERT INTO workload ...", Start: time.Now(), Total: time.Millisecond}},
		{Span: &obs.Span{ID: childID + 1, Root: "upload:mig", Kind: "upload", Name: "upload:mig",
			Start: time.Now(), Total: time.Millisecond}},
	}); err != nil {
		t.Fatal(err)
	}
	if err := st.Flush(); err != nil { // writer barrier: make the group commit visible
		t.Fatal(err)
	}

	rows, err := c2.Query("SELECT span_id, parent_span_id FROM PERFDMF_SPANS")
	if err != nil {
		t.Fatal(err)
	}
	defer rows.Close()
	parents := map[int64]any{}
	for rows.Next() {
		id, _ := rows.Value(0).(int64)
		parents[id] = rows.Value(1)
	}
	if err := rows.Err(); err != nil {
		t.Fatal(err)
	}
	if len(parents) != 3 {
		t.Fatalf("got %d span rows, want 3 (legacy + 2 new): %v", len(parents), parents)
	}
	if parents[legacyID] != nil {
		t.Errorf("legacy row parent_span_id = %v, want NULL", parents[legacyID])
	}
	if got, _ := parents[childID].(int64); got != legacyID {
		t.Errorf("new child parent_span_id = %v, want %d", parents[childID], legacyID)
	}
	if parents[childID+1] != nil {
		t.Errorf("new root parent_span_id = %v, want NULL", parents[childID+1])
	}

	// The trace reader's contract: NULL parents become roots, real parents
	// become edges — the legacy row is a root with the new child under it.
	spans := []*obs.Span{
		{ID: legacyID},
		{ID: childID, ParentID: legacyID},
		{ID: childID + 1},
	}
	trees := obs.BuildTrees(spans)
	if len(trees) != 2 {
		t.Fatalf("got %d roots, want 2", len(trees))
	}
	if trees[0].ID != legacyID || len(trees[0].Children) != 1 || trees[0].Children[0].ID != childID {
		t.Errorf("legacy root did not adopt migrated child: %+v", trees[0])
	}
}
