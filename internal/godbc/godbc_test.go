package godbc

import (
	"fmt"
	"strings"
	"testing"
	"time"
)

var memCounter int

// freshMem returns a DSN for a brand-new shared in-memory database.
func freshMem(t *testing.T) string {
	t.Helper()
	memCounter++
	return fmt.Sprintf("mem:godbc_test_%s_%d", t.Name(), memCounter)
}

func openT(t *testing.T, dsn string) Conn {
	t.Helper()
	c, err := Open(dsn)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })
	return c
}

func TestOpenErrors(t *testing.T) {
	if _, err := Open("nocolon"); err == nil {
		t.Error("malformed DSN accepted")
	}
	if _, err := Open("oracle:whatever"); err == nil {
		t.Error("unknown driver accepted")
	}
	if _, err := Open("file:"); err == nil {
		t.Error("empty file path accepted")
	}
	if _, err := Open("file:/tmp/x?checkpoint=abc"); err == nil {
		t.Error("bad option accepted")
	}
}

func TestExecQueryScan(t *testing.T) {
	c := openT(t, freshMem(t))
	if _, err := c.Exec(`CREATE TABLE m (id BIGINT PRIMARY KEY AUTO_INCREMENT,
		name VARCHAR, val DOUBLE, ok BOOLEAN, at TIMESTAMP)`); err != nil {
		t.Fatal(err)
	}
	when := time.Date(2005, 8, 1, 0, 0, 0, 0, time.UTC)
	res, err := c.Exec("INSERT INTO m (name, val, ok, at) VALUES (?, ?, ?, ?)",
		"TIME", 1.25, true, when)
	if err != nil {
		t.Fatal(err)
	}
	if res.RowsAffected != 1 || res.LastInsertID != 1 {
		t.Fatalf("result: %+v", res)
	}
	rows, err := c.Query("SELECT id, name, val, ok, at FROM m WHERE id = ?", 1)
	if err != nil {
		t.Fatal(err)
	}
	defer rows.Close()
	if got := rows.Columns(); len(got) != 5 || got[1] != "name" {
		t.Fatalf("columns: %v", got)
	}
	if !rows.Next() {
		t.Fatal("no row")
	}
	var (
		id   int64
		name string
		val  float64
		ok   bool
		at   time.Time
	)
	if err := rows.Scan(&id, &name, &val, &ok, &at); err != nil {
		t.Fatal(err)
	}
	if id != 1 || name != "TIME" || val != 1.25 || !ok || !at.Equal(when) {
		t.Fatalf("scanned: %d %s %g %v %v", id, name, val, ok, at)
	}
	if rows.Next() {
		t.Fatal("extra row")
	}
}

func TestScanErrors(t *testing.T) {
	c := openT(t, freshMem(t))
	c.Exec("CREATE TABLE t (a BIGINT)")
	c.Exec("INSERT INTO t VALUES (1)")
	rows, _ := c.Query("SELECT a FROM t")
	var x int64
	if err := rows.Scan(&x); err == nil {
		t.Error("Scan before Next should fail")
	}
	rows.Next()
	var y, z int64
	if err := rows.Scan(&y, &z); err == nil {
		t.Error("wrong arity should fail")
	}
	var ch chan int
	if err := rows.Scan(&ch); err == nil {
		t.Error("unsupported dest should fail")
	}
}

func TestPreparedStatements(t *testing.T) {
	c := openT(t, freshMem(t))
	c.Exec("CREATE TABLE t (id BIGINT PRIMARY KEY AUTO_INCREMENT, n BIGINT)")
	ins, err := c.Prepare("INSERT INTO t (n) VALUES (?)")
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100; i++ {
		if _, err := ins.Exec(i * i); err != nil {
			t.Fatal(err)
		}
	}
	ins.Close()
	if _, err := ins.Exec(1); err == nil {
		t.Error("closed statement usable")
	}
	sel, err := c.Prepare("SELECT COUNT(*) FROM t WHERE n >= ?")
	if err != nil {
		t.Fatal(err)
	}
	rows, err := sel.Query(50 * 50)
	if err != nil {
		t.Fatal(err)
	}
	rows.Next()
	var n int64
	rows.Scan(&n)
	if n != 50 {
		t.Fatalf("count = %d", n)
	}
}

func TestTransactions(t *testing.T) {
	c := openT(t, freshMem(t))
	c.Exec("CREATE TABLE t (a BIGINT)")
	if err := c.Begin(); err != nil {
		t.Fatal(err)
	}
	if err := c.Begin(); err == nil {
		t.Error("nested Begin allowed")
	}
	c.Exec("INSERT INTO t VALUES (1)")
	// Queries inside the transaction see its writes.
	rows, err := c.Query("SELECT COUNT(*) FROM t")
	if err != nil {
		t.Fatal(err)
	}
	rows.Next()
	var n int64
	rows.Scan(&n)
	if n != 1 {
		t.Fatalf("in-tx count = %d", n)
	}
	if err := c.Rollback(); err != nil {
		t.Fatal(err)
	}
	rows, _ = c.Query("SELECT COUNT(*) FROM t")
	rows.Next()
	rows.Scan(&n)
	if n != 0 {
		t.Fatalf("post-rollback count = %d", n)
	}
	// SQL-level transaction control.
	c.Exec("BEGIN")
	c.Exec("INSERT INTO t VALUES (2)")
	c.Exec("COMMIT")
	rows, _ = c.Query("SELECT COUNT(*) FROM t")
	rows.Next()
	rows.Scan(&n)
	if n != 1 {
		t.Fatalf("post-commit count = %d", n)
	}
	if err := c.Commit(); err == nil {
		t.Error("Commit without Begin allowed")
	}
}

// TestTryBegin pins the non-blocking transaction contract the telemetry
// writer depends on: ok=false (no error) while another connection holds
// the engine's write lock, ok=true once it is released, and the same
// refusals as Begin for read-only connections and open transactions.
func TestTryBegin(t *testing.T) {
	dsn := freshMem(t)
	c1 := openT(t, dsn)
	c2 := openT(t, dsn)
	c1.Exec("CREATE TABLE t (a BIGINT)")

	trier, ok := c2.(TxTrier)
	if !ok {
		t.Fatal("built-in connection does not implement TxTrier")
	}

	// Uncontended: TryBegin opens a real transaction.
	if ok, err := trier.TryBegin(); err != nil || !ok {
		t.Fatalf("uncontended TryBegin = (%v, %v), want (true, nil)", ok, err)
	}
	if _, err := c2.Exec("INSERT INTO t VALUES (1)"); err != nil {
		t.Fatal(err)
	}
	// A transaction is already open on this connection: refused with error,
	// exactly like Begin.
	if ok, err := trier.TryBegin(); err == nil || ok {
		t.Fatalf("TryBegin inside open tx = (%v, %v), want (false, error)", ok, err)
	}
	if err := c2.Commit(); err != nil {
		t.Fatal(err)
	}

	// Contended: c1 holds the write lock; TryBegin yields instead of
	// queueing, with no error.
	if err := c1.Begin(); err != nil {
		t.Fatal(err)
	}
	if ok, err := trier.TryBegin(); err != nil || ok {
		t.Fatalf("contended TryBegin = (%v, %v), want (false, nil)", ok, err)
	}
	if err := c1.Commit(); err != nil {
		t.Fatal(err)
	}
	if ok, err := trier.TryBegin(); err != nil || !ok {
		t.Fatalf("TryBegin after release = (%v, %v), want (true, nil)", ok, err)
	}
	if err := c2.Rollback(); err != nil {
		t.Fatal(err)
	}

	// Read-only connections refuse transactions outright.
	ro := openT(t, dsn+"?readonly=1")
	if ok, err := ro.(TxTrier).TryBegin(); err == nil || ok {
		t.Fatalf("read-only TryBegin = (%v, %v), want (false, error)", ok, err)
	}

	// The blocking fallback: TryBeginConn on a Conn without TxTrier (or
	// with it, here) still lands a transaction.
	if ok, err := TryBeginConn(c2); err != nil || !ok {
		t.Fatalf("TryBeginConn = (%v, %v), want (true, nil)", ok, err)
	}
	if err := c2.Rollback(); err != nil {
		t.Fatal(err)
	}
}

func TestSharedMemoryDatabase(t *testing.T) {
	dsn := freshMem(t)
	c1 := openT(t, dsn)
	c2 := openT(t, dsn)
	c1.Exec("CREATE TABLE t (a BIGINT)")
	c1.Exec("INSERT INTO t VALUES (42)")
	rows, err := c2.Query("SELECT a FROM t")
	if err != nil {
		t.Fatal(err)
	}
	if !rows.Next() {
		t.Fatal("second connection does not see shared data")
	}
}

func TestFileDriverDurability(t *testing.T) {
	dir := t.TempDir()
	dsn := "file:" + dir
	c := openT(t, dsn)
	c.Exec("CREATE TABLE t (a BIGINT)")
	c.Exec("INSERT INTO t VALUES (7)")
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}
	c2 := openT(t, dsn)
	rows, err := c2.Query("SELECT a FROM t")
	if err != nil {
		t.Fatal(err)
	}
	if !rows.Next() {
		t.Fatal("data lost across reopen")
	}
	var a int64
	rows.Scan(&a)
	if a != 7 {
		t.Fatalf("a = %d", a)
	}
}

func TestFileDriverSharedHandle(t *testing.T) {
	dir := t.TempDir()
	dsn := "file:" + dir + "?checkpoint=1000"
	c1 := openT(t, dsn)
	c2 := openT(t, dsn)
	c1.Exec("CREATE TABLE t (a BIGINT)")
	rows, err := c2.Query("SELECT COUNT(*) FROM t")
	if err != nil {
		t.Fatalf("second handle does not share engine: %v", err)
	}
	rows.Next()
	// Closing one connection keeps the engine open for the other.
	if err := c1.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := c2.Exec("INSERT INTO t VALUES (1)"); err != nil {
		t.Fatalf("engine closed too early: %v", err)
	}
}

func TestMetaData(t *testing.T) {
	c := openT(t, freshMem(t))
	c.Exec(`CREATE TABLE application (
		id BIGINT PRIMARY KEY AUTO_INCREMENT,
		name VARCHAR NOT NULL,
		version VARCHAR DEFAULT 'unknown')`)
	c.Exec("CREATE INDEX ix_name ON application (name) USING btree")
	md := c.MetaData()
	tables, err := md.Tables()
	if err != nil || len(tables) != 1 || tables[0] != "application" {
		t.Fatalf("tables: %v %v", tables, err)
	}
	cols, err := md.Columns("application")
	if err != nil || len(cols) != 3 {
		t.Fatalf("columns: %v %v", cols, err)
	}
	if !cols[0].PrimaryKey || !cols[0].AutoIncrement || cols[0].Type != "BIGINT" {
		t.Errorf("id: %+v", cols[0])
	}
	if !cols[1].NotNull || cols[1].Type != "VARCHAR" {
		t.Errorf("name: %+v", cols[1])
	}
	if cols[2].Default != "unknown" {
		t.Errorf("version default: %+v", cols[2])
	}
	ixs, err := md.Indexes("application")
	if err != nil || len(ixs) != 1 || ixs[0].Kind != "BTREE" || ixs[0].Column != "name" {
		t.Fatalf("indexes: %v %v", ixs, err)
	}
	// The flexible-schema flow: add a column, see it via metadata.
	c.Exec("ALTER TABLE application ADD COLUMN compiler VARCHAR")
	cols, _ = md.Columns("application")
	if len(cols) != 4 || cols[3].Name != "compiler" {
		t.Fatalf("columns after ALTER: %v", cols)
	}
	if _, err := md.Columns("nosuch"); err == nil {
		t.Error("metadata for missing table")
	}
}

func TestClosedConn(t *testing.T) {
	c := openT(t, freshMem(t))
	c.Exec("CREATE TABLE t (a BIGINT)")
	c.Close()
	if _, err := c.Exec("INSERT INTO t VALUES (1)"); err == nil {
		t.Error("Exec on closed conn")
	}
	if _, err := c.Query("SELECT * FROM t"); err == nil {
		t.Error("Query on closed conn")
	}
	if err := c.Close(); err != nil {
		t.Error("double close should be a no-op")
	}
}

func TestCloseRollsBackOpenTx(t *testing.T) {
	dsn := freshMem(t)
	c := openT(t, dsn)
	c.Exec("CREATE TABLE t (a BIGINT)")
	c.Begin()
	c.Exec("INSERT INTO t VALUES (1)")
	c.Close()
	c2 := openT(t, dsn)
	rows, _ := c2.Query("SELECT COUNT(*) FROM t")
	rows.Next()
	var n int64
	rows.Scan(&n)
	if n != 0 {
		t.Fatalf("uncommitted data survived Close: %d", n)
	}
}

func TestQueryExecMismatch(t *testing.T) {
	c := openT(t, freshMem(t))
	c.Exec("CREATE TABLE t (a BIGINT)")
	if _, err := c.Exec("SELECT * FROM t"); err == nil || !strings.Contains(err.Error(), "Query") {
		t.Errorf("Exec(SELECT): %v", err)
	}
	if _, err := c.Query("INSERT INTO t VALUES (1)"); err == nil {
		t.Error("Query(INSERT) accepted")
	}
}

func TestExplainThroughConn(t *testing.T) {
	c := openT(t, freshMem(t))
	c.Exec("CREATE TABLE t (id BIGINT PRIMARY KEY AUTO_INCREMENT, v DOUBLE)")
	c.Exec("INSERT INTO t (v) VALUES (1.5), (2.5)")
	rows, err := c.Query("EXPLAIN SELECT * FROM t WHERE id = 1")
	if err != nil {
		t.Fatal(err)
	}
	if got := rows.Columns(); len(got) != 1 || got[0] != "plan" {
		t.Fatalf("columns: %v", got)
	}
	if !rows.Next() {
		t.Fatal("empty plan")
	}
	var line string
	rows.Scan(&line)
	if !strings.Contains(line, "index access") {
		t.Fatalf("plan: %q", line)
	}
}
