package godbc

import (
	"sync"

	"perfdmf/internal/sqlexec"
	"perfdmf/internal/sqlparse"
)

// stmtCacheMax bounds the per-connection statement cache. PerfDMF workloads
// cycle through a small, fixed statement vocabulary (the upload loop and
// the analysis queries), so a modest FIFO is plenty and keeps a connection
// that streams ad-hoc SQL from holding every statement it ever saw.
const stmtCacheMax = 256

// cacheEntry is one cached statement: the parsed AST, plus — for SELECTs —
// a reusable executor plan that memoizes the access-path decision keyed by
// the base table's schema version. The AST is never mutated by execution,
// so sharing it across executions (and with prepared statements) is safe.
type cacheEntry struct {
	st   sqlparse.Statement
	plan *sqlexec.Plan // non-nil only for SELECT statements
}

// stmtCache maps SQL text to parsed statements for one connection. A conn
// serves a single goroutine (JDBC's Connection contract), but the
// introspection catalog snapshots caches from other goroutines, so the map
// and its hit/miss accounting are mutex-guarded. The cached entries (and
// their Plan handles) remain owned by the connection goroutine — snapshot
// reads only the cache-level counters, never entry internals.
type stmtCache struct {
	mu      sync.Mutex
	entries map[string]*cacheEntry
	fifo    []string // insertion order, for eviction
	hits    int64
	misses  int64
}

func newStmtCache() *stmtCache {
	return &stmtCache{entries: make(map[string]*cacheEntry)}
}

// lookup returns the cached entry for sql (nil on miss) and counts the
// outcome in the cache's own hit/miss tallies.
func (sc *stmtCache) lookup(sql string) *cacheEntry {
	sc.mu.Lock()
	defer sc.mu.Unlock()
	e := sc.entries[sql]
	if e != nil {
		sc.hits++
	} else {
		sc.misses++
	}
	return e
}

func (sc *stmtCache) store(sql string, e *cacheEntry) {
	sc.mu.Lock()
	defer sc.mu.Unlock()
	if _, ok := sc.entries[sql]; ok {
		sc.entries[sql] = e
		return
	}
	if len(sc.fifo) >= stmtCacheMax {
		evict := sc.fifo[0]
		sc.fifo = sc.fifo[1:]
		delete(sc.entries, evict)
	}
	sc.entries[sql] = e
	sc.fifo = append(sc.fifo, sql)
}

// snapshot reports the cache's size and hit/miss counters for
// OBS_PLAN_CACHE. Safe to call from any goroutine.
func (sc *stmtCache) snapshot() (entries int, hits, misses int64) {
	sc.mu.Lock()
	defer sc.mu.Unlock()
	return len(sc.entries), sc.hits, sc.misses
}

// columnarHits sums the cached SELECT plans' columnar-execution counters
// for OBS_PLAN_CACHE.columnar_hits. Plan.Columnar is atomic, so reading it
// from a snapshotting goroutine while the connection executes is safe; the
// map itself is guarded by the cache mutex as usual.
func (sc *stmtCache) columnarHits() int64 {
	sc.mu.Lock()
	defer sc.mu.Unlock()
	var n int64
	for _, e := range sc.entries {
		if e.plan != nil {
			n += e.plan.Columnar.Load()
		}
	}
	return n
}

// parseCached returns the cached parse of query, parsing and caching on
// miss. Every statement that reaches Exec/Query/Prepare with the same text
// skips the lexer and parser after the first time; the attached plan
// additionally skips the executor's access-path search while the schema
// version holds (see sqlexec.Plan).
func (c *conn) parseCached(query string) (*cacheEntry, error) {
	if e := c.cache.lookup(query); e != nil {
		sqlexec.PlanCacheHit()
		return e, nil
	}
	sqlexec.PlanCacheMiss()
	st, err := sqlparse.Parse(query)
	if err != nil {
		return nil, err
	}
	e := &cacheEntry{st: st}
	if sel, ok := st.(*sqlparse.Select); ok {
		e.plan = sqlexec.NewPlan(sel)
	}
	c.cache.store(query, e)
	return e, nil
}

// queryOptions resolves the connection's execution options for one
// statement: the workers knob (DSN ?workers=N; N=0 forces serial, unset
// defers to the executor's GOMAXPROCS default), the statement's reusable
// plan handle, and its live accounting entry.
func (c *conn) queryOptions(plan *sqlexec.Plan, entry *sqlexec.StmtEntry) sqlexec.Options {
	opts := sqlexec.Options{Plan: plan, Stmt: entry, NoColumnar: !c.columnar}
	switch {
	case c.workers < 0: // unset: executor default (GOMAXPROCS)
		opts.Workers = 0
	case c.workers == 0: // ?workers=0: serial
		opts.Workers = 1
	default:
		opts.Workers = c.workers
	}
	return opts
}
