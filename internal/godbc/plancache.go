package godbc

import (
	"perfdmf/internal/sqlexec"
	"perfdmf/internal/sqlparse"
)

// stmtCacheMax bounds the per-connection statement cache. PerfDMF workloads
// cycle through a small, fixed statement vocabulary (the upload loop and
// the analysis queries), so a modest FIFO is plenty and keeps a connection
// that streams ad-hoc SQL from holding every statement it ever saw.
const stmtCacheMax = 256

// cacheEntry is one cached statement: the parsed AST, plus — for SELECTs —
// a reusable executor plan that memoizes the access-path decision keyed by
// the base table's schema version. The AST is never mutated by execution,
// so sharing it across executions (and with prepared statements) is safe.
type cacheEntry struct {
	st   sqlparse.Statement
	plan *sqlexec.Plan // non-nil only for SELECT statements
}

// stmtCache maps SQL text to parsed statements for one connection. A conn
// serves a single goroutine (JDBC's Connection contract), so no locking.
type stmtCache struct {
	entries map[string]*cacheEntry
	fifo    []string // insertion order, for eviction
}

func newStmtCache() *stmtCache {
	return &stmtCache{entries: make(map[string]*cacheEntry)}
}

func (sc *stmtCache) lookup(sql string) *cacheEntry { return sc.entries[sql] }

func (sc *stmtCache) store(sql string, e *cacheEntry) {
	if _, ok := sc.entries[sql]; ok {
		sc.entries[sql] = e
		return
	}
	if len(sc.fifo) >= stmtCacheMax {
		evict := sc.fifo[0]
		sc.fifo = sc.fifo[1:]
		delete(sc.entries, evict)
	}
	sc.entries[sql] = e
	sc.fifo = append(sc.fifo, sql)
}

// parseCached returns the cached parse of query, parsing and caching on
// miss. Every statement that reaches Exec/Query/Prepare with the same text
// skips the lexer and parser after the first time; the attached plan
// additionally skips the executor's access-path search while the schema
// version holds (see sqlexec.Plan).
func (c *conn) parseCached(query string) (*cacheEntry, error) {
	if e := c.cache.lookup(query); e != nil {
		sqlexec.PlanCacheHit()
		return e, nil
	}
	sqlexec.PlanCacheMiss()
	st, err := sqlparse.Parse(query)
	if err != nil {
		return nil, err
	}
	e := &cacheEntry{st: st}
	if sel, ok := st.(*sqlparse.Select); ok {
		e.plan = sqlexec.NewPlan(sel)
	}
	c.cache.store(query, e)
	return e, nil
}

// queryOptions resolves the connection's execution options for one SELECT:
// the workers knob (DSN ?workers=N; N=0 forces serial, unset defers to the
// executor's GOMAXPROCS default) and the statement's reusable plan handle.
func (c *conn) queryOptions(plan *sqlexec.Plan) sqlexec.Options {
	opts := sqlexec.Options{Plan: plan}
	switch {
	case c.workers < 0: // unset: executor default (GOMAXPROCS)
		opts.Workers = 0
	case c.workers == 0: // ?workers=0: serial
		opts.Workers = 1
	default:
		opts.Workers = c.workers
	}
	return opts
}
