package godbc

import (
	"fmt"
	"strings"
	"testing"
	"time"

	"perfdmf/internal/obs"
)

func mustExec(t *testing.T, c Conn, q string, args ...any) {
	t.Helper()
	if _, err := c.Exec(q, args...); err != nil {
		t.Fatal(err)
	}
}

// TestRowsClose is the regression test for Close being a silent no-op:
// Close must release the result set, exhaust the cursor, and stay safe to
// call twice.
func TestRowsClose(t *testing.T) {
	c := openT(t, freshMem(t))
	mustExec(t, c, "CREATE TABLE t (id BIGINT PRIMARY KEY, v BIGINT)")
	for i := 0; i < 3; i++ {
		mustExec(t, c, "INSERT INTO t (id, v) VALUES (?, ?)", i, i*10)
	}
	rows, err := c.Query("SELECT id, v FROM t ORDER BY id")
	if err != nil {
		t.Fatal(err)
	}
	if !rows.Next() {
		t.Fatal("no first row")
	}
	if err := rows.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	if rows.Next() {
		t.Fatal("Next succeeded after Close")
	}
	if got := rows.Value(0); got != nil {
		t.Fatalf("Value after Close = %v, want nil", got)
	}
	var id int64
	if err := rows.Scan(&id); err == nil {
		t.Fatal("Scan after Close succeeded")
	}
	if err := rows.Close(); err != nil {
		t.Fatalf("second Close: %v", err)
	}
	if err := rows.Err(); err != nil {
		t.Fatalf("Err after Close: %v", err)
	}
	// Columns stay readable for result-shape inspection.
	if cols := rows.Columns(); len(cols) != 2 || cols[0] != "id" {
		t.Fatalf("Columns after Close = %v", cols)
	}
	// The released cursor does not affect fresh queries.
	rows2, err := c.Query("SELECT COUNT(*) FROM t")
	if err != nil {
		t.Fatal(err)
	}
	defer rows2.Close()
	var n int64
	if !rows2.Next() {
		t.Fatal("count row missing")
	}
	if err := rows2.Scan(&n); err != nil || n != 3 {
		t.Fatalf("count = %d, err = %v", n, err)
	}
}

// TestDSNObsOptions checks trace/slowms parsing on both drivers: valid
// spellings apply, malformed ones fail the Open.
func TestDSNObsOptions(t *testing.T) {
	c, err := Open("mem:dsnobs?trace=1&slowms=50")
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	cc := c.(*conn)
	if !cc.obs.traceSet || !cc.obs.trace || !cc.tracingOn() {
		t.Fatalf("trace option not applied: %+v", cc.obs)
	}
	if !cc.obs.slowSet || cc.slowThreshold() != 50*time.Millisecond {
		t.Fatalf("slowms option not applied: %+v", cc.obs)
	}

	// slowms=0 on a connection silences a global threshold.
	obs.SetSlowQueryThreshold(time.Millisecond)
	defer obs.SetSlowQueryThreshold(0)
	c2, err := Open("mem:dsnobs?slowms=0")
	if err != nil {
		t.Fatal(err)
	}
	defer c2.Close()
	if th := c2.(*conn).slowThreshold(); th != 0 {
		t.Fatalf("slowms=0 did not override global threshold: %v", th)
	}

	dir := t.TempDir()
	fc, err := Open("file:" + dir + "?trace=true&slowms=10")
	if err != nil {
		t.Fatal(err)
	}
	fcc := fc.(*conn)
	if !fcc.tracingOn() || fcc.slowThreshold() != 10*time.Millisecond {
		t.Fatalf("file driver options not applied: %+v", fcc.obs)
	}
	if err := fc.Close(); err != nil {
		t.Fatal(err)
	}

	for _, dsn := range []string{
		"mem:dsnobs?trace=maybe",
		"mem:dsnobs?slowms=-1",
		"mem:dsnobs?slowms=fast",
		"mem:dsnobs?slowms=",
		"fmt", // placeholder replaced below for the file driver
	} {
		if dsn == "fmt" {
			dsn = fmt.Sprintf("file:%s?trace=2", t.TempDir())
		}
		if _, err := Open(dsn); err == nil {
			t.Errorf("Open(%q) accepted a malformed option", dsn)
		}
	}
}

// TestTracerAndSlowLogRouting drives statements over a traced connection
// and checks they land in the tracer; a 0ms threshold (every statement is
// slow) feeds the slow-query log.
func TestTracerAndSlowLogRouting(t *testing.T) {
	obs.DefaultTracer.Reset()
	obs.DefaultSlowLog.Reset()
	c, err := Open("mem:tracerouting?trace=1&slowms=0")
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	mustExec(t, c, "CREATE TABLE t (id BIGINT PRIMARY KEY, v BIGINT)")
	mustExec(t, c, "INSERT INTO t (id, v) VALUES (1, 10)")
	rows, err := c.Query("SELECT v FROM t WHERE id = 1")
	if err != nil {
		t.Fatal(err)
	}
	rows.Close()
	spans := obs.DefaultTracer.Recent()
	if len(spans) < 3 {
		t.Fatalf("tracer got %d spans, want >= 3", len(spans))
	}
	last := spans[len(spans)-1]
	if last.Kind != "query" || !last.IndexUsed || last.RowsReturned != 1 {
		t.Fatalf("query span = %+v", last)
	}
	if last.Total <= 0 || last.Parse <= 0 {
		t.Fatalf("span not timed: %+v", last)
	}
	if !strings.Contains(last.Statement, "SELECT v FROM t") {
		t.Fatalf("span statement = %q", last.Statement)
	}
	// slowms=0 disables the slow log (0 = off, matching the global knob).
	if obs.DefaultSlowLog.Total() != 0 {
		t.Fatalf("slow log got %d entries with threshold off", obs.DefaultSlowLog.Total())
	}

	// A 1ns global threshold catches everything on a default connection.
	obs.SetSlowQueryThreshold(time.Nanosecond)
	defer obs.SetSlowQueryThreshold(0)
	c2, err := Open("mem:tracerouting")
	if err != nil {
		t.Fatal(err)
	}
	defer c2.Close()
	rows2, err := c2.Query("SELECT COUNT(*) FROM t")
	if err != nil {
		t.Fatal(err)
	}
	rows2.Close()
	if obs.DefaultSlowLog.Total() < 1 {
		t.Fatal("slow log empty after query over threshold")
	}
	sp := obs.DefaultSlowLog.Recent()[0]
	if sp.Kind != "query" || sp.Total < time.Nanosecond {
		t.Fatalf("slow span = %+v", sp)
	}
}

// TestExplainAnalyzeThroughConn checks the EXPLAIN ANALYZE path end to end:
// parser flag, execution, and actual-timing rows via the godbc cursor.
func TestExplainAnalyzeThroughConn(t *testing.T) {
	c := openT(t, freshMem(t))
	mustExec(t, c, "CREATE TABLE t (id BIGINT PRIMARY KEY, v BIGINT)")
	for i := 0; i < 10; i++ {
		mustExec(t, c, "INSERT INTO t (id, v) VALUES (?, ?)", i, i)
	}
	rows, err := c.Query("EXPLAIN ANALYZE SELECT v FROM t WHERE id = 7")
	if err != nil {
		t.Fatal(err)
	}
	defer rows.Close()
	var lines []string
	for rows.Next() {
		var s string
		if err := rows.Scan(&s); err != nil {
			t.Fatal(err)
		}
		lines = append(lines, s)
	}
	joined := strings.Join(lines, "\n")
	for _, want := range []string{
		"index access", "actual: plan=", "total=",
		"rows scanned=1, rows returned=1 (index access)",
	} {
		if !strings.Contains(joined, want) {
			t.Errorf("EXPLAIN ANALYZE output missing %q:\n%s", want, joined)
		}
	}
}

// TestMetaDataAfterAlter exercises MetaData().Columns() and Indexes()
// through ALTER TABLE ADD/DROP COLUMN with the instrumentation wrappers
// active (traced connection).
func TestMetaDataAfterAlter(t *testing.T) {
	c, err := Open("mem:metaalter?trace=1")
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	mustExec(t, c, "CREATE TABLE t (id BIGINT PRIMARY KEY, a BIGINT)")
	mustExec(t, c, "CREATE INDEX ix_a ON t (a)")

	colNames := func() []string {
		cols, err := c.MetaData().Columns("t")
		if err != nil {
			t.Fatal(err)
		}
		names := make([]string, len(cols))
		for i, col := range cols {
			names[i] = col.Name
		}
		return names
	}

	mustExec(t, c, "ALTER TABLE t ADD COLUMN b VARCHAR")
	if got := colNames(); len(got) != 3 || got[2] != "b" {
		t.Fatalf("columns after ADD = %v", got)
	}
	mustExec(t, c, "ALTER TABLE t DROP COLUMN b")
	if got := colNames(); len(got) != 2 || got[0] != "id" || got[1] != "a" {
		t.Fatalf("columns after DROP = %v", got)
	}
	ixs, err := c.MetaData().Indexes("t")
	if err != nil {
		t.Fatal(err)
	}
	if len(ixs) != 1 || ixs[0].Name != "ix_a" || ixs[0].Column != "a" {
		t.Fatalf("indexes after ALTERs = %+v", ixs)
	}
	// The ALTERs above ran as traced exec statements.
	found := false
	for _, sp := range obs.DefaultTracer.Recent() {
		if sp.Kind == "exec" && strings.Contains(sp.Statement, "ALTER TABLE t ADD") {
			found = true
		}
	}
	if !found {
		t.Fatal("ALTER TABLE span missing from tracer")
	}
}
