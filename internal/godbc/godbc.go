// Package godbc is PerfDMF's database connectivity layer — the role JDBC
// plays in the paper. Analysis code opens a connection by DSN, executes
// vendor-neutral SQL through Exec/Query with ? parameters, and inspects the
// live schema through MetaData (the getMetaData() mechanism the paper's
// flexible APPLICATION/EXPERIMENT/TRIAL schema depends on).
//
// Two drivers are registered by default, standing in for the paper's four
// supported DBMSes:
//
//	mem:<name>            a named, shared in-memory database
//	file:<directory>      a durable database (snapshot + WAL) in a directory
//
// The file DSN accepts options: file:/path/to/dir?sync=1&checkpoint=50000.
// Both drivers accept readonly=1, which rejects every mutating statement
// on that connection — the access-authorization hook the paper sketches
// for shared repositories (§5.1: "a simple matter to implement access
// authorization to enforce different policies for performance data
// security and sharing").
//
// Both drivers also accept per-connection observability overrides,
// ?trace=1&slowms=50: trace records every statement on the connection into
// the obs tracer, slowms sets the connection's slow-query threshold in
// milliseconds (0 silences a globally-configured threshold). Unset options
// defer to the global obs configuration (PERFDMF_TRACE / PERFDMF_SLOW_MS).
//
// The ?workers=N option caps the parallelism of SELECT execution on the
// connection: N>1 allows up to N worker goroutines for partitioned scans
// and partial aggregation, N=0 (or 1) forces serial execution, and leaving
// the option unset defers to the executor's default (GOMAXPROCS). Like the
// observability options, malformed values fail Open.
//
// The ?telemetrybudget=PCT option sets the self-telemetry overhead budget
// (percent) that StartTelemetry's sampling governor enforces when no
// explicit budget is passed; ordinary connections validate and ignore it.
package godbc

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
	"sync"

	"perfdmf/internal/reldb"
)

// Driver creates connections for one DSN scheme.
type Driver interface {
	// Open opens a connection to the database identified by the DSN's
	// opaque part (everything after "scheme:").
	Open(rest string) (Conn, error)
}

// ColumnInfo describes one column, as reported by MetaData.
type ColumnInfo struct {
	Name          string
	Type          string // SQL type name: BIGINT, DOUBLE, VARCHAR, ...
	NotNull       bool
	PrimaryKey    bool
	AutoIncrement bool
	Default       any
}

// IndexInfo describes one secondary index.
type IndexInfo struct {
	Name   string
	Column string
	Kind   string // HASH or BTREE
	Unique bool
}

// MetaData exposes the live schema of a connected database.
type MetaData interface {
	// Tables lists table names in sorted order.
	Tables() ([]string, error)
	// Columns lists the columns of a table in declaration order.
	Columns(table string) ([]ColumnInfo, error)
	// Indexes lists the secondary indexes of a table.
	Indexes(table string) ([]IndexInfo, error)
}

// Result reports the effect of an Exec.
type Result struct {
	RowsAffected int64
	LastInsertID int64
}

// Rows is a cursor over a query result. It is fully materialized; Close
// releases the buffered result set, after which the cursor is exhausted
// (Next reports false). Closing twice is safe.
type Rows interface {
	// Columns returns the result column names.
	Columns() []string
	// Next advances to the next row, reporting false at the end.
	Next() bool
	// Scan copies the current row into dest pointers (*int, *int64,
	// *float64, *string, *bool, *time.Time, *[]byte or *any).
	Scan(dest ...any) error
	// Value returns the raw value of column i in the current row.
	Value(i int) any
	// Err returns the first error encountered while iterating.
	Err() error
	// Close releases the cursor.
	Close() error
}

// Stmt is a prepared statement: parsed once, executed many times. PerfDMF's
// bulk trial upload depends on this being cheap.
type Stmt interface {
	Exec(args ...any) (Result, error)
	Query(args ...any) (Rows, error)
	Close() error
}

// Conn is a database connection.
type Conn interface {
	// Exec runs a DDL/DML statement (or BEGIN/COMMIT/ROLLBACK).
	Exec(query string, args ...any) (Result, error)
	// Query runs a SELECT.
	Query(query string, args ...any) (Rows, error)
	// Prepare parses a statement for repeated execution.
	Prepare(query string) (Stmt, error)
	// Begin starts an explicit transaction on this connection.
	Begin() error
	// Commit commits the open transaction.
	Commit() error
	// Rollback aborts the open transaction.
	Rollback() error
	// MetaData returns the schema inspection interface.
	MetaData() MetaData
	// Close releases the connection.
	Close() error
}

// TxTrier is implemented by connections that can start a transaction
// without waiting for the engine's write lock. Like SpanBinder it is
// deliberately not part of the Conn interface: callers type-assert and
// fall back to the blocking Begin, so drivers without non-blocking
// transactions keep working. The telemetry writer depends on it to turn
// lock contention into a sampling-governor stall instead of queueing
// behind the workload it measures.
type TxTrier interface {
	// TryBegin starts a transaction if the write lock is immediately
	// available, returning ok=false (and no error) when it is held.
	TryBegin() (bool, error)
}

var (
	driversMu sync.RWMutex
	drivers   = make(map[string]Driver)
)

// Register makes a driver available under a scheme name. It panics when the
// scheme is already taken, matching database/sql convention.
func Register(scheme string, d Driver) {
	driversMu.Lock()
	defer driversMu.Unlock()
	if _, dup := drivers[scheme]; dup {
		panic("godbc: Register called twice for driver " + scheme)
	}
	drivers[scheme] = d
}

// Drivers returns the registered scheme names, sorted.
func Drivers() []string {
	driversMu.RLock()
	defer driversMu.RUnlock()
	out := make([]string, 0, len(drivers))
	for k := range drivers {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// Open opens a connection given a DSN of the form "scheme:rest".
func Open(dsn string) (Conn, error) {
	scheme, rest, ok := strings.Cut(dsn, ":")
	if !ok {
		return nil, fmt.Errorf("godbc: malformed DSN %q (want scheme:rest)", dsn)
	}
	driversMu.RLock()
	d := drivers[scheme]
	driversMu.RUnlock()
	if d == nil {
		return nil, fmt.Errorf("godbc: unknown driver %q (registered: %s)",
			scheme, strings.Join(Drivers(), ", "))
	}
	return d.Open(rest)
}

// parseDSNOptions splits "path?k=v&k2=v2" into the path and option map.
func parseDSNOptions(rest string) (string, map[string]string, error) {
	path, query, _ := strings.Cut(rest, "?")
	opts := make(map[string]string)
	if query == "" {
		return path, opts, nil
	}
	for _, kv := range strings.Split(query, "&") {
		k, v, ok := strings.Cut(kv, "=")
		if !ok || k == "" {
			return "", nil, fmt.Errorf("godbc: malformed DSN option %q", kv)
		}
		opts[k] = v
	}
	return path, opts, nil
}

// checkOptions rejects DSN option keys the driver does not recognize. A
// misspelled observability option (?trce=1) silently doing nothing is worse
// than an error: the operator believes tracing is on when it is not.
func checkOptions(opts map[string]string, known ...string) error {
	for k := range opts {
		recognized := false
		for _, want := range known {
			if k == want {
				recognized = true
				break
			}
		}
		if !recognized {
			sort.Strings(known)
			return fmt.Errorf("godbc: unknown DSN option %q (known options: %s)",
				k, strings.Join(known, ", "))
		}
	}
	return nil
}

func optInt(opts map[string]string, key string, def int) (int, error) {
	s, ok := opts[key]
	if !ok {
		return def, nil
	}
	n, err := strconv.Atoi(s)
	if err != nil {
		return 0, fmt.Errorf("godbc: option %s=%q is not an integer", key, s)
	}
	return n, nil
}

func optBool(opts map[string]string, key string) bool {
	v := opts[key]
	return v == "1" || v == "true" || v == "yes"
}

// --- built-in drivers ---

// memDriver serves named, shared in-memory databases: two connections with
// the same name see the same data, which is how the PerfExplorer server and
// its tests share an archive without a daemon.
type memDriver struct {
	mu  sync.Mutex
	dbs map[string]*reldb.DB
}

func (d *memDriver) Open(rest string) (Conn, error) {
	name, opts, err := parseDSNOptions(rest)
	if err != nil {
		return nil, err
	}
	if err := checkOptions(opts, "readonly", "trace", "slowms", "workers", "columnar", "telemetrybudget"); err != nil {
		return nil, err
	}
	oo, err := parseObsOptions(opts)
	if err != nil {
		return nil, err
	}
	workers, err := parseWorkersOption(opts)
	if err != nil {
		return nil, err
	}
	columnar, err := parseColumnarOption(opts)
	if err != nil {
		return nil, err
	}
	if _, _, err := parseTelemetryBudgetOption(opts); err != nil {
		return nil, err
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	db := d.dbs[name]
	if db == nil {
		db = reldb.NewMemory()
		d.dbs[name] = db
	}
	c := newConn(db, nil)
	c.readonly = optBool(opts, "readonly")
	c.obs = oo
	c.workers = workers
	c.columnar = columnar
	return c, nil
}

// fileDriver serves durable databases rooted at a directory. Connections to
// the same directory share one engine instance and are reference counted.
type fileDriver struct {
	mu   sync.Mutex
	open map[string]*fileEntry
}

type fileEntry struct {
	db   *reldb.DB
	refs int
}

func (d *fileDriver) Open(rest string) (Conn, error) {
	path, opts, err := parseDSNOptions(rest)
	if err != nil {
		return nil, err
	}
	if path == "" {
		return nil, fmt.Errorf("godbc: file DSN needs a directory path")
	}
	if err := checkOptions(opts, "readonly", "sync", "checkpoint", "trace", "slowms", "workers", "columnar", "telemetrybudget"); err != nil {
		return nil, err
	}
	oo, err := parseObsOptions(opts)
	if err != nil {
		return nil, err
	}
	workers, err := parseWorkersOption(opts)
	if err != nil {
		return nil, err
	}
	columnar, err := parseColumnarOption(opts)
	if err != nil {
		return nil, err
	}
	if _, _, err := parseTelemetryBudgetOption(opts); err != nil {
		return nil, err
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	entry := d.open[path]
	if entry == nil {
		chk, err := optInt(opts, "checkpoint", 0)
		if err != nil {
			return nil, err
		}
		db, err := reldb.Open(path, reldb.Options{
			Sync:            optBool(opts, "sync"),
			CheckpointEvery: chk,
		})
		if err != nil {
			return nil, err
		}
		entry = &fileEntry{db: db}
		d.open[path] = entry
	}
	entry.refs++
	readonly := optBool(opts, "readonly")
	release := func() error {
		d.mu.Lock()
		defer d.mu.Unlock()
		entry.refs--
		if entry.refs == 0 {
			delete(d.open, path)
			if err := entry.db.Checkpoint(); err != nil {
				entry.db.Close()
				return err
			}
			return entry.db.Close()
		}
		return nil
	}
	c := newConn(entry.db, release)
	c.readonly = readonly
	c.obs = oo
	c.workers = workers
	c.columnar = columnar
	return c, nil
}

var memDrv = &memDriver{dbs: make(map[string]*reldb.DB)}

// DropMemory detaches the named in-memory database from the mem: driver:
// the next Open of the same name starts empty, and once every open
// connection is closed the old engine becomes garbage. Without it a mem:
// archive lives for the rest of the process — benchmarks that open a fresh
// archive per repetition use DropMemory so dead archives stop inflating
// the heap (and with it, allocator and GC cost) of later repetitions.
func DropMemory(name string) {
	memDrv.mu.Lock()
	defer memDrv.mu.Unlock()
	delete(memDrv.dbs, name)
}

func init() {
	Register("mem", memDrv)
	Register("file", &fileDriver{open: make(map[string]*fileEntry)})
}
