package godbc

import (
	"context"
	"fmt"
	"strconv"
	"time"

	"perfdmf/internal/obs"
)

// Connectivity-layer metrics, resolved once. The exec counters ride the
// bulk-upload hot path, so with tracing off and no slow-query threshold the
// per-statement cost is a single atomic add.
var (
	mConnsOpened  = obs.Default.Counter("godbc_conns_opened_total")
	mConnsClosed  = obs.Default.Counter("godbc_conns_closed_total")
	mExecTotal    = obs.Default.Counter("godbc_exec_total")
	mQueryTotal   = obs.Default.Counter("godbc_query_total")
	mPrepareTotal = obs.Default.Counter("godbc_prepare_total")
	mStmtErrors   = obs.Default.Counter("godbc_statement_errors_total")
	mQueryNS      = obs.Default.Histogram("godbc_query_ns")
	mExecNS       = obs.Default.Histogram("godbc_exec_ns") // only fed while timing is on
)

// obsOpts carries per-connection observability overrides parsed from DSN
// options (?trace=1&slowms=50). Unset knobs defer to the global obs config,
// so a connection can both enable tracing the process has off and silence a
// global slow-query threshold with slowms=0.
type obsOpts struct {
	traceSet bool
	trace    bool
	slowSet  bool
	slow     time.Duration
}

// parseObsOptions validates the trace and slowms DSN options. Unlike the
// lenient global env knobs, DSN options are spelled by the user right now,
// so malformed values are errors.
func parseObsOptions(opts map[string]string) (obsOpts, error) {
	var o obsOpts
	if v, ok := opts["trace"]; ok {
		switch v {
		case "1", "true", "yes":
			o.traceSet, o.trace = true, true
		case "0", "false", "no":
			o.traceSet, o.trace = true, false
		default:
			return o, fmt.Errorf("godbc: option trace=%q is not a boolean", v)
		}
	}
	if v, ok := opts["slowms"]; ok {
		ms, err := strconv.Atoi(v)
		if err != nil || ms < 0 {
			return o, fmt.Errorf("godbc: option slowms=%q is not a non-negative integer", v)
		}
		o.slowSet, o.slow = true, time.Duration(ms)*time.Millisecond
	}
	return o, nil
}

// parseWorkersOption validates the ?workers=N knob with the same strictness
// as the observability options: the value must be a non-negative integer.
// It returns -1 when the option is absent (defer to the executor default).
func parseWorkersOption(opts map[string]string) (int, error) {
	v, ok := opts["workers"]
	if !ok {
		return -1, nil
	}
	n, err := strconv.Atoi(v)
	if err != nil || n < 0 {
		return 0, fmt.Errorf("godbc: option workers=%q is not a non-negative integer", v)
	}
	return n, nil
}

// parseColumnarOption validates the ?columnar=0|1 knob: whether SELECT
// execution may take the vectorized aggregation path over sealed column
// segments. It returns true (enabled) when the option is absent; ?columnar=0
// forces the row path, which benchmarks use for side-by-side comparison.
func parseColumnarOption(opts map[string]string) (bool, error) {
	v, ok := opts["columnar"]
	if !ok {
		return true, nil
	}
	switch v {
	case "0", "false", "no":
		return false, nil
	case "1", "true", "yes":
		return true, nil
	}
	return false, fmt.Errorf("godbc: option columnar=%q is not a boolean", v)
}

// parseTelemetryBudgetOption validates the ?telemetrybudget=PCT knob: the
// self-telemetry overhead budget, in percent, StartTelemetry governs its
// sampling by when the caller passes no explicit budget. The option rides
// the ordinary DSN so one connection string configures both the workload
// connections and the telemetry pipeline; regular connections validate it
// and ignore the value. 0 disables the governor (every span is kept).
func parseTelemetryBudgetOption(opts map[string]string) (float64, bool, error) {
	v, ok := opts["telemetrybudget"]
	if !ok {
		return 0, false, nil
	}
	pct, err := strconv.ParseFloat(v, 64)
	if err != nil || pct < 0 {
		return 0, false, fmt.Errorf("godbc: option telemetrybudget=%q is not a non-negative number", v)
	}
	return pct, true, nil
}

// tracingOn resolves the connection's effective tracing switch.
func (c *conn) tracingOn() bool {
	if c.obs.traceSet {
		return c.obs.trace
	}
	return obs.TracingEnabled()
}

// slowThreshold resolves the connection's effective slow-query threshold.
func (c *conn) slowThreshold() time.Duration {
	if c.obs.slowSet {
		return c.obs.slow
	}
	return obs.SlowQueryThreshold()
}

// startSpan returns a live span when some consumer (tracer, slow-query log
// or an installed telemetry sink) wants it, nil otherwise. Nil spans keep
// the statement path free of time.Now calls. Quiet connections (the
// telemetry store's own) never produce spans — that is what breaks the
// "sink INSERT traces itself into the sink" loop.
func (c *conn) startSpan(kind, stmt string, nparams int) *obs.Span {
	if c.quiet {
		return nil
	}
	if c.parentSpan == nil && !c.tracingOn() && c.slowThreshold() <= 0 && !obs.SinkActive() {
		return nil
	}
	sp := &obs.Span{ID: obs.NextSpanID(), Kind: kind, Statement: stmt, Params: nparams, Start: time.Now()}
	if p := c.parentSpan; p != nil {
		sp.ParentID = p.ID
		sp.Root = p.Root
	}
	return sp
}

// finishSpan stamps the total, records the error, and routes the span to
// the tracer, the slow-query log, and the telemetry sink, honouring the
// connection's per-DSN trace/slowms overrides.
func (c *conn) finishSpan(sp *obs.Span, err error) {
	if sp == nil {
		return
	}
	sp.Total = time.Since(sp.Start)
	if err != nil {
		sp.Err = err.Error()
	}
	obs.RouteSpan(sp, c.tracingOn(), c.slowThreshold())
}

// SpanBinder is implemented by connections that can parent their statement
// spans under a framework span carried by a context (see obs.StartSpan).
// It is deliberately not part of the Conn interface: callers type-assert,
// so drivers without span support keep working.
type SpanBinder interface {
	// BindSpanContext makes subsequent statements' spans children of the
	// span carried by ctx. A nil or span-less context clears the binding.
	// Like every other method on a connection, it is not safe for
	// concurrent use with statements on the same connection.
	BindSpanContext(ctx context.Context)
}

// BindSpanContext implements SpanBinder.
func (c *conn) BindSpanContext(ctx context.Context) {
	c.parentSpan = obs.SpanFromContext(ctx)
}
