package godbc

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"perfdmf/internal/obs"
	"perfdmf/internal/reldb"
	"perfdmf/internal/sqlexec"
	"perfdmf/internal/sqlparse"
)

// conn is the single Conn implementation, backed by a reldb engine. A conn
// is not safe for concurrent use by multiple goroutines (like a JDBC
// Connection); open one connection per goroutine — they share the engine.
type conn struct {
	db       *reldb.DB
	id       int64     // registry id, assigned at open (see admin.go)
	tx       *reldb.Tx // open explicit transaction, or nil
	closed   bool
	readonly bool // reject all mutating statements
	quiet    bool // never produce spans (the telemetry store's own
	// connection, so its INSERTs cannot trace themselves back into the sink)
	relaxed bool // commit with relaxed durability (batched WAL fsync);
	// only the telemetry writer sets this — span batches must not pay, or
	// charge the workload, one fsync per group commit
	release func() error // driver-specific close hook
	obs     obsOpts      // per-connection trace/slow-query overrides
	workers int          // ?workers=N parallelism (-1 unset, 0 serial)
	// columnar enables the vectorized aggregation path (?columnar, default
	// on). Off forces row-at-a-time execution for comparison runs.
	columnar bool
	cache    *stmtCache // per-connection statement/plan cache

	// parentSpan is the framework span statement spans are parented under,
	// set via BindSpanContext. Connections are single-goroutine, so the
	// field needs no synchronisation.
	parentSpan *obs.Span
}

func newConn(db *reldb.DB, release func() error) *conn {
	mConnsOpened.Inc()
	c := &conn{db: db, release: release, workers: -1, columnar: true, cache: newStmtCache()}
	registerConn(c)
	return c
}

func toValues(args []any) []reldb.Value {
	if len(args) == 0 {
		return nil
	}
	out := make([]reldb.Value, len(args))
	for i, a := range args {
		out[i] = reldb.FromGo(a)
	}
	return out
}

func (c *conn) check() error {
	if c.closed {
		return fmt.Errorf("godbc: connection is closed")
	}
	return nil
}

func (c *conn) Exec(query string, args ...any) (Result, error) {
	if err := c.check(); err != nil {
		return Result{}, err
	}
	// Quiet connections (the telemetry writer's own) keep the statement
	// metrics untouched: the scrape loop's history INSERTs must not show up
	// as workload activity, or exec-rate alert rules would observe the
	// observer and never resolve.
	if !c.quiet {
		mExecTotal.Inc()
	}
	entry := sqlexec.Statements.Begin(query, "exec")
	defer entry.Finish()
	sp := c.startSpan("exec", query, len(args))
	e, err := c.parseCached(query)
	if err != nil {
		if !c.quiet {
			mStmtErrors.Inc()
		}
		c.finishSpan(sp, err)
		return Result{}, err
	}
	if sp != nil {
		sp.Parse = time.Since(sp.Start)
	}
	res, err := c.execParsed(e.st, toValues(args), entry)
	if err != nil && !c.quiet {
		mStmtErrors.Inc()
	}
	c.finishSpan(sp, err)
	if sp != nil && !c.quiet {
		mExecNS.Observe(int64(sp.Total))
	}
	return res, err
}

func (c *conn) execParsed(st sqlparse.Statement, params []reldb.Value, entry *sqlexec.StmtEntry) (Result, error) {
	switch s := st.(type) {
	case *sqlparse.Begin:
		return Result{}, c.Begin()
	case *sqlparse.Commit:
		return Result{}, c.Commit()
	case *sqlparse.Rollback:
		return Result{}, c.Rollback()
	case *sqlparse.Kill:
		// KILL mutates no data, so it works on read-only connections and
		// needs no transaction.
		entry.SetPhase(sqlexec.PhaseExecute)
		res, err := sqlexec.ExecOpts(nil, s, params, sqlexec.Options{})
		if err != nil {
			return Result{}, err
		}
		return Result(res), nil
	case *sqlparse.Select:
		return Result{}, fmt.Errorf("godbc: use Query for SELECT")
	}
	if c.readonly {
		return Result{}, fmt.Errorf("godbc: connection is read-only")
	}
	entry.SetPhase(sqlexec.PhaseExecute)
	opts := c.queryOptions(nil, entry)
	if c.tx != nil {
		res, err := sqlexec.ExecOpts(c.tx, st, params, opts)
		if err != nil {
			return Result{}, err
		}
		return Result(res), nil
	}
	var res sqlexec.Result
	err := c.db.Write(func(tx *reldb.Tx) error {
		var err error
		res, err = sqlexec.ExecOpts(tx, st, params, opts)
		return err
	})
	if err != nil {
		return Result{}, err
	}
	return Result(res), nil
}

func (c *conn) Query(query string, args ...any) (Rows, error) {
	if err := c.check(); err != nil {
		return nil, err
	}
	if !c.quiet {
		mQueryTotal.Inc()
	}
	start := time.Now()
	entry := sqlexec.Statements.Begin(query, "query")
	defer entry.Finish()
	sp := c.startSpan("query", query, len(args))
	e, err := c.parseCached(query)
	if err != nil {
		if !c.quiet {
			mStmtErrors.Inc()
		}
		c.finishSpan(sp, err)
		return nil, err
	}
	if sp != nil {
		sp.Parse = time.Since(sp.Start)
	}
	var out Rows
	switch st := e.st.(type) {
	case *sqlparse.Select:
		out, err = c.queryPlanned(st, e.plan, toValues(args), sp, entry)
	case *sqlparse.Explain:
		if st.Analyze {
			out, err = c.explainAnalyzeParsed(st.Select, toValues(args))
		} else {
			out, err = c.explainParsed(st.Select, toValues(args))
		}
	default:
		err = fmt.Errorf("godbc: Query needs a SELECT (or EXPLAIN SELECT) statement")
	}
	if err != nil && !c.quiet {
		mStmtErrors.Inc()
	}
	if !c.quiet {
		mQueryNS.Observe(int64(time.Since(start)))
	}
	c.finishSpan(sp, err)
	return out, err
}

func (c *conn) queryPlanned(sel *sqlparse.Select, plan *sqlexec.Plan, params []reldb.Value, sp *obs.Span, entry *sqlexec.StmtEntry) (Rows, error) {
	opts := c.queryOptions(plan, entry)
	var rs *sqlexec.ResultSet
	if c.tx != nil {
		var err error
		rs, err = sqlexec.QueryOpts(c.tx, sel, params, sp, opts)
		if err != nil {
			return nil, err
		}
	} else {
		err := c.db.Read(func(tx *reldb.Tx) error {
			var err error
			rs, err = sqlexec.QueryOpts(tx, sel, params, sp, opts)
			return err
		})
		if err != nil {
			return nil, err
		}
	}
	return newRows(rs), nil
}

// explainParsed runs EXPLAIN SELECT: the plan description, not the data.
func (c *conn) explainParsed(sel *sqlparse.Select, params []reldb.Value) (Rows, error) {
	var rs *sqlexec.ResultSet
	if c.tx != nil {
		var err error
		rs, err = sqlexec.Explain(c.tx, sel, params)
		if err != nil {
			return nil, err
		}
	} else {
		err := c.db.Read(func(tx *reldb.Tx) error {
			var err error
			rs, err = sqlexec.Explain(tx, sel, params)
			return err
		})
		if err != nil {
			return nil, err
		}
	}
	return newRows(rs), nil
}

// explainAnalyzeParsed runs EXPLAIN ANALYZE SELECT: the plan, executed and
// annotated with measured phase timings and row counts.
func (c *conn) explainAnalyzeParsed(sel *sqlparse.Select, params []reldb.Value) (Rows, error) {
	opts := c.queryOptions(nil, nil)
	var rs *sqlexec.ResultSet
	if c.tx != nil {
		var err error
		rs, err = sqlexec.ExplainAnalyzeOpts(c.tx, sel, params, opts)
		if err != nil {
			return nil, err
		}
	} else {
		err := c.db.Read(func(tx *reldb.Tx) error {
			var err error
			rs, err = sqlexec.ExplainAnalyzeOpts(tx, sel, params, opts)
			return err
		})
		if err != nil {
			return nil, err
		}
	}
	return newRows(rs), nil
}

func (c *conn) Prepare(query string) (Stmt, error) {
	if err := c.check(); err != nil {
		return nil, err
	}
	if !c.quiet {
		mPrepareTotal.Inc()
	}
	sp := c.startSpan("prepare", query, 0)
	e, err := c.parseCached(query)
	if sp != nil {
		sp.Parse = time.Since(sp.Start)
	}
	if err != nil {
		if !c.quiet {
			mStmtErrors.Inc()
		}
		c.finishSpan(sp, err)
		return nil, err
	}
	c.finishSpan(sp, nil)
	return &stmt{c: c, entry: e, src: query}, nil
}

func (c *conn) Begin() error {
	if err := c.check(); err != nil {
		return err
	}
	if c.readonly {
		return fmt.Errorf("godbc: connection is read-only")
	}
	if c.tx != nil {
		return fmt.Errorf("godbc: transaction already open")
	}
	c.tx = c.db.Begin()
	return nil
}

// TryBegin implements TxTrier: it starts a transaction only when the
// engine's write lock is immediately free, reporting ok=false (with no
// error) when another transaction holds it.
func (c *conn) TryBegin() (bool, error) {
	if err := c.check(); err != nil {
		return false, err
	}
	if c.readonly {
		return false, fmt.Errorf("godbc: connection is read-only")
	}
	if c.tx != nil {
		return false, fmt.Errorf("godbc: transaction already open")
	}
	tx, ok := c.db.TryBegin()
	if !ok {
		return false, nil
	}
	c.tx = tx
	return true, nil
}

func (c *conn) Commit() error {
	if err := c.check(); err != nil {
		return err
	}
	if c.tx == nil {
		return fmt.Errorf("godbc: no open transaction")
	}
	var err error
	if c.relaxed {
		err = c.tx.CommitRelaxed()
	} else {
		err = c.tx.Commit()
	}
	c.tx = nil
	return err
}

func (c *conn) Rollback() error {
	if err := c.check(); err != nil {
		return err
	}
	if c.tx == nil {
		return fmt.Errorf("godbc: no open transaction")
	}
	c.tx.Rollback()
	c.tx = nil
	return nil
}

func (c *conn) MetaData() MetaData { return &metaData{c: c} }

func (c *conn) Close() error {
	if c.closed {
		return nil
	}
	if c.tx != nil {
		c.tx.Rollback()
		c.tx = nil
	}
	c.closed = true
	unregisterConn(c)
	mConnsClosed.Inc()
	if c.release != nil {
		return c.release()
	}
	return nil
}

// stmt is a prepared statement bound to its connection. It shares its
// cache entry — parsed AST plus plan handle — with the connection's
// statement cache, so executions through either path reuse the same plan.
type stmt struct {
	c      *conn
	entry  *cacheEntry
	src    string // original statement text, for spans
	closed bool
}

func (s *stmt) Exec(args ...any) (Result, error) {
	if s.closed {
		return Result{}, fmt.Errorf("godbc: statement is closed")
	}
	if err := s.c.check(); err != nil {
		return Result{}, err
	}
	if !s.c.quiet {
		mExecTotal.Inc()
	}
	entry := sqlexec.Statements.Begin(s.src, "exec")
	defer entry.Finish()
	sp := s.c.startSpan("exec", s.src, len(args))
	res, err := s.c.execParsed(s.entry.st, toValues(args), entry)
	if err != nil && !s.c.quiet {
		mStmtErrors.Inc()
	}
	s.c.finishSpan(sp, err)
	if sp != nil && !s.c.quiet {
		mExecNS.Observe(int64(sp.Total))
	}
	return res, err
}

func (s *stmt) Query(args ...any) (Rows, error) {
	if s.closed {
		return nil, fmt.Errorf("godbc: statement is closed")
	}
	if err := s.c.check(); err != nil {
		return nil, err
	}
	sel, ok := s.entry.st.(*sqlparse.Select)
	if !ok {
		return nil, fmt.Errorf("godbc: Query needs a SELECT statement")
	}
	if !s.c.quiet {
		mQueryTotal.Inc()
	}
	start := time.Now()
	entry := sqlexec.Statements.Begin(s.src, "query")
	defer entry.Finish()
	sp := s.c.startSpan("query", s.src, len(args))
	out, err := s.c.queryPlanned(sel, s.entry.plan, toValues(args), sp, entry)
	if err != nil && !s.c.quiet {
		mStmtErrors.Inc()
	}
	if !s.c.quiet {
		mQueryNS.Observe(int64(time.Since(start)))
	}
	s.c.finishSpan(sp, err)
	return out, err
}

func (s *stmt) Close() error {
	s.closed = true
	return nil
}

// rows is the materialized cursor. Close releases the materialized result
// set (the only resource a fully-buffered cursor holds) and exhausts the
// cursor; it is idempotent, and the column names stay readable afterwards.
type rows struct {
	cols   []string
	data   [][]reldb.Value
	cur    int
	err    error
	closed bool
}

func newRows(rs *sqlexec.ResultSet) *rows {
	return &rows{cols: rs.Cols, data: rs.Rows, cur: -1}
}

func (r *rows) Columns() []string { return r.cols }

func (r *rows) Next() bool {
	if r.closed || r.cur+1 >= len(r.data) {
		return false
	}
	r.cur++
	return true
}

func (r *rows) Value(i int) any {
	if r.cur < 0 || r.cur >= len(r.data) || i < 0 || i >= len(r.data[r.cur]) {
		return nil
	}
	return r.data[r.cur][i].Go()
}

func (r *rows) Err() error { return r.err }

func (r *rows) Close() error {
	r.closed = true
	r.data = nil // release the result set for the GC
	return nil
}

func (r *rows) Scan(dest ...any) error {
	if r.closed {
		return fmt.Errorf("godbc: Scan on closed rows")
	}
	if r.cur < 0 || r.cur >= len(r.data) {
		return fmt.Errorf("godbc: Scan called without Next")
	}
	row := r.data[r.cur]
	if len(dest) != len(row) {
		return fmt.Errorf("godbc: Scan got %d destinations for %d columns", len(dest), len(row))
	}
	for i, d := range dest {
		if err := assign(d, row[i]); err != nil {
			return fmt.Errorf("godbc: column %d (%s): %w", i, r.cols[i], err)
		}
	}
	return nil
}

// assign converts a value into a destination pointer.
func assign(dest any, v reldb.Value) error {
	switch d := dest.(type) {
	case *int64:
		*d = v.AsInt()
	case *int:
		*d = int(v.AsInt())
	case *float64:
		*d = v.AsFloat()
	case *string:
		*d = v.AsString()
	case *bool:
		*d = v.AsBool()
	case *time.Time:
		*d = v.AsTime()
	case *[]byte:
		if v.IsNull() {
			*d = nil
		} else {
			*d = []byte(v.AsString())
		}
	case *any:
		*d = v.Go()
	default:
		return fmt.Errorf("unsupported Scan destination %T", dest)
	}
	return nil
}

// metaData implements schema inspection over a connection.
type metaData struct{ c *conn }

// withRead runs fn in the connection's open transaction when there is one,
// otherwise in a fresh read transaction.
func (m *metaData) withRead(fn func(tx *reldb.Tx) error) error {
	if err := m.c.check(); err != nil {
		return err
	}
	if m.c.tx != nil {
		return fn(m.c.tx)
	}
	return m.c.db.Read(fn)
}

func (m *metaData) Tables() ([]string, error) {
	var names []string
	err := m.withRead(func(tx *reldb.Tx) error {
		names = tx.TableNames()
		return nil
	})
	return names, err
}

func (m *metaData) Columns(table string) ([]ColumnInfo, error) {
	var out []ColumnInfo
	err := m.withRead(func(tx *reldb.Tx) error {
		tbl, err := tx.Table(table)
		if err != nil {
			return err
		}
		s := tbl.Schema()
		for _, col := range s.Columns {
			out = append(out, ColumnInfo{
				Name:          col.Name,
				Type:          col.Type.String(),
				NotNull:       col.NotNull,
				PrimaryKey:    strings.EqualFold(s.PrimaryKey, col.Name),
				AutoIncrement: col.AutoIncrement,
				Default:       col.Default.Go(),
			})
		}
		return nil
	})
	return out, err
}

func (m *metaData) Indexes(table string) ([]IndexInfo, error) {
	var out []IndexInfo
	err := m.withRead(func(tx *reldb.Tx) error {
		tbl, err := tx.Table(table)
		if err != nil {
			return err
		}
		for _, ix := range tbl.Indexes() {
			out = append(out, IndexInfo{
				Name:   ix.Name,
				Column: ix.Column(),
				Kind:   ix.Kind.String(),
				Unique: ix.Unique,
			})
		}
		sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
		return nil
	})
	return out, err
}
