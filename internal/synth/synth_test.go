package synth

import (
	"testing"

	"perfdmf/internal/formats"
	"perfdmf/internal/model"
)

func TestLargeTrialShape(t *testing.T) {
	p := LargeTrial(LargeTrialConfig{Threads: 32, Events: 21, Metrics: 2, Seed: 1})
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	if p.NumThreads() != 32 {
		t.Fatalf("threads: %d", p.NumThreads())
	}
	if len(p.IntervalEvents()) != 21 {
		t.Fatalf("events: %d", len(p.IntervalEvents()))
	}
	if len(p.Metrics()) != 2 {
		t.Fatalf("metrics: %d", len(p.Metrics()))
	}
	// Data points = threads × events × metrics for a dense profile.
	if got := p.DataPoints(); got != 32*21*2 {
		t.Fatalf("datapoints: %d", got)
	}
	// Deterministic for the same seed.
	q := LargeTrial(LargeTrialConfig{Threads: 32, Events: 21, Metrics: 2, Seed: 1})
	e := p.IntervalEvents()[3]
	pd := p.FindThread(7, 0, 0).FindIntervalData(e.ID)
	qd := q.FindThread(7, 0, 0).FindIntervalData(q.FindIntervalEvent(e.Name).ID)
	if pd.PerMetric[0] != qd.PerMetric[0] {
		t.Fatal("not deterministic")
	}
	// Different seeds differ.
	r := LargeTrial(LargeTrialConfig{Threads: 32, Events: 21, Metrics: 2, Seed: 2})
	rd := r.FindThread(7, 0, 0).FindIntervalData(r.FindIntervalEvent(e.Name).ID)
	if pd.PerMetric[0] == rd.PerMetric[0] {
		t.Fatal("seed has no effect")
	}
	// The paper's headline configuration scaled down: the event mix has
	// both MPI and compute groups.
	sawMPI, sawUser := false, false
	for _, e := range p.IntervalEvents() {
		switch e.Group {
		case "MPI":
			sawMPI = true
		case "TAU_USER":
			sawUser = true
		}
	}
	if !sawMPI || !sawUser {
		t.Fatal("event mix lacks MPI or compute groups")
	}
}

func TestScalingSeriesBehaviour(t *testing.T) {
	series := ScalingSeries(ScalingConfig{Procs: []int{1, 4, 16}, Seed: 3})
	if len(series) != 3 {
		t.Fatalf("series: %d", len(series))
	}
	for i, procs := range []int{1, 4, 16} {
		if series[i].NumThreads() != procs {
			t.Fatalf("profile %d threads: %d", i, series[i].NumThreads())
		}
		if err := series[i].Validate(); err != nil {
			t.Fatal(err)
		}
	}
	// A parallel-dominated routine must shrink with p; a comm-dominated
	// routine must grow.
	meanExcl := func(idx int, name string) float64 {
		p := series[idx]
		e := p.FindIntervalEvent(name)
		_, mean, _, ok := p.MinMeanMax(e.ID, 0, false)
		if !ok {
			t.Fatalf("no data for %s", name)
		}
		return mean
	}
	if !(meanExcl(0, "SWEEPX") > meanExcl(1, "SWEEPX") && meanExcl(1, "SWEEPX") > meanExcl(2, "SWEEPX")) {
		t.Error("SWEEPX does not scale down")
	}
	if !(meanExcl(2, "MPI_Alltoall()") > meanExcl(1, "MPI_Alltoall()")) {
		t.Error("MPI_Alltoall does not grow with procs")
	}
}

func TestCounterTrialClasses(t *testing.T) {
	p, assignment := CounterTrial(CounterConfig{Threads: 64, Seed: 4})
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	if len(assignment) != 64 {
		t.Fatalf("assignment: %d", len(assignment))
	}
	if len(p.Metrics()) != 8 { // TIME + 7 PAPI
		t.Fatalf("metrics: %v", p.Metrics())
	}
	// All classes represented, roughly in the configured fractions.
	counts := map[int]int{}
	for _, c := range assignment {
		counts[c]++
	}
	if len(counts) != 3 {
		t.Fatalf("classes present: %v", counts)
	}
	if counts[0] < 20 || counts[1] < 12 || counts[2] < 3 {
		t.Fatalf("class sizes off: %v", counts)
	}
	// FP-heavy ranks must show far higher FP_OPS than io/comm ranks.
	fp := p.MetricID("PAPI_FP_OPS")
	ev := p.FindIntervalEvent("hydro")
	var fpHeavy, ioRank int = -1, -1
	for rank, c := range assignment {
		if c == 0 && fpHeavy < 0 {
			fpHeavy = rank
		}
		if c == 2 && ioRank < 0 {
			ioRank = rank
		}
	}
	a := p.FindThread(fpHeavy, 0, 0).FindIntervalData(ev.ID).PerMetric[fp].Exclusive
	b := p.FindThread(ioRank, 0, 0).FindIntervalData(ev.ID).PerMetric[fp].Exclusive
	if a < 5*b {
		t.Fatalf("class signatures too close: fp-heavy %g vs io %g", a, b)
	}
}

func TestWriteSampleFilesAllParse(t *testing.T) {
	dir := t.TempDir()
	paths, err := WriteSampleFiles(dir, 42)
	if err != nil {
		t.Fatal(err)
	}
	if len(paths) != len(formats.All) {
		t.Fatalf("got %d sample files, want %d", len(paths), len(formats.All))
	}
	for _, format := range formats.All {
		path, ok := paths[format]
		if !ok {
			t.Errorf("no sample for %s", format)
			continue
		}
		p, err := formats.Load(format, path)
		if err != nil {
			t.Errorf("%s: %v", format, err)
			continue
		}
		if p.NumThreads() == 0 || len(p.IntervalEvents()) == 0 {
			t.Errorf("%s: empty profile", format)
		}
		if err := p.Validate(); err != nil {
			t.Errorf("%s: %v", format, err)
		}
		// Auto-detection agrees with the declared format.
		detected, err := formats.Detect(path)
		if err != nil {
			t.Errorf("%s: detect: %v", format, err)
		} else if detected != format {
			t.Errorf("%s detected as %s", format, detected)
		}
	}
}

func TestCallpathTrial(t *testing.T) {
	p := CallpathTrial(CallpathConfig{Threads: 2, Depth: 2, Fanout: 2, Seed: 5})
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	th := p.FindThread(0, 0, 0)
	root, ok := p.CallTree(th, 0)
	if !ok {
		t.Fatal("no call tree")
	}
	if len(root.Children) != 1 || root.Children[0].Name != "main()" {
		t.Fatalf("roots: %+v", root.Children)
	}
	main := root.Children[0]
	if len(main.Children) != 2 {
		t.Fatalf("fanout: %d", len(main.Children))
	}
	// Inclusive accounting: parent inclusive >= sum of children inclusives.
	var check func(n *model.CallNode)
	check = func(n *model.CallNode) {
		sum := 0.0
		for _, c := range n.Children {
			sum += c.Inclusive
			check(c)
		}
		if n.Inclusive < sum-1e-6 {
			t.Fatalf("node %s: inclusive %g < children %g", n.Path, n.Inclusive, sum)
		}
	}
	check(main)
	if hot := model.HotPath(root); len(hot) != 3 { // main + 2 levels
		t.Fatalf("hot path length: %d", len(hot))
	}
}
