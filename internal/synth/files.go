package synth

import (
	"fmt"
	"math/rand"
	"os"
	"path/filepath"

	"perfdmf/internal/formats"
	"perfdmf/internal/formats/dynaprof"
	"perfdmf/internal/formats/gprof"
	"perfdmf/internal/formats/hpm"
	"perfdmf/internal/formats/mpip"
	"perfdmf/internal/formats/psrun"
	"perfdmf/internal/formats/sppm"
	"perfdmf/internal/formats/tau"
	"perfdmf/internal/formats/xmlprof"
	"perfdmf/internal/model"
)

// WriteSampleFiles generates one realistic dataset per supported profile
// format under dir, in each tool's own on-disk format. The result maps
// format name (formats.TAU, ...) to the path Load should be given. This is
// the data source for E2 (six-format import) and examples/multiformat.
func WriteSampleFiles(dir string, seed int64) (map[string]string, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	out := make(map[string]string)

	// TAU: 4 ranks, multi-metric.
	tauProfile := LargeTrial(LargeTrialConfig{Threads: 4, Events: 12, Metrics: 2, Seed: seed})
	tauDir := filepath.Join(dir, "tau-run")
	if err := tau.Write(tauDir, tauProfile); err != nil {
		return nil, err
	}
	out[formats.TAU] = tauDir

	// gprof: single process.
	gp := singleProcessProfile("gprof-app", seed+1)
	gPath := filepath.Join(dir, "gprof.txt")
	if err := gprof.Write(gPath, gp); err != nil {
		return nil, err
	}
	out[formats.Gprof] = gPath

	// mpiP: 4 ranks with an Application event and MPI callsites.
	mp := mpiProfile(4, seed+2)
	mPath := filepath.Join(dir, "app.4.mpiP")
	if err := mpip.Write(mPath, mp); err != nil {
		return nil, err
	}
	out[formats.MpiP] = mPath

	// dynaprof: single process, cycle counter.
	dp := singleProcessProfile("dynaprof-app", seed+3)
	dPath := filepath.Join(dir, "dynaprof.out")
	if err := dynaprof.Write(dPath, dp, 0); err != nil {
		return nil, err
	}
	out[formats.Dynaprof] = dPath

	// HPMToolkit: counter sections.
	hp := hpmProfile(seed + 4)
	hPath := filepath.Join(dir, "app.hpm0_node0")
	if err := hpm.Write(hPath, hp, 0); err != nil {
		return nil, err
	}
	out[formats.HPM] = hPath

	// psrun: whole-program counters.
	pp := psrunProfile(seed + 5)
	pPath := filepath.Join(dir, "psrun.0.xml")
	if err := psrun.Write(pPath, pp, 0); err != nil {
		return nil, err
	}
	out[formats.Psrun] = pPath

	// sPPM self-instrumented table, 8 ranks.
	sp, _ := CounterTrial(CounterConfig{Threads: 8, Seed: seed + 6})
	sPath := filepath.Join(dir, "sppm-timing.txt")
	if err := sppm.Write(sPath, sp); err != nil {
		return nil, err
	}
	out[formats.SPPM] = sPath

	// Common XML export of the TAU profile.
	xPath := filepath.Join(dir, "trial.xml")
	if err := xmlprof.Write(xPath, tauProfile); err != nil {
		return nil, err
	}
	out[formats.XML] = xPath
	return out, nil
}

// singleProcessProfile builds a small one-thread TIME profile with a
// proper call-tree shape (main includes everything).
func singleProcessProfile(name string, seed int64) *model.Profile {
	rng := rand.New(rand.NewSource(seed))
	p := model.New(name)
	m := p.AddMetric("TIME")
	th := p.Thread(0, 0, 0)
	kernels := []string{"solve", "assemble", "update_halo", "io_dump", "checkpoint"}
	sum := 0.0
	for i, k := range kernels {
		e := p.AddIntervalEvent(k, "APP")
		d := th.IntervalData(e.ID, 1)
		d.NumCalls = float64(10 * (i + 1))
		excl := (0.2 + rng.Float64()) * secondsToMicro
		d.PerMetric[m] = model.MetricData{Inclusive: excl, Exclusive: excl}
		sum += excl
	}
	main := p.AddIntervalEvent("main", "APP")
	d := th.IntervalData(main.ID, 1)
	d.NumCalls = 1
	d.NumSubrs = float64(len(kernels))
	d.PerMetric[m] = model.MetricData{Inclusive: sum * 1.05, Exclusive: sum * 0.05}
	return p
}

// mpiProfile builds a profile in the shape mpip.Write expects: a per-rank
// Application event plus MPI-group callsite events.
func mpiProfile(ranks int, seed int64) *model.Profile {
	rng := rand.New(rand.NewSource(seed))
	p := model.New("mpi-app")
	m := p.AddMetric(mpip.MetricName)
	app := p.AddIntervalEvent(mpip.AppEventName, "APPLICATION")
	send := p.AddIntervalEvent("MPI_Send()", "MPI")
	recv := p.AddIntervalEvent("MPI_Recv()", "MPI")
	wait := p.AddIntervalEvent("MPI_Waitall()", "MPI")
	for rank := 0; rank < ranks; rank++ {
		th := p.Thread(rank, 0, 0)
		mpiTotal := 0.0
		for i, e := range []*model.IntervalEvent{send, recv, wait} {
			d := th.IntervalData(e.ID, 1)
			d.NumCalls = float64(100 * (i + 1))
			t := (0.5 + rng.Float64()) * secondsToMicro
			d.PerMetric[m] = model.MetricData{Inclusive: t, Exclusive: t}
			mpiTotal += t
		}
		d := th.IntervalData(app.ID, 1)
		d.NumCalls = 1
		appTime := mpiTotal + (5+rng.Float64())*secondsToMicro
		d.PerMetric[m] = model.MetricData{Inclusive: appTime, Exclusive: appTime - mpiTotal}
	}
	return p
}

// hpmProfile builds a profile in the shape hpm.Write expects: sections
// with WALL_CLOCK_TIME and PM_* counters.
func hpmProfile(seed int64) *model.Profile {
	rng := rand.New(rand.NewSource(seed))
	p := model.New("hpm-app")
	tm := p.AddMetric(hpm.TimeMetric)
	counters := []string{"PM_FPU0_CMPL", "PM_FPU1_CMPL", "PM_CYC", "PM_LD_MISS_L1"}
	for _, c := range counters {
		p.AddMetric(c)
	}
	th := p.Thread(0, 0, 0)
	nm := 1 + len(counters)
	for i, label := range []string{"main", "solver", "exchange"} {
		e := p.AddIntervalEvent(label, "HPM")
		d := th.IntervalData(e.ID, nm)
		d.NumCalls = float64(1 + i*10)
		t := (1 + rng.Float64()*10) * secondsToMicro
		d.PerMetric[tm] = model.MetricData{Inclusive: t, Exclusive: t}
		for j := range counters {
			v := float64(int64((1 + rng.Float64()) * 1e8 * float64(j+1)))
			d.PerMetric[j+1] = model.MetricData{Inclusive: v, Exclusive: v}
		}
	}
	return p
}

// psrunProfile builds a whole-program counter profile for psrun.Write.
func psrunProfile(seed int64) *model.Profile {
	rng := rand.New(rand.NewSource(seed))
	p := model.New("psrun-app")
	tm := p.AddMetric(psrun.TimeMetric)
	e := p.AddIntervalEvent(psrun.EventName, "PSRUN")
	th := p.Thread(0, 0, 0)
	names := []string{"PAPI_TOT_CYC", "PAPI_FP_OPS", "PAPI_L1_DCM"}
	nm := 1 + len(names)
	d := th.IntervalData(e.ID, nm)
	d.NumCalls = 1
	t := (30 + rng.Float64()*30) * secondsToMicro
	d.PerMetric[tm] = model.MetricData{Inclusive: t, Exclusive: t}
	for i, n := range names {
		p.AddMetric(n)
		v := float64(int64((1 + rng.Float64()) * 1e9))
		d.PerMetric[i+1] = model.MetricData{Inclusive: v, Exclusive: v}
	}
	return p
}

// Describe returns a one-line summary of a profile, used by the CLI tools.
func Describe(p *model.Profile) string {
	return fmt.Sprintf("%s: %d threads, %d events, %d metrics, %d data points",
		p.Name, p.NumThreads(), len(p.IntervalEvents()), len(p.Metrics()), p.DataPoints())
}
