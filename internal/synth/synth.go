// Package synth generates synthetic parallel profiles that stand in for
// the paper's evaluation datasets (see DESIGN.md §1): a Miranda-like
// large-scale trial (101 events × 16K threads, §5.3), an EVH1-like
// strong-scaling series for the speedup analyzer (§5.2), and an sPPM-like
// multi-counter trial with planted behaviour classes for PerfExplorer
// clustering (§5.3, Ahn & Vetter's analysis). All generators are
// deterministic for a given seed.
package synth

import (
	"fmt"
	"math"
	"math/rand"

	"perfdmf/internal/model"
)

// secondsToMicro converts seconds to the model's canonical microseconds.
const secondsToMicro = 1e6

// LargeTrialConfig shapes a Miranda-like trial.
type LargeTrialConfig struct {
	Threads int   // number of threads of execution (paper: up to 16384)
	Events  int   // instrumented events (paper: "over one hundred", 101)
	Metrics int   // metrics; Miranda had 1 (wall clock)
	Seed    int64 // RNG seed
}

// LargeTrial builds a flat profile of the configured size. Event 0 is the
// application timer whose inclusive value spans the run; the remaining
// events split the time with a Zipf-like distribution plus per-thread
// noise, and a block of "MPI_*" events carries rank-dependent communication
// time so downstream analyses see realistic structure.
func LargeTrial(cfg LargeTrialConfig) *model.Profile {
	if cfg.Threads <= 0 || cfg.Events <= 1 {
		panic("synth: LargeTrial needs at least 1 thread and 2 events")
	}
	if cfg.Metrics <= 0 {
		cfg.Metrics = 1
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	p := model.New(fmt.Sprintf("miranda-like-%dp-%de", cfg.Threads, cfg.Events))
	p.Meta["generator"] = "synth.LargeTrial"
	p.Meta["threads"] = fmt.Sprint(cfg.Threads)

	metricNames := []string{"TIME", "PAPI_TOT_CYC", "PAPI_FP_OPS", "PAPI_L1_DCM",
		"PAPI_L2_DCM", "PAPI_TOT_INS", "PAPI_BR_MSP"}
	for m := 0; m < cfg.Metrics; m++ {
		name := fmt.Sprintf("METRIC_%d", m)
		if m < len(metricNames) {
			name = metricNames[m]
		}
		p.AddMetric(name)
	}

	app := p.AddIntervalEvent(".TAU application", "TAU_DEFAULT")
	events := make([]*model.IntervalEvent, 0, cfg.Events-1)
	// Zipf-ish weights for how the run time is distributed across events.
	weights := make([]float64, cfg.Events-1)
	totalW := 0.0
	for i := range weights {
		var name, group string
		if i%5 == 4 {
			name = fmt.Sprintf("MPI_Op_%d()", i/5)
			group = "MPI"
		} else {
			name = fmt.Sprintf("compute_kernel_%d [{miranda.f90} {%d}]", i, 100+3*i)
			group = "TAU_USER"
		}
		events = append(events, p.AddIntervalEvent(name, group))
		weights[i] = 1.0 / float64(i+1)
		totalW += weights[i]
	}

	const wallSeconds = 900.0 // a 15-minute run
	nm := cfg.Metrics
	for rank := 0; rank < cfg.Threads; rank++ {
		th := p.Thread(rank, 0, 0)
		// Per-rank noise and a mild rank-position skew (boundary ranks do
		// less halo exchange).
		skew := 1 + 0.05*math.Sin(2*math.Pi*float64(rank)/float64(cfg.Threads))
		noise := 1 + 0.02*rng.NormFloat64()
		if noise < 0.9 {
			noise = 0.9
		}
		wall := wallSeconds * secondsToMicro * skew * noise

		appData := th.IntervalData(app.ID, nm)
		appData.NumCalls = 1
		appData.NumSubrs = float64(len(events))

		sumExcl := make([]float64, nm)
		for i, e := range events {
			d := th.IntervalData(e.ID, nm)
			d.NumCalls = float64(10 * (i%13 + 1))
			share := weights[i] / totalW
			jitter := 1 + 0.1*rng.NormFloat64()
			if jitter < 0.5 {
				jitter = 0.5
			}
			excl := 0.95 * wall * share * jitter
			for m := 0; m < nm; m++ {
				scale := 1.0
				if m > 0 {
					// Counters scale with time at a per-event rate.
					scale = float64(1000*(m+i%7)) + 1
				}
				d.PerMetric[m] = model.MetricData{
					Inclusive: excl * scale,
					Exclusive: excl * scale,
				}
				sumExcl[m] += excl * scale
			}
		}
		for m := 0; m < nm; m++ {
			incl := sumExcl[m] * 1.02 // a little time outside instrumented events
			appData.PerMetric[m] = model.MetricData{
				Inclusive: incl,
				Exclusive: incl - sumExcl[m],
			}
		}
	}
	return p
}

// ScalingConfig shapes an EVH1-like strong-scaling study.
type ScalingConfig struct {
	Procs []int // processor counts, e.g. 1,2,4,...,64
	Seed  int64
	// Routines defaults to a realistic EVH1-like set when nil.
	Routines []ScalingRoutine
}

// ScalingRoutine models one routine's strong-scaling behaviour:
// T(p) = Serial + Parallel/p + Comm·log2(p), in seconds, with per-thread
// noise. Amdahl's law in miniature — the speedup analyzer should find the
// communication-bound routines flattening out.
type ScalingRoutine struct {
	Name     string
	Group    string
	Serial   float64
	Parallel float64
	Comm     float64
	Calls    float64
}

// DefaultEVH1Routines is the routine mix used when ScalingConfig.Routines
// is nil: hydro sweeps dominated by parallel work, Riemann solves with a
// small serial part, boundary exchange dominated by communication.
func DefaultEVH1Routines() []ScalingRoutine {
	return []ScalingRoutine{
		{Name: "SWEEPX", Group: "HYDRO", Serial: 0.5, Parallel: 220, Comm: 0.00, Calls: 400},
		{Name: "SWEEPY", Group: "HYDRO", Serial: 0.5, Parallel: 210, Comm: 0.00, Calls: 400},
		{Name: "RIEMANN", Group: "HYDRO", Serial: 2.0, Parallel: 160, Comm: 0.00, Calls: 4800},
		{Name: "PARABOLA", Group: "HYDRO", Serial: 0.2, Parallel: 90, Comm: 0.00, Calls: 4800},
		{Name: "REMAP", Group: "HYDRO", Serial: 0.3, Parallel: 70, Comm: 0.00, Calls: 800},
		{Name: "MPI_Alltoall()", Group: "MPI", Serial: 0.05, Parallel: 0, Comm: 1.8, Calls: 400},
		{Name: "MPI_Allreduce()", Group: "MPI", Serial: 0.1, Parallel: 0, Comm: 0.9, Calls: 430},
		{Name: "BOUNDARY", Group: "HYDRO", Serial: 0.1, Parallel: 4, Comm: 0.35, Calls: 800},
	}
}

// ScalingSeries builds one profile per processor count. Each profile's
// metadata records the count, and node_count reflects it so the trial rows
// uploaded by core carry the right processor counts for analysis.Speedup.
func ScalingSeries(cfg ScalingConfig) []*model.Profile {
	routines := cfg.Routines
	if routines == nil {
		routines = DefaultEVH1Routines()
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	var out []*model.Profile
	for _, procs := range cfg.Procs {
		p := model.New(fmt.Sprintf("evh1-like-%dp", procs))
		p.Meta["generator"] = "synth.ScalingSeries"
		p.Meta["procs"] = fmt.Sprint(procs)
		p.AddMetric("TIME")
		main := p.AddIntervalEvent("MAIN", "EVH1")
		evs := make([]*model.IntervalEvent, len(routines))
		for i, r := range routines {
			evs[i] = p.AddIntervalEvent(r.Name, r.Group)
		}
		logp := math.Log2(float64(procs))
		if procs == 1 {
			logp = 0
		}
		for rank := 0; rank < procs; rank++ {
			th := p.Thread(rank, 0, 0)
			sum := 0.0
			for i, r := range routines {
				t := r.Serial + r.Parallel/float64(procs) + r.Comm*logp
				t *= 1 + 0.03*rng.NormFloat64()
				if t < 0 {
					t = 0
				}
				micro := t * secondsToMicro
				d := th.IntervalData(evs[i].ID, 1)
				d.NumCalls = r.Calls
				d.PerMetric[0] = model.MetricData{Inclusive: micro, Exclusive: micro}
				sum += micro
			}
			d := th.IntervalData(main.ID, 1)
			d.NumCalls = 1
			d.NumSubrs = float64(len(routines))
			d.PerMetric[0] = model.MetricData{Inclusive: sum * 1.01, Exclusive: sum * 0.01}
		}
		out = append(out, p)
	}
	return out
}

// CounterConfig shapes an sPPM-like multi-counter trial with planted
// behaviour classes.
type CounterConfig struct {
	Threads int
	Seed    int64
	// Classes defaults to the three-way split Ahn & Vetter observed in
	// sPPM (floating-point heavy, memory bound, communication bound).
	Classes []BehaviourClass
}

// BehaviourClass is one planted cluster: a fraction of ranks whose events
// carry a distinctive counter signature. Signature values are per-second
// rates for each of the seven PAPI metrics.
type BehaviourClass struct {
	Name      string
	Fraction  float64
	Signature [7]float64
}

// PAPIMetrics are the seven hardware counters collected in the paper's
// sPPM study ("up to 7 PAPI hardware counters were collected at a time").
var PAPIMetrics = [7]string{
	"PAPI_FP_OPS", "PAPI_TOT_CYC", "PAPI_TOT_INS", "PAPI_L1_DCM",
	"PAPI_L2_DCM", "PAPI_TLB_DM", "PAPI_BR_MSP",
}

// DefaultSPPMClasses reproduces a three-cluster structure like the one
// PerfExplorer found in sPPM: distinct floating-point behaviour between
// rank groups.
func DefaultSPPMClasses() []BehaviourClass {
	return []BehaviourClass{
		{
			Name: "fp-heavy", Fraction: 0.5,
			Signature: [7]float64{9.0e8, 1.4e9, 1.6e9, 2.0e6, 4.0e5, 9.0e3, 1.0e6},
		},
		{
			Name: "memory-bound", Fraction: 0.375,
			Signature: [7]float64{2.5e8, 1.4e9, 9.0e8, 2.4e7, 6.0e6, 8.0e4, 2.5e6},
		},
		{
			Name: "io-and-comm", Fraction: 0.125,
			Signature: [7]float64{4.0e7, 1.2e9, 4.0e8, 5.0e6, 1.2e6, 3.0e4, 7.0e6},
		},
	}
}

// CounterTrial builds an sPPM-like trial: TIME plus seven PAPI metrics for
// a handful of routines, with each rank assigned to a behaviour class. The
// returned assignment maps rank to class index, for verifying a clustering
// run (E4 checks recovered clusters against this ground truth).
func CounterTrial(cfg CounterConfig) (*model.Profile, []int) {
	if cfg.Threads <= 0 {
		panic("synth: CounterTrial needs threads")
	}
	classes := cfg.Classes
	if classes == nil {
		classes = DefaultSPPMClasses()
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	p := model.New(fmt.Sprintf("sppm-like-%dp", cfg.Threads))
	p.Meta["generator"] = "synth.CounterTrial"
	p.AddMetric("TIME")
	for _, m := range PAPIMetrics {
		p.AddMetric(m)
	}
	nm := 1 + len(PAPIMetrics)
	routines := []struct {
		name  string
		share float64
	}{
		{"sppm", 0.05}, {"hydro", 0.35}, {"sweep", 0.30},
		{"interf", 0.20}, {"difuze", 0.10},
	}
	evs := make([]*model.IntervalEvent, len(routines))
	for i, r := range routines {
		evs[i] = p.AddIntervalEvent(r.name, "SPPM")
	}

	// Deterministic class assignment by fraction, interleaved so cluster
	// membership is not a trivial function of rank order.
	assignment := make([]int, cfg.Threads)
	bounds := make([]float64, len(classes))
	acc := 0.0
	for i, c := range classes {
		acc += c.Fraction
		bounds[i] = acc
	}
	for rank := 0; rank < cfg.Threads; rank++ {
		u := float64((rank*2654435761)%1000) / 1000.0 // hashed position in [0,1)
		cls := len(classes) - 1
		for i, b := range bounds {
			if u < b {
				cls = i
				break
			}
		}
		assignment[rank] = cls
	}

	const wall = 600.0 // seconds
	for rank := 0; rank < cfg.Threads; rank++ {
		th := p.Thread(rank, 0, 0)
		sig := classes[assignment[rank]].Signature
		for i, r := range routines {
			d := th.IntervalData(evs[i].ID, nm)
			d.NumCalls = 100
			t := wall * r.share * (1 + 0.02*rng.NormFloat64())
			micro := t * secondsToMicro
			d.PerMetric[0] = model.MetricData{Inclusive: micro, Exclusive: micro}
			for m, rate := range sig {
				// Per-routine tilt keeps events distinguishable while the
				// rank's class signature dominates.
				tilt := 1 + 0.1*float64(i)/float64(len(routines))
				v := rate * t * tilt * (1 + 0.03*rng.NormFloat64())
				if v < 0 {
					v = 0
				}
				d.PerMetric[m+1] = model.MetricData{Inclusive: v, Exclusive: v}
			}
		}
	}
	return p, assignment
}

// CallpathConfig shapes a TAU-style callpath trial.
type CallpathConfig struct {
	Threads int
	Depth   int // call-tree depth below main (default 3)
	Fanout  int // children per node (default 3)
	Seed    int64
}

// CallpathTrial builds a profile in TAU callpath form: flat events plus
// TAU_CALLPATH events whose names are full "a => b => c" paths, with
// consistent inclusive/exclusive accounting. It exercises the model's
// call-tree reconstruction and the trialbrowser -calltree view.
func CallpathTrial(cfg CallpathConfig) *model.Profile {
	if cfg.Depth <= 0 {
		cfg.Depth = 3
	}
	if cfg.Fanout <= 0 {
		cfg.Fanout = 3
	}
	if cfg.Threads <= 0 {
		cfg.Threads = 1
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	p := model.New(fmt.Sprintf("callpath-%dd%df", cfg.Depth, cfg.Fanout))
	p.Meta["generator"] = "synth.CallpathTrial"
	m := p.AddMetric("TIME")

	// One deterministic tree shared by all threads; per-thread jitter on
	// the values only.
	type frame struct {
		path  string
		name  string
		depth int
	}
	var frames []frame
	var build func(path string, depth int)
	build = func(path string, depth int) {
		frames = append(frames, frame{path: path, name: model.CallpathLeaf(path), depth: depth})
		if depth == cfg.Depth {
			return
		}
		for c := 0; c < cfg.Fanout; c++ {
			build(fmt.Sprintf("%s => fn_%d_%d()", path, depth+1, c), depth+1)
		}
	}
	build("main()", 0)

	for rank := 0; rank < cfg.Threads; rank++ {
		th := p.Thread(rank, 0, 0)
		// Assign exclusive time per frame, then roll up inclusives bottom-up
		// (frames are in preorder; accumulate via a map keyed by path).
		excl := make(map[string]float64, len(frames))
		incl := make(map[string]float64, len(frames))
		for _, f := range frames {
			excl[f.path] = (1 + rng.Float64()) * secondsToMicro / float64(f.depth+1)
		}
		for i := len(frames) - 1; i >= 0; i-- {
			f := frames[i]
			incl[f.path] += excl[f.path]
			if parent := model.CallpathParent(f.path); parent != "" {
				incl[parent] += incl[f.path]
			}
		}
		flat := make(map[string]float64)
		flatIncl := make(map[string]float64)
		for _, f := range frames {
			group := "TAU_CALLPATH"
			if f.depth == 0 {
				group = "TAU_DEFAULT"
			}
			e := p.AddIntervalEvent(f.path, group)
			d := th.IntervalData(e.ID, 1)
			d.NumCalls = float64(1 + f.depth*2)
			d.PerMetric[m] = model.MetricData{Inclusive: incl[f.path], Exclusive: excl[f.path]}
			// A frame name can occur under several parents; the flat event
			// aggregates all occurrences. The subtrees are disjoint (no
			// recursion in the generated tree), so inclusives sum too.
			flat[f.name] += excl[f.path]
			flatIncl[f.name] += incl[f.path]
		}
		// Flat events for every distinct frame name (skipping main, which
		// is already flat at depth 0).
		for name, ex := range flat {
			if name == "main()" {
				continue
			}
			e := p.AddIntervalEvent(name, "TAU_USER")
			d := th.IntervalData(e.ID, 1)
			d.NumCalls = 1
			d.PerMetric[m] = model.MetricData{Inclusive: flatIncl[name], Exclusive: ex}
		}
	}
	return p
}
