package reldb

import (
	"fmt"
	"runtime"
	"sync"
	"testing"
	"time"
)

// segSchema is a one-table schema exercising every segment encoding:
// a dense ascending int (frame-of-reference packable), a long-run int
// (RLE), a wide-range int (raw int64), a float, a low-NDV string
// (dictionary) and a high-NDV string (raw), all nullable except id.
func segSchema() *Schema {
	return &Schema{
		Name: "seg",
		Columns: []Column{
			{Name: "id", Type: TInt, AutoIncrement: true},
			{Name: "run", Type: TInt},
			{Name: "wide", Type: TInt},
			{Name: "x", Type: TFloat},
			{Name: "ev", Type: TString},
			{Name: "uniq", Type: TString},
		},
		PrimaryKey: "id",
	}
}

// segFixture seeds nrows rows with deterministic values and periodic NULLs.
func segFixture(t testing.TB, nrows int) *DB {
	t.Helper()
	db := NewMemory()
	mustSegWrite(t, db, func(tx *Tx) error {
		if err := tx.CreateTable(segSchema()); err != nil {
			return err
		}
		for i := 0; i < nrows; i++ {
			row := Row{
				Null,
				Int(int64(i / 97)),             // long runs -> RLE
				Int(int64(i) * 3_000_000_000),  // > int32 range -> raw int64
				Float(float64(i) / 7.0),        // floats
				Str(fmt.Sprintf("ev%d", i%11)), // 11 distinct -> dict
				Str(fmt.Sprintf("uniq-%d", i)), // all distinct, raw via hint
			}
			if i%13 == 0 {
				row[1], row[3], row[4] = Null, Null, Null
			}
			if _, err := tx.Insert("seg", row); err != nil {
				return err
			}
		}
		return nil
	})
	return db
}

func mustSegWrite(t testing.TB, db *DB, fn func(tx *Tx) error) {
	t.Helper()
	if err := db.Write(fn); err != nil {
		t.Fatal(err)
	}
}

// buildSet force-builds the fixture's segment set with an NDV hint that
// pushes uniq past the dictionary bound.
func buildSet(t testing.TB, db *DB, nrows int) *SegmentSet {
	t.Helper()
	var set *SegmentSet
	if err := db.Read(func(tx *Tx) error {
		n, err := tx.BuildColumnSegments("seg", map[string]int{"uniq": nrows})
		if err != nil {
			return err
		}
		if n != nrows {
			t.Errorf("BuildColumnSegments encoded %d rows, want %d", n, nrows)
		}
		set = tx.ColumnSegments("seg", nil)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if set == nil {
		t.Fatal("no fresh segment set after an explicit build")
	}
	return set
}

// TestSegmentEncodingsRoundTrip pins the encoding choices and checks that
// every access path — ValueAt, the block decoders and the gather kernels —
// reproduces the stored values exactly, NULLs included.
func TestSegmentEncodingsRoundTrip(t *testing.T) {
	const nrows = 5000
	db := segFixture(t, nrows)
	set := buildSet(t, db, nrows)
	if set.Rows() != nrows {
		t.Fatalf("set.Rows() = %d, want %d", set.Rows(), nrows)
	}

	wantEnc := map[int]string{
		1: "rle",     // run: 97-long runs
		2: "int64",   // wide: range exceeds int32 packing
		3: "float64", // x
		4: "dict",    // ev: 11 distinct values
		5: "string",  // uniq: NDV hint disables the dictionary
	}
	for ci, want := range wantEnc {
		seg := set.Col(ci)
		if seg == nil {
			t.Fatalf("column %d not vectorized", ci)
		}
		if got := seg.Encoding(); got != want {
			t.Errorf("column %d encoding = %s, want %s", ci, got, want)
		}
	}
	// id is NOT NULL ascending from 1: packs into int32 deltas.
	if got := set.Col(0).Encoding(); got != "int32-for" {
		t.Errorf("id encoding = %s, want int32-for", got)
	}
	if set.Col(4).Dict() == nil || len(set.Col(4).Dict()) != 11 {
		t.Errorf("ev dictionary = %v, want 11 entries", set.Col(4).Dict())
	}

	// Row-by-row: ValueAt must equal what the row store holds.
	if err := db.Read(func(tx *Tx) error {
		tbl, err := tx.Table("seg")
		if err != nil {
			return err
		}
		for i := 0; i < set.Rows(); i++ {
			row := tbl.RowAt(set.Slot(i))
			for ci := 0; ci < 6; ci++ {
				got, want := set.Col(ci).ValueAt(i), row[ci]
				if Compare(got, want) != 0 || got.T != want.T {
					t.Fatalf("row %d col %d: ValueAt = %#v, row store %#v", i, ci, got, want)
				}
			}
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}

	// Block decode and gather must agree with ValueAt on every encoding.
	sel := make([]int32, 0, nrows/3)
	for i := 0; i < nrows; i += 3 {
		sel = append(sel, int32(i))
	}
	for _, ci := range []int{0, 1, 2} {
		seg := set.Col(ci)
		dst := make([]int64, nrows)
		seg.DecodeInts(0, nrows, dst)
		for i, v := range dst {
			if seg.Valid(i) && v != seg.IntAt(i) {
				t.Fatalf("col %d DecodeInts[%d] = %d, IntAt = %d", ci, i, v, seg.IntAt(i))
			}
		}
		g := make([]int64, len(sel))
		seg.GatherInts(sel, g)
		for i, r := range sel {
			if seg.Valid(int(r)) && g[i] != seg.IntAt(int(r)) {
				t.Fatalf("col %d GatherInts[%d] = %d, IntAt(%d) = %d", ci, i, g[i], r, seg.IntAt(int(r)))
			}
		}
	}
	gs := make([]string, len(sel))
	for _, ci := range []int{4, 5} {
		set.Col(ci).GatherStrs(sel, gs)
		for i, r := range sel {
			if set.Col(ci).Valid(int(r)) && gs[i] != set.Col(ci).StrAt(int(r)) {
				t.Fatalf("col %d GatherStrs[%d] = %q, StrAt = %q", ci, i, gs[i], set.Col(ci).StrAt(int(r)))
			}
		}
	}
}

// TestSegmentLazyBuildHeuristic pins the read-mostly trigger: no set until
// segmentBuildAfter eligible reads accumulate, any DML resets the counter
// and invalidates a published set.
func TestSegmentLazyBuildHeuristic(t *testing.T) {
	db := segFixture(t, 200)
	if err := db.Read(func(tx *Tx) error {
		for i := 1; i < segmentBuildAfter; i++ {
			if set := tx.ColumnSegments("seg", nil); set != nil {
				t.Fatalf("segment set built after only %d reads", i)
			}
		}
		if set := tx.ColumnSegments("seg", nil); set == nil {
			t.Fatalf("no segment set after %d eligible reads", segmentBuildAfter)
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}

	// DML invalidates: the stale set must never be returned as fresh.
	mustSegWrite(t, db, func(tx *Tx) error {
		_, err := tx.Insert("seg", Row{Null, Int(1), Int(2), Float(3), Str("ev0"), Str("u")})
		return err
	})
	if err := db.Read(func(tx *Tx) error {
		if set := tx.ColumnSegments("seg", nil); set != nil {
			t.Fatal("stale segment set returned after DML")
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
}

// TestScanColumnsPartitions: partition ranges must tile [0, rows) in order
// with no gaps, and a missing column must force the row-path fallback.
func TestScanColumnsPartitions(t *testing.T) {
	const nrows = 1000
	db := segFixture(t, nrows)
	buildSet(t, db, nrows)
	if err := db.Read(func(tx *Tx) error {
		next := 0
		parts := 0
		ok, err := tx.ScanColumns("seg", []int{0, 3, 4}, 7, func(part, lo, hi int, set *SegmentSet) {
			if part != parts {
				t.Fatalf("partition %d delivered out of order (want %d)", part, parts)
			}
			if lo != next || hi <= lo {
				t.Fatalf("partition %d = [%d,%d), want lo %d", part, lo, hi, next)
			}
			next = hi
			parts++
		})
		if err != nil {
			return err
		}
		if !ok || parts != 7 || next != nrows {
			t.Fatalf("ScanColumns ok=%v parts=%d covered=%d, want true/7/%d", ok, parts, next, nrows)
		}
		bad, err := tx.ScanColumns("seg", []int{99}, 4, func(int, int, int, *SegmentSet) {
			t.Fatal("callback ran for an uncovered column")
		})
		if err != nil {
			return err
		}
		if bad {
			t.Fatal("ScanColumns claimed coverage of a nonexistent column")
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
}

// TestSegmentLifecycleRace is the -race lifecycle check: readers hold and
// traverse sealed snapshots (and trigger rebuilds) while a writer issues
// invalidating DML. A snapshot captured before an invalidation must stay
// internally consistent — same row count, same values — because sets are
// sealed, and afterwards the goroutine count must return to baseline.
func TestSegmentLifecycleRace(t *testing.T) {
	const nrows = 2000
	db := segFixture(t, nrows)
	buildSet(t, db, nrows)
	baseline := runtime.NumGoroutine()

	var wg sync.WaitGroup
	stop := make(chan struct{})
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				if err := db.Read(func(tx *Tx) error {
					set := tx.ColumnSegments("seg", nil)
					if set == nil {
						// Invalidated mid-churn: force a rebuild of the
						// current state, as COMPACT would.
						if _, err := tx.BuildColumnSegments("seg", nil); err != nil {
							return err
						}
						set = tx.ColumnSegments("seg", nil)
					}
					if set == nil {
						return fmt.Errorf("no set after explicit build")
					}
					// Traverse the sealed snapshot end to end; a torn set
					// would fault or disagree with its own row count.
					n := set.Rows()
					var live int
					for i := 0; i < n; i++ {
						if set.Col(4).Valid(i) {
							live++
						}
						_ = set.Col(0).IntAt(i)
						_ = set.Col(3).ValueAt(i)
					}
					if live > n {
						return fmt.Errorf("validity overcount: %d of %d", live, n)
					}
					return nil
				}); err != nil {
					t.Error(err)
					return
				}
			}
		}()
	}

	for i := 0; i < 60; i++ {
		mustSegWrite(t, db, func(tx *Tx) error {
			_, err := tx.Insert("seg", Row{
				Null, Int(int64(i)), Int(int64(i) * 4_000_000_000),
				Float(float64(i)), Str("ev-new"), Str(fmt.Sprintf("u-%d", i)),
			})
			return err
		})
	}
	close(stop)
	wg.Wait()

	deadline := time.Now().Add(5 * time.Second)
	for runtime.NumGoroutine() > baseline+2 {
		if time.Now().After(deadline) {
			t.Fatalf("goroutines leaked: baseline %d, now %d", baseline, runtime.NumGoroutine())
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestSegmentBuildConcurrentReaders: many readers force-building at once
// must converge on one published set per data version (builders serialize
// on segMu), never a torn or duplicate build racing the atomic publish.
func TestSegmentBuildConcurrentReaders(t *testing.T) {
	const nrows = 800
	db := segFixture(t, nrows)
	var wg sync.WaitGroup
	for r := 0; r < 8; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if err := db.Read(func(tx *Tx) error {
				n, err := tx.BuildColumnSegments("seg", nil)
				if err != nil {
					return err
				}
				if n != nrows {
					return fmt.Errorf("build saw %d rows, want %d", n, nrows)
				}
				return nil
			}); err != nil {
				t.Error(err)
			}
		}()
	}
	wg.Wait()
}
