package reldb

import (
	"testing"
	"time"
)

func TestHealthMemory(t *testing.T) {
	db := NewMemory()
	h := db.Health()
	if !h.Open || h.Durable || !h.WALWritable || h.WALError != "" {
		t.Fatalf("memory health = %+v", h)
	}
	if !h.LastCheckpoint.IsZero() || h.CheckpointAge(time.Now()) != 0 {
		t.Fatalf("memory db reports a checkpoint: %+v", h)
	}
	if err := db.Write(func(tx *Tx) error {
		return tx.CreateTable(&Schema{Name: "t", Columns: []Column{{Name: "id", Type: TInt}}})
	}); err != nil {
		t.Fatal(err)
	}
	if h := db.Health(); h.Tables != 1 || h.WALOpsPending != 0 {
		t.Fatalf("health after DDL = %+v", h)
	}
	db.Close()
	if h := db.Health(); h.Open {
		t.Fatal("memory db still open after Close")
	}
}

func TestHealthDurable(t *testing.T) {
	dir := t.TempDir()
	db, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	h := db.Health()
	if !h.Open || !h.Durable || !h.WALWritable {
		t.Fatalf("fresh durable health = %+v", h)
	}
	if !h.LastCheckpoint.IsZero() {
		t.Fatalf("fresh directory reports a checkpoint: %+v", h)
	}

	if err := db.Write(func(tx *Tx) error {
		if err := tx.CreateTable(&Schema{Name: "t", Columns: []Column{{Name: "id", Type: TInt}}}); err != nil {
			return err
		}
		_, err := tx.Insert("t", Row{Int(1)})
		return err
	}); err != nil {
		t.Fatal(err)
	}
	if h := db.Health(); h.WALOpsPending != 2 { // CREATE + INSERT
		t.Fatalf("pending ops = %d, want 2 (%+v)", h.WALOpsPending, h)
	}

	before := time.Now()
	if err := db.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	h = db.Health()
	if h.WALOpsPending != 0 {
		t.Fatalf("pending ops after checkpoint = %d", h.WALOpsPending)
	}
	if h.LastCheckpoint.Before(before) {
		t.Fatalf("last checkpoint %v predates the checkpoint call %v", h.LastCheckpoint, before)
	}
	if age := h.CheckpointAge(time.Now()); age < 0 || age > time.Minute {
		t.Fatalf("checkpoint age = %v", age)
	}

	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
	h = db.Health()
	if h.Open || h.WALWritable || h.WALError != "wal closed" {
		t.Fatalf("health after Close = %+v", h)
	}

	// Reopen: the snapshot mtime carries the checkpoint time across restarts.
	db2, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer db2.Close()
	h = db2.Health()
	if h.LastCheckpoint.IsZero() {
		t.Fatal("reopened db lost the checkpoint timestamp")
	}
	if h.Tables != 1 || !h.WALWritable {
		t.Fatalf("reopened health = %+v", h)
	}
}
