package reldb

import (
	"strings"
	"sync"
	"testing"
)

func appSchema() *Schema {
	return &Schema{
		Name: "application",
		Columns: []Column{
			{Name: "id", Type: TInt, AutoIncrement: true},
			{Name: "name", Type: TString, NotNull: true},
			{Name: "version", Type: TString},
		},
		PrimaryKey: "id",
	}
}

func expSchema() *Schema {
	return &Schema{
		Name: "experiment",
		Columns: []Column{
			{Name: "id", Type: TInt, AutoIncrement: true},
			{Name: "application", Type: TInt, NotNull: true},
			{Name: "name", Type: TString},
		},
		PrimaryKey: "id",
		ForeignKeys: []ForeignKey{
			{Column: "application", RefTable: "application", RefColumn: "id"},
		},
	}
}

func mustWrite(t *testing.T, db *DB, fn func(tx *Tx) error) {
	t.Helper()
	if err := db.Write(fn); err != nil {
		t.Fatal(err)
	}
}

func TestCreateInsertScan(t *testing.T) {
	db := NewMemory()
	mustWrite(t, db, func(tx *Tx) error {
		if err := tx.CreateTable(appSchema()); err != nil {
			return err
		}
		id, err := tx.Insert("application", Row{Null, Str("sppm"), Str("1.0")})
		if err != nil {
			return err
		}
		if id.AsInt() != 1 {
			t.Errorf("first auto id = %v", id.Go())
		}
		id, err = tx.Insert("APPLICATION", Row{Null, Str("smg2000"), Null})
		if err != nil {
			return err
		}
		if id.AsInt() != 2 {
			t.Errorf("second auto id = %v", id.Go())
		}
		return nil
	})
	var names []string
	db.Read(func(tx *Tx) error {
		return tx.Scan("application", func(_ int, row Row) bool {
			names = append(names, row[1].S)
			return true
		})
	})
	if strings.Join(names, ",") != "sppm,smg2000" {
		t.Fatalf("scan returned %v", names)
	}
}

func TestConstraints(t *testing.T) {
	db := NewMemory()
	mustWrite(t, db, func(tx *Tx) error { return tx.CreateTable(appSchema()) })

	// NOT NULL.
	err := db.Write(func(tx *Tx) error {
		_, err := tx.Insert("application", Row{Null, Null, Null})
		return err
	})
	if err == nil || !strings.Contains(err.Error(), "NOT NULL") {
		t.Errorf("want NOT NULL violation, got %v", err)
	}

	// Duplicate primary key.
	mustWrite(t, db, func(tx *Tx) error {
		_, err := tx.Insert("application", Row{Int(7), Str("a"), Null})
		return err
	})
	err = db.Write(func(tx *Tx) error {
		_, err := tx.Insert("application", Row{Int(7), Str("b"), Null})
		return err
	})
	if err == nil || !strings.Contains(err.Error(), "duplicate primary key") {
		t.Errorf("want duplicate PK, got %v", err)
	}

	// Auto-increment continues past explicit keys.
	mustWrite(t, db, func(tx *Tx) error {
		id, err := tx.Insert("application", Row{Null, Str("c"), Null})
		if err != nil {
			return err
		}
		if id.AsInt() != 8 {
			t.Errorf("auto id after explicit 7 = %v", id.Go())
		}
		return nil
	})

	// Wrong arity.
	err = db.Write(func(tx *Tx) error {
		_, err := tx.Insert("application", Row{Null, Str("x")})
		return err
	})
	if err == nil {
		t.Error("want arity error")
	}

	// Type coercion failure.
	err = db.Write(func(tx *Tx) error {
		_, err := tx.Insert("application", Row{Str("notanint"), Str("x"), Null})
		return err
	})
	if err == nil {
		t.Error("want coercion error")
	}
}

func TestForeignKeys(t *testing.T) {
	db := NewMemory()
	mustWrite(t, db, func(tx *Tx) error {
		if err := tx.CreateTable(appSchema()); err != nil {
			return err
		}
		if err := tx.CreateTable(expSchema()); err != nil {
			return err
		}
		_, err := tx.Insert("application", Row{Null, Str("app"), Null})
		return err
	})
	// Valid reference.
	mustWrite(t, db, func(tx *Tx) error {
		_, err := tx.Insert("experiment", Row{Null, Int(1), Str("e1")})
		return err
	})
	// Dangling reference.
	err := db.Write(func(tx *Tx) error {
		_, err := tx.Insert("experiment", Row{Null, Int(99), Str("e2")})
		return err
	})
	if err == nil || !strings.Contains(err.Error(), "foreign key") {
		t.Errorf("want FK violation, got %v", err)
	}
	// FK referencing a non-PK column is rejected at CREATE time.
	err = db.Write(func(tx *Tx) error {
		return tx.CreateTable(&Schema{
			Name:       "bad",
			Columns:    []Column{{Name: "id", Type: TInt}, {Name: "ref", Type: TInt}},
			PrimaryKey: "id",
			ForeignKeys: []ForeignKey{
				{Column: "ref", RefTable: "application", RefColumn: "name"},
			},
		})
	})
	if err == nil {
		t.Error("want FK-to-non-PK rejection")
	}
}

func TestUpdateDelete(t *testing.T) {
	db := NewMemory()
	var slot int
	mustWrite(t, db, func(tx *Tx) error {
		if err := tx.CreateTable(appSchema()); err != nil {
			return err
		}
		if _, err := tx.Insert("application", Row{Null, Str("old"), Null}); err != nil {
			return err
		}
		tx.Scan("application", func(s int, _ Row) bool { slot = s; return true })
		return nil
	})
	mustWrite(t, db, func(tx *Tx) error {
		return tx.Update("application", slot, Row{Int(1), Str("new"), Str("2.0")})
	})
	db.Read(func(tx *Tx) error {
		row := tx.Row("application", slot)
		if row[1].S != "new" || row[2].S != "2.0" {
			t.Errorf("after update: %v", row)
		}
		return nil
	})
	mustWrite(t, db, func(tx *Tx) error { return tx.Delete("application", slot) })
	db.Read(func(tx *Tx) error {
		if tx.Row("application", slot) != nil {
			t.Error("row still present after delete")
		}
		n := 0
		tx.Scan("application", func(int, Row) bool { n++; return true })
		if n != 0 {
			t.Errorf("%d rows after delete", n)
		}
		return nil
	})
}

func TestRollback(t *testing.T) {
	db := NewMemory()
	mustWrite(t, db, func(tx *Tx) error {
		if err := tx.CreateTable(appSchema()); err != nil {
			return err
		}
		_, err := tx.Insert("application", Row{Null, Str("keep"), Null})
		return err
	})

	tx := db.Begin()
	if _, err := tx.Insert("application", Row{Null, Str("drop1"), Null}); err != nil {
		t.Fatal(err)
	}
	var slot int
	tx.Scan("application", func(s int, row Row) bool {
		if row[1].S == "keep" {
			slot = s
		}
		return true
	})
	if err := tx.Update("application", slot, Row{Int(1), Str("mutated"), Null}); err != nil {
		t.Fatal(err)
	}
	if err := tx.Delete("application", slot); err != nil {
		t.Fatal(err)
	}
	if err := tx.CreateTable(expSchema()); err != nil {
		t.Fatal(err)
	}
	tx.Rollback()

	db.Read(func(tx *Tx) error {
		if tx.HasTable("experiment") {
			t.Error("experiment table survived rollback")
		}
		var rows []string
		tx.Scan("application", func(_ int, row Row) bool {
			rows = append(rows, row[1].S)
			return true
		})
		if len(rows) != 1 || rows[0] != "keep" {
			t.Errorf("after rollback rows = %v", rows)
		}
		return nil
	})

	// Write() rolls back on error.
	errBoom := db.Write(func(tx *Tx) error {
		if _, err := tx.Insert("application", Row{Null, Str("temp"), Null}); err != nil {
			return err
		}
		return errFake
	})
	if errBoom != errFake {
		t.Fatalf("Write returned %v", errBoom)
	}
	db.Read(func(tx *Tx) error {
		n := 0
		tx.Scan("application", func(int, Row) bool { n++; return true })
		if n != 1 {
			t.Errorf("%d rows after failed Write", n)
		}
		return nil
	})
}

var errFake = &fakeErr{}

type fakeErr struct{}

func (*fakeErr) Error() string { return "fake" }

func TestIndexesAndLookup(t *testing.T) {
	db := NewMemory()
	mustWrite(t, db, func(tx *Tx) error {
		if err := tx.CreateTable(appSchema()); err != nil {
			return err
		}
		for i := 0; i < 100; i++ {
			name := "app" + string(rune('a'+i%10))
			if _, err := tx.Insert("application", Row{Null, Str(name), Null}); err != nil {
				return err
			}
		}
		return tx.CreateIndex("ix_name", "application", []string{"name"}, HashIndex, false)
	})
	db.Read(func(tx *Tx) error {
		slots, ok := tx.LookupEq("application", "name", Str("appc"))
		if !ok {
			t.Fatal("index not used")
		}
		if len(slots) != 10 {
			t.Errorf("lookup returned %d slots, want 10", len(slots))
		}
		// PK lookups work through the implicit PK index.
		slots, ok = tx.LookupEq("application", "id", Int(5))
		if !ok || len(slots) != 1 {
			t.Errorf("pk lookup: ok=%v slots=%v", ok, slots)
		}
		return nil
	})

	// Ordered index supports range scans.
	mustWrite(t, db, func(tx *Tx) error {
		return tx.CreateIndex("ix_id_range", "application", []string{"id"}, OrderedIndex, false)
	})
	db.Read(func(tx *Tx) error {
		var ids []int64
		ok := tx.ScanRange("application", "id", Int(10), Int(14), true, true, func(slot int) bool {
			ids = append(ids, tx.Row("application", slot)[0].I)
			return true
		})
		if !ok {
			t.Fatal("range scan did not use index")
		}
		if len(ids) != 5 || ids[0] != 10 || ids[4] != 14 {
			t.Errorf("range scan ids = %v", ids)
		}
		return nil
	})

	// Unique index rejects duplicates.
	err := db.Write(func(tx *Tx) error {
		return tx.CreateIndex("ix_uni", "application", []string{"name"}, HashIndex, true)
	})
	if err == nil {
		t.Error("unique index over duplicate data should fail to build")
	}
}

func TestAlterTable(t *testing.T) {
	db := NewMemory()
	mustWrite(t, db, func(tx *Tx) error {
		if err := tx.CreateTable(appSchema()); err != nil {
			return err
		}
		_, err := tx.Insert("application", Row{Null, Str("a"), Str("v")})
		return err
	})
	mustWrite(t, db, func(tx *Tx) error {
		return tx.AddColumn("application", Column{Name: "compiler", Type: TString, Default: Str("gcc")})
	})
	db.Read(func(tx *Tx) error {
		tbl, _ := tx.Table("application")
		if len(tbl.Schema().Columns) != 4 {
			t.Fatalf("columns = %d", len(tbl.Schema().Columns))
		}
		tx.Scan("application", func(_ int, row Row) bool {
			if row[3].S != "gcc" {
				t.Errorf("backfill = %v", row[3].Go())
			}
			return true
		})
		return nil
	})
	// New inserts see the wider schema.
	mustWrite(t, db, func(tx *Tx) error {
		_, err := tx.Insert("application", Row{Null, Str("b"), Null, Str("icc")})
		return err
	})
	mustWrite(t, db, func(tx *Tx) error { return tx.DropColumn("application", "version") })
	db.Read(func(tx *Tx) error {
		tbl, _ := tx.Table("application")
		if tbl.Schema().ColumnIndex("version") >= 0 {
			t.Error("version column survived drop")
		}
		tx.Scan("application", func(_ int, row Row) bool {
			if len(row) != 3 {
				t.Errorf("row width %d after drop", len(row))
			}
			return true
		})
		// PK index still works after column shift.
		slots, ok := tx.LookupEq("application", "id", Int(2))
		if !ok || len(slots) != 1 {
			t.Errorf("pk lookup after drop: %v %v", ok, slots)
		}
		return nil
	})
	// Cannot drop the PK column.
	if err := db.Write(func(tx *Tx) error { return tx.DropColumn("application", "id") }); err == nil {
		t.Error("dropping PK column should fail")
	}
}

func TestAlterRollback(t *testing.T) {
	db := NewMemory()
	mustWrite(t, db, func(tx *Tx) error {
		if err := tx.CreateTable(appSchema()); err != nil {
			return err
		}
		_, err := tx.Insert("application", Row{Null, Str("a"), Str("1.0")})
		return err
	})
	tx := db.Begin()
	if err := tx.AddColumn("application", Column{Name: "extra", Type: TInt}); err != nil {
		t.Fatal(err)
	}
	if err := tx.DropColumn("application", "version"); err != nil {
		t.Fatal(err)
	}
	tx.Rollback()
	db.Read(func(tx *Tx) error {
		tbl, _ := tx.Table("application")
		s := tbl.Schema()
		if s.ColumnIndex("extra") >= 0 || s.ColumnIndex("version") < 0 {
			t.Errorf("schema after rollback: %v", s.ColumnNames())
		}
		row := tx.Row("application", 0)
		if len(row) != 3 || row[2].S != "1.0" {
			t.Errorf("row after rollback: %v", row)
		}
		return nil
	})
}

func TestConcurrentReaders(t *testing.T) {
	db := NewMemory()
	mustWrite(t, db, func(tx *Tx) error {
		if err := tx.CreateTable(appSchema()); err != nil {
			return err
		}
		for i := 0; i < 50; i++ {
			if _, err := tx.Insert("application", Row{Null, Str("app"), Null}); err != nil {
				return err
			}
		}
		return nil
	})
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				db.Read(func(tx *Tx) error {
					n := 0
					tx.Scan("application", func(int, Row) bool { n++; return true })
					if n != 50 {
						t.Errorf("reader saw %d rows", n)
					}
					return nil
				})
			}
		}()
	}
	wg.Wait()
}

func TestWriteInReadOnlyTx(t *testing.T) {
	db := NewMemory()
	err := db.Read(func(tx *Tx) error {
		return tx.CreateTable(appSchema())
	})
	if err == nil {
		t.Fatal("DDL inside read-only tx should fail")
	}
}

func TestSchemaValidation(t *testing.T) {
	db := NewMemory()
	cases := []*Schema{
		{Name: "", Columns: []Column{{Name: "a", Type: TInt}}},
		{Name: "t"},
		{Name: "t", Columns: []Column{{Name: "a", Type: TInt}, {Name: "A", Type: TInt}}},
		{Name: "t", Columns: []Column{{Name: "a", Type: TString, AutoIncrement: true}}},
		{Name: "t", Columns: []Column{{Name: "a", Type: TInt}}, PrimaryKey: "nope"},
	}
	for i, s := range cases {
		if err := db.Write(func(tx *Tx) error { return tx.CreateTable(s) }); err == nil {
			t.Errorf("case %d: invalid schema accepted", i)
		}
	}
}
