package reldb

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"math"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"time"
)

// Durable storage layout: <dir>/data.snap holds a full snapshot of the
// database; <dir>/data.wal holds logical redo records appended at each
// commit since the snapshot. Open loads the snapshot and replays the WAL.
// Checkpoint rewrites the snapshot and truncates the WAL.
//
// WAL records address rows by slot. Slot assignment is deterministic (the
// free list is LIFO and is persisted in the snapshot), so replaying the
// records against the snapshot they were logged on reproduces the state
// byte for byte.

const (
	snapFile  = "data.snap"
	walFile   = "data.wal"
	snapMagic = 0x5044_4D46 // "PDMF"
	snapVer   = 1
)

type walKind uint8

const (
	walInsert walKind = iota
	walUpdate
	walDelete
	walCreateTable
	walDropTable
	walAddColumn
	walDropColumn
	walCreateIndex
	walDropIndex
)

type walRecord struct {
	kind      walKind
	table     string
	slot      int
	row       Row
	schema    *Schema
	column    Column
	name      string
	ixColumns []string
	ixKind    IndexKind
	unique    bool
}

// Options configures a durable database.
type Options struct {
	// Sync forces an fsync after every commit. Off by default: PerfDMF's
	// workloads are bulk archival loads where a post-load Checkpoint is the
	// durability point.
	Sync bool
	// CheckpointEvery rewrites the snapshot after this many logged
	// operations. Zero disables automatic checkpoints.
	CheckpointEvery int
}

// Open opens (creating if needed) a durable database rooted at dir.
func Open(dir string, opts Options) (*DB, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("reldb: open %s: %w", dir, err)
	}
	db := NewMemory()
	db.dir = dir
	db.chkEach = opts.CheckpointEvery

	snapPath := filepath.Join(dir, snapFile)
	if f, err := os.Open(snapPath); err == nil {
		start := time.Now()
		err = db.loadSnapshot(bufio.NewReaderSize(f, 1<<20))
		f.Close()
		if err != nil {
			return nil, fmt.Errorf("reldb: load snapshot %s: %w", snapPath, err)
		}
		mSnapshotLoadNS.Observe(int64(time.Since(start)))
		if fi, err := os.Stat(snapPath); err == nil {
			mSnapshotBytes.Set(fi.Size())
			// The snapshot's mtime is when the last checkpoint completed;
			// health probes measure checkpoint age from it across restarts.
			db.lastChk = fi.ModTime()
		}
	} else if !errors.Is(err, os.ErrNotExist) {
		return nil, err
	}

	walPath := filepath.Join(dir, walFile)
	if f, err := os.Open(walPath); err == nil {
		n, err2 := db.replayWAL(bufio.NewReaderSize(f, 1<<20))
		f.Close()
		if err2 != nil {
			return nil, fmt.Errorf("reldb: replay wal %s: %w", walPath, err2)
		}
		db.walOps = n
		mWALReplayed.Add(int64(n))
	} else if !errors.Is(err, os.ErrNotExist) {
		return nil, err
	}

	w, err := openWAL(walPath, opts.Sync)
	if err != nil {
		return nil, err
	}
	db.wal = w
	return db, nil
}

// Checkpoint writes a full snapshot and truncates the WAL. It is the
// durability point for bulk loads when Sync is off.
func (db *DB) Checkpoint() error {
	db.mu.Lock()
	defer db.mu.Unlock()
	return db.checkpointLocked()
}

func (db *DB) checkpointLocked() error {
	if db.dir == "" {
		return nil
	}
	start := time.Now()
	tmp := filepath.Join(db.dir, snapFile+".tmp")
	f, err := os.Create(tmp)
	if err != nil {
		return err
	}
	bw := bufio.NewWriterSize(f, 1<<20)
	if err := db.writeSnapshot(bw); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := bw.Flush(); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	snapPath := filepath.Join(db.dir, snapFile)
	if err := os.Rename(tmp, snapPath); err != nil {
		return err
	}
	db.walOps = 0
	if err := db.wal.truncate(); err != nil {
		return err
	}
	mCheckpoints.Inc()
	mCheckpointNS.Observe(int64(time.Since(start)))
	db.lastChk = time.Now()
	if fi, err := os.Stat(snapPath); err == nil {
		mSnapshotBytes.Set(fi.Size())
	}
	return nil
}

// Close flushes and closes the WAL. In-memory databases only mark
// themselves closed (visible to Health). The final fsync runs outside the
// lock: detaching db.wal under the mutex already fences out concurrent
// writers, so there is no reason to stall readers behind disk I/O.
func (db *DB) Close() error {
	db.mu.Lock()
	db.closed = true
	w := db.wal
	db.wal = nil
	db.mu.Unlock()
	if w == nil {
		return nil
	}
	return w.close()
}

// --- binary encoding primitives ---

func putUvarint(b *bytes.Buffer, v uint64) {
	var tmp [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(tmp[:], v)
	b.Write(tmp[:n])
}

func putString(b *bytes.Buffer, s string) {
	putUvarint(b, uint64(len(s)))
	b.WriteString(s)
}

func putValue(b *bytes.Buffer, v Value) {
	b.WriteByte(byte(v.T))
	switch v.T {
	case TNull:
	case TInt, TBool, TTime:
		putUvarint(b, uint64(v.I))
	case TFloat:
		var tmp [8]byte
		binary.LittleEndian.PutUint64(tmp[:], math.Float64bits(v.F))
		b.Write(tmp[:])
	case TString, TBytes:
		putString(b, v.S)
	}
}

func putRow(b *bytes.Buffer, r Row) {
	putUvarint(b, uint64(len(r)))
	for _, v := range r {
		putValue(b, v)
	}
}

func putColumn(b *bytes.Buffer, c Column) {
	putString(b, c.Name)
	b.WriteByte(byte(c.Type))
	flags := byte(0)
	if c.NotNull {
		flags |= 1
	}
	if c.AutoIncrement {
		flags |= 2
	}
	b.WriteByte(flags)
	putValue(b, c.Default)
}

func putSchema(b *bytes.Buffer, s *Schema) {
	putString(b, s.Name)
	putString(b, s.PrimaryKey)
	putUvarint(b, uint64(len(s.Columns)))
	for _, c := range s.Columns {
		putColumn(b, c)
	}
	putUvarint(b, uint64(len(s.ForeignKeys)))
	for _, fk := range s.ForeignKeys {
		putString(b, fk.Column)
		putString(b, fk.RefTable)
		putString(b, fk.RefColumn)
	}
}

type reader struct {
	r   *bufio.Reader
	err error
}

func (d *reader) uvarint() uint64 {
	if d.err != nil {
		return 0
	}
	v, err := binary.ReadUvarint(d.r)
	if err != nil {
		d.err = err
	}
	return v
}

func (d *reader) byte() byte {
	if d.err != nil {
		return 0
	}
	b, err := d.r.ReadByte()
	if err != nil {
		d.err = err
	}
	return b
}

func (d *reader) str() string {
	n := d.uvarint()
	if d.err != nil {
		return ""
	}
	buf := make([]byte, n)
	if _, err := io.ReadFull(d.r, buf); err != nil {
		d.err = err
		return ""
	}
	return string(buf)
}

func (d *reader) value() Value {
	t := Type(d.byte())
	switch t {
	case TNull:
		return Null
	case TInt, TBool, TTime:
		return Value{T: t, I: int64(d.uvarint())}
	case TFloat:
		var tmp [8]byte
		if _, err := io.ReadFull(d.r, tmp[:]); err != nil {
			d.err = err
			return Null
		}
		return Float(math.Float64frombits(binary.LittleEndian.Uint64(tmp[:])))
	case TString, TBytes:
		return Value{T: t, S: d.str()}
	}
	if d.err == nil {
		d.err = fmt.Errorf("reldb: bad value tag %d", t)
	}
	return Null
}

func (d *reader) row() Row {
	n := d.uvarint()
	if d.err != nil {
		return nil
	}
	r := make(Row, n)
	for i := range r {
		r[i] = d.value()
	}
	return r
}

func (d *reader) column() Column {
	var c Column
	c.Name = d.str()
	c.Type = Type(d.byte())
	flags := d.byte()
	c.NotNull = flags&1 != 0
	c.AutoIncrement = flags&2 != 0
	c.Default = d.value()
	return c
}

func (d *reader) schema() *Schema {
	s := &Schema{}
	s.Name = d.str()
	s.PrimaryKey = d.str()
	ncols := d.uvarint()
	for i := uint64(0); i < ncols && d.err == nil; i++ {
		s.Columns = append(s.Columns, d.column())
	}
	nfk := d.uvarint()
	for i := uint64(0); i < nfk && d.err == nil; i++ {
		s.ForeignKeys = append(s.ForeignKeys, ForeignKey{
			Column: d.str(), RefTable: d.str(), RefColumn: d.str(),
		})
	}
	return s
}

// --- snapshot ---

func (db *DB) writeSnapshot(w *bufio.Writer) error {
	var hdr [8]byte
	binary.LittleEndian.PutUint32(hdr[0:], snapMagic)
	binary.LittleEndian.PutUint32(hdr[4:], snapVer)
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	var b bytes.Buffer
	putUvarint(&b, uint64(len(db.tables)))
	// Stable order for reproducible snapshots.
	for _, name := range sortedTableKeys(db.tables) {
		t := db.tables[name]
		putSchema(&b, t.schema)
		putUvarint(&b, uint64(t.autoInc))
		putUvarint(&b, uint64(len(t.rows)))
		for _, row := range t.rows {
			if row == nil {
				b.WriteByte(0)
				continue
			}
			b.WriteByte(1)
			putRow(&b, row)
		}
		putUvarint(&b, uint64(len(t.free)))
		for _, s := range t.free {
			putUvarint(&b, uint64(s))
		}
		putUvarint(&b, uint64(len(t.indexes)))
		for _, key := range sortedIndexKeys(t.indexes) {
			ix := t.indexes[key]
			putString(&b, ix.Name)
			putUvarint(&b, uint64(len(ix.Columns)))
			for _, c := range ix.Columns {
				putString(&b, c)
			}
			b.WriteByte(byte(ix.Kind))
			if ix.Unique {
				b.WriteByte(1)
			} else {
				b.WriteByte(0)
			}
		}
	}
	_, err := w.Write(b.Bytes())
	return err
}

func sortedTableKeys(m map[string]*Table) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

func sortedIndexKeys(m map[string]*Index) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

func (db *DB) loadSnapshot(r *bufio.Reader) error {
	var hdr [8]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return err
	}
	if binary.LittleEndian.Uint32(hdr[0:]) != snapMagic {
		return fmt.Errorf("bad magic")
	}
	if v := binary.LittleEndian.Uint32(hdr[4:]); v != snapVer {
		return fmt.Errorf("unsupported snapshot version %d", v)
	}
	d := &reader{r: r}
	ntab := d.uvarint()
	for i := uint64(0); i < ntab && d.err == nil; i++ {
		schema := d.schema()
		if d.err != nil {
			break
		}
		t := newTable(schema)
		t.autoInc = int64(d.uvarint())
		nslots := d.uvarint()
		t.rows = make([]Row, 0, nslots)
		for s := uint64(0); s < nslots && d.err == nil; s++ {
			if d.byte() == 0 {
				t.rows = append(t.rows, nil)
				continue
			}
			row := d.row()
			t.rows = append(t.rows, row)
			t.live++
		}
		nfree := d.uvarint()
		for s := uint64(0); s < nfree && d.err == nil; s++ {
			t.free = append(t.free, int(d.uvarint()))
		}
		if t.pk != nil {
			if err := t.pk.rebuild(t.rows); err != nil {
				return err
			}
		}
		nix := d.uvarint()
		for s := uint64(0); s < nix && d.err == nil; s++ {
			name := d.str()
			ncols := int(d.uvarint())
			columns := make([]string, ncols)
			for i := range columns {
				columns[i] = d.str()
			}
			kind := IndexKind(d.byte())
			unique := d.byte() == 1
			cols := make([]int, len(columns))
			for i, column := range columns {
				pos := schema.ColumnIndex(column)
				if pos < 0 {
					return fmt.Errorf("snapshot index %s on unknown column %s", name, column)
				}
				cols[i] = pos
			}
			ix, err := newIndex(name, schema.Name, columns, cols, kind, unique)
			if err != nil {
				return err
			}
			if err := ix.rebuild(t.rows); err != nil {
				return err
			}
			t.indexes[strings.ToLower(name)] = ix
		}
		db.tables[strings.ToLower(schema.Name)] = t
	}
	return d.err
}

// --- WAL ---

type walWriter struct {
	f    *os.File
	sync bool
	// unsynced counts relaxed appends since the last fsync. Relaxed
	// commits batch their fsyncs: the file is synced every
	// relaxedFsyncEvery relaxed appends, at the next synchronous append,
	// and at close/truncate. The walWriter is only touched under the
	// database write lock, so the counter needs no synchronisation.
	unsynced int
}

// relaxedFsyncEvery bounds how many relaxed commit batches may ride on one
// deferred fsync.
const relaxedFsyncEvery = 32

func openWAL(path string, sync bool) (*walWriter, error) {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, err
	}
	return &walWriter{f: f, sync: sync}, nil
}

// walBufPool recycles the encode buffer across commit batches. Bulk loads
// commit thousands of batches; without the pool each one allocates (and
// grows) a fresh bytes.Buffer.
var walBufPool = sync.Pool{New: func() any { return new(bytes.Buffer) }}

// maxPooledWALBuf caps what goes back in the pool: an occasional huge batch
// should not pin a multi-megabyte buffer for the process lifetime.
const maxPooledWALBuf = 1 << 20

// append writes one commit batch: length, crc32, payload. Relaxed appends
// defer the per-commit fsync (when sync mode is on) and batch it with later
// commits; a synchronous append flushes everything outstanding.
func (w *walWriter) append(recs []walRecord, relaxed bool) error {
	start := time.Now()
	b := walBufPool.Get().(*bytes.Buffer)
	b.Reset()
	defer func() {
		if b.Cap() <= maxPooledWALBuf {
			walBufPool.Put(b)
		}
	}()
	putUvarint(b, uint64(len(recs)))
	for i := range recs {
		encodeWALRecord(b, &recs[i])
	}
	payload := b.Bytes()
	var hdr [12]byte
	binary.LittleEndian.PutUint64(hdr[0:], uint64(len(payload)))
	binary.LittleEndian.PutUint32(hdr[8:], crc32.ChecksumIEEE(payload))
	if _, err := w.f.Write(hdr[:]); err != nil {
		return err
	}
	if _, err := w.f.Write(payload); err != nil {
		return err
	}
	mWALAppends.Inc()
	mWALRecords.Add(int64(len(recs)))
	mWALBytes.Add(int64(len(hdr) + len(payload)))
	if relaxed {
		mWALRelaxedAppends.Inc()
	}
	if w.sync {
		if relaxed {
			w.unsynced++
			if w.unsynced < relaxedFsyncEvery {
				mWALAppendNS.Observe(int64(time.Since(start)))
				return nil
			}
		}
		fsyncStart := time.Now()
		err := w.f.Sync()
		if w.unsynced > 0 {
			mWALRelaxedFsyncBatches.Inc()
			w.unsynced = 0
		}
		mWALFsyncNS.Observe(int64(time.Since(fsyncStart)))
		mWALAppendNS.Observe(int64(time.Since(start)))
		return err
	}
	mWALAppendNS.Observe(int64(time.Since(start)))
	return nil
}

// probe reports whether the WAL file descriptor is still usable (fstat, no
// data written) — the health check's "can we still commit" signal.
func (w *walWriter) probe() error {
	_, err := w.f.Stat()
	return err
}

func (w *walWriter) truncate() error {
	if err := w.f.Truncate(0); err != nil {
		return err
	}
	w.unsynced = 0 // deferred relaxed fsyncs die with the truncated log
	_, err := w.f.Seek(0, io.SeekStart)
	return err
}

func (w *walWriter) close() error {
	if err := w.f.Sync(); err != nil {
		w.f.Close()
		return err
	}
	return w.f.Close()
}

func encodeWALRecord(b *bytes.Buffer, r *walRecord) {
	b.WriteByte(byte(r.kind))
	switch r.kind {
	case walInsert:
		putString(b, r.table)
		putRow(b, r.row)
	case walUpdate:
		putString(b, r.table)
		putUvarint(b, uint64(r.slot))
		putRow(b, r.row)
	case walDelete:
		putString(b, r.table)
		putUvarint(b, uint64(r.slot))
	case walCreateTable:
		putSchema(b, r.schema)
	case walDropTable:
		putString(b, r.table)
	case walAddColumn:
		putString(b, r.table)
		putColumn(b, r.column)
	case walDropColumn:
		putString(b, r.table)
		putString(b, r.name)
	case walCreateIndex:
		putString(b, r.table)
		putString(b, r.name)
		putUvarint(b, uint64(len(r.ixColumns)))
		for _, c := range r.ixColumns {
			putString(b, c)
		}
		b.WriteByte(byte(r.ixKind))
		if r.unique {
			b.WriteByte(1)
		} else {
			b.WriteByte(0)
		}
	case walDropIndex:
		putString(b, r.table)
		putString(b, r.name)
	}
}

// replayWAL applies logged batches to the in-memory state, stopping cleanly
// at a torn final batch (the expected crash shape). It returns the number
// of operations applied.
func (db *DB) replayWAL(br *bufio.Reader) (int, error) {
	ops := 0
	for {
		var hdr [12]byte
		if _, err := io.ReadFull(br, hdr[:]); err != nil {
			if err == io.EOF {
				return ops, nil
			}
			if err == io.ErrUnexpectedEOF {
				return ops, nil // torn header
			}
			return ops, err
		}
		n := binary.LittleEndian.Uint64(hdr[0:])
		want := binary.LittleEndian.Uint32(hdr[8:])
		payload := make([]byte, n)
		if _, err := io.ReadFull(br, payload); err != nil {
			if err == io.EOF || err == io.ErrUnexpectedEOF {
				return ops, nil // torn batch
			}
			return ops, err
		}
		if crc32.ChecksumIEEE(payload) != want {
			return ops, fmt.Errorf("wal batch checksum mismatch")
		}
		d := &reader{r: bufio.NewReader(bytes.NewReader(payload))}
		nrec := d.uvarint()
		for i := uint64(0); i < nrec; i++ {
			if err := db.applyWALRecord(d); err != nil {
				return ops, err
			}
			if d.err != nil {
				return ops, d.err
			}
			ops++
		}
	}
}

func (db *DB) applyWALRecord(d *reader) error {
	kind := walKind(d.byte())
	get := func(name string) (*Table, error) {
		t := db.tables[strings.ToLower(name)]
		if t == nil {
			return nil, fmt.Errorf("wal references missing table %s", name)
		}
		return t, nil
	}
	switch kind {
	case walInsert:
		name := d.str()
		row := d.row()
		t, err := get(name)
		if err != nil {
			return err
		}
		norm, err := t.normalize(row)
		if err != nil {
			return err
		}
		_, err = t.insert(norm)
		return err
	case walUpdate:
		name := d.str()
		slot := int(d.uvarint())
		row := d.row()
		t, err := get(name)
		if err != nil {
			return err
		}
		norm, err := t.normalize(row)
		if err != nil {
			return err
		}
		_, err = t.updateSlot(slot, norm)
		return err
	case walDelete:
		name := d.str()
		slot := int(d.uvarint())
		t, err := get(name)
		if err != nil {
			return err
		}
		_, err = t.deleteSlot(slot)
		return err
	case walCreateTable:
		schema := d.schema()
		db.tables[strings.ToLower(schema.Name)] = newTable(schema)
		return nil
	case walDropTable:
		name := d.str()
		delete(db.tables, strings.ToLower(name))
		return nil
	case walAddColumn:
		name := d.str()
		col := d.column()
		t, err := get(name)
		if err != nil {
			return err
		}
		return t.addColumn(col)
	case walDropColumn:
		name := d.str()
		column := d.str()
		t, err := get(name)
		if err != nil {
			return err
		}
		return t.dropColumn(column)
	case walCreateIndex:
		name := d.str()
		ixName := d.str()
		ncols := int(d.uvarint())
		columns := make([]string, ncols)
		for i := range columns {
			columns[i] = d.str()
		}
		ixKind := IndexKind(d.byte())
		unique := d.byte() == 1
		t, err := get(name)
		if err != nil {
			return err
		}
		cols := make([]int, len(columns))
		for i, column := range columns {
			pos := t.schema.ColumnIndex(column)
			if pos < 0 {
				return fmt.Errorf("wal index %s on unknown column %s", ixName, column)
			}
			cols[i] = pos
		}
		ix, err := newIndex(ixName, t.schema.Name, columns, cols, ixKind, unique)
		if err != nil {
			return err
		}
		if err := ix.rebuild(t.rows); err != nil {
			return err
		}
		t.indexes[strings.ToLower(ixName)] = ix
		return nil
	case walDropIndex:
		name := d.str()
		ixName := d.str()
		t, err := get(name)
		if err != nil {
			return err
		}
		delete(t.indexes, strings.ToLower(ixName))
		return nil
	}
	return fmt.Errorf("bad wal record kind %d", kind)
}
