package reldb

import (
	"fmt"
	"strings"
)

// Column describes one column of a table schema.
type Column struct {
	Name          string
	Type          Type
	NotNull       bool
	Default       Value // applied when an INSERT omits the column
	AutoIncrement bool  // only valid on a BIGINT primary-key column
}

// ForeignKey declares that a column references the primary key of another
// table. Inserts and updates verify the referenced row exists.
type ForeignKey struct {
	Column    string // local column name
	RefTable  string
	RefColumn string
}

// Schema is the definition of a table: its name, ordered columns, primary
// key and foreign keys. Column order is the row layout.
type Schema struct {
	Name        string
	Columns     []Column
	PrimaryKey  string // column name; "" means no primary key
	ForeignKeys []ForeignKey
}

// ColumnIndex returns the position of the named column, or -1. Column names
// are case-insensitive, matching the SQL layer.
func (s *Schema) ColumnIndex(name string) int {
	for i := range s.Columns {
		if strings.EqualFold(s.Columns[i].Name, name) {
			return i
		}
	}
	return -1
}

// Column returns the named column definition, or nil.
func (s *Schema) Column(name string) *Column {
	if i := s.ColumnIndex(name); i >= 0 {
		return &s.Columns[i]
	}
	return nil
}

// ColumnNames returns the column names in row order.
func (s *Schema) ColumnNames() []string {
	names := make([]string, len(s.Columns))
	for i := range s.Columns {
		names[i] = s.Columns[i].Name
	}
	return names
}

// validate checks the schema for internal consistency.
func (s *Schema) validate() error {
	if s.Name == "" {
		return fmt.Errorf("reldb: table has no name")
	}
	if len(s.Columns) == 0 {
		return fmt.Errorf("reldb: table %s has no columns", s.Name)
	}
	seen := make(map[string]bool, len(s.Columns))
	for i := range s.Columns {
		c := &s.Columns[i]
		lower := strings.ToLower(c.Name)
		if c.Name == "" {
			return fmt.Errorf("reldb: table %s has an unnamed column", s.Name)
		}
		if seen[lower] {
			return fmt.Errorf("reldb: table %s: duplicate column %s", s.Name, c.Name)
		}
		seen[lower] = true
		if c.Type == TNull {
			return fmt.Errorf("reldb: table %s: column %s has no type", s.Name, c.Name)
		}
		if c.AutoIncrement && c.Type != TInt {
			return fmt.Errorf("reldb: table %s: auto-increment column %s must be BIGINT", s.Name, c.Name)
		}
		if !c.Default.IsNull() {
			if _, err := Coerce(c.Default, c.Type); err != nil {
				return fmt.Errorf("reldb: table %s: column %s: bad default: %v", s.Name, c.Name, err)
			}
		}
	}
	if s.PrimaryKey != "" && s.ColumnIndex(s.PrimaryKey) < 0 {
		return fmt.Errorf("reldb: table %s: primary key %s is not a column", s.Name, s.PrimaryKey)
	}
	for _, fk := range s.ForeignKeys {
		if s.ColumnIndex(fk.Column) < 0 {
			return fmt.Errorf("reldb: table %s: foreign key on unknown column %s", s.Name, fk.Column)
		}
	}
	return nil
}

// clone returns a deep copy of the schema.
func (s *Schema) clone() *Schema {
	c := &Schema{Name: s.Name, PrimaryKey: s.PrimaryKey}
	c.Columns = append([]Column(nil), s.Columns...)
	c.ForeignKeys = append([]ForeignKey(nil), s.ForeignKeys...)
	return c
}
