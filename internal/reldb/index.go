package reldb

import (
	"fmt"
	"math"
	"strconv"
	"strings"
)

// IndexKind selects the physical structure of a secondary index.
type IndexKind uint8

const (
	// HashIndex supports equality lookups in O(1). It may span multiple
	// columns (a composite index).
	HashIndex IndexKind = iota
	// OrderedIndex is a B+tree supporting equality and range scans over a
	// single column.
	OrderedIndex
)

func (k IndexKind) String() string {
	if k == HashIndex {
		return "HASH"
	}
	return "BTREE"
}

// Index is a secondary index over one column (hash or B-tree) or several
// columns (composite hash). Rows with a NULL in any indexed column are not
// indexed (matching common SQL engines), so index-assisted plans must not
// be used for IS NULL predicates.
type Index struct {
	Name    string
	Table   string
	Columns []string // one or more column names
	Kind    IndexKind
	Unique  bool

	cols  []int            // column positions in the row
	hash  map[Value][]int  // single-column hash
	multi map[string][]int // composite hash, keyed by encoded tuple
	tree  *btree           // single-column ordered
}

// Column returns the indexed column name for single-column indexes, or the
// comma-joined list for composite ones (metadata display).
func (ix *Index) Column() string { return strings.Join(ix.Columns, ", ") }

func newIndex(name, table string, columns []string, cols []int, kind IndexKind, unique bool) (*Index, error) {
	if len(columns) == 0 {
		return nil, fmt.Errorf("reldb: index %s has no columns", name)
	}
	if len(columns) > 1 && kind != HashIndex {
		return nil, fmt.Errorf("reldb: composite index %s must be HASH", name)
	}
	ix := &Index{Name: name, Table: table, Columns: columns, Kind: kind, Unique: unique, cols: cols}
	switch {
	case len(columns) > 1:
		ix.multi = make(map[string][]int)
	case kind == HashIndex:
		ix.hash = make(map[Value][]int)
	default:
		ix.tree = newBtree()
	}
	return ix, nil
}

// encodeKey builds a collision-free string key for a value tuple.
func encodeKey(vals []Value) string {
	var b strings.Builder
	for _, v := range vals {
		b.WriteByte(byte(v.T) + '0')
		switch v.T {
		case TInt, TBool, TTime:
			b.WriteString(strconv.FormatInt(v.I, 36))
		case TFloat:
			b.WriteString(strconv.FormatUint(math.Float64bits(v.F), 36))
		case TString, TBytes:
			b.WriteString(strconv.Itoa(len(v.S)))
			b.WriteByte(':')
			b.WriteString(v.S)
		}
		b.WriteByte('|')
	}
	return b.String()
}

// key extracts the index key values from a row; ok is false when any
// indexed column is NULL (the row is then not indexed).
func (ix *Index) key(row Row) ([]Value, bool) {
	vals := make([]Value, len(ix.cols))
	for i, c := range ix.cols {
		v := row[c]
		if v.IsNull() {
			return nil, false
		}
		vals[i] = v
	}
	return vals, true
}

// insert indexes row at slot. It reports a uniqueness violation as an error
// before modifying the index.
func (ix *Index) insert(row Row, slot int) error {
	vals, ok := ix.key(row)
	if !ok {
		return nil
	}
	if ix.Unique && len(ix.lookupVals(vals)) > 0 {
		return fmt.Errorf("reldb: unique index %s: duplicate value", ix.Name)
	}
	switch {
	case ix.multi != nil:
		k := encodeKey(vals)
		ix.multi[k] = append(ix.multi[k], slot)
	case ix.hash != nil:
		ix.hash[vals[0]] = append(ix.hash[vals[0]], slot)
	default:
		ix.tree.insert(vals[0], slot)
	}
	return nil
}

// remove un-indexes row at slot.
func (ix *Index) remove(row Row, slot int) {
	vals, ok := ix.key(row)
	if !ok {
		return
	}
	switch {
	case ix.multi != nil:
		k := encodeKey(vals)
		slots := removeSlot(ix.multi[k], slot)
		if len(slots) == 0 {
			delete(ix.multi, k)
		} else {
			ix.multi[k] = slots
		}
	case ix.hash != nil:
		slots := removeSlot(ix.hash[vals[0]], slot)
		if len(slots) == 0 {
			delete(ix.hash, vals[0])
		} else {
			ix.hash[vals[0]] = slots
		}
	default:
		ix.tree.remove(vals[0], slot)
	}
}

func removeSlot(slots []int, slot int) []int {
	for j, s := range slots {
		if s == slot {
			slots[j] = slots[len(slots)-1]
			return slots[:len(slots)-1]
		}
	}
	return slots
}

// lookup returns the slots whose single indexed column equals v. Only
// valid for single-column indexes.
func (ix *Index) lookup(v Value) []int {
	if v.IsNull() || ix.multi != nil {
		return nil
	}
	if ix.hash != nil {
		return ix.hash[v]
	}
	return ix.tree.get(v)
}

// lookupVals returns the slots matching a full key tuple.
func (ix *Index) lookupVals(vals []Value) []int {
	if ix.multi != nil {
		return ix.multi[encodeKey(vals)]
	}
	return ix.lookup(vals[0])
}

// Ranged reports whether the index supports ordered range scans.
func (ix *Index) Ranged() bool { return ix.tree != nil }

// scanRange visits slots whose key lies within the bounds, in key order.
// Only valid for ordered indexes.
func (ix *Index) scanRange(lo, hi bound, fn func(slot int) bool) {
	ix.tree.scanRange(lo, hi, func(_ Value, slots []int) bool {
		for _, s := range slots {
			if !fn(s) {
				return false
			}
		}
		return true
	})
}

// rebuild clears and re-populates the index from the table rows.
func (ix *Index) rebuild(rows []Row) error {
	switch {
	case ix.multi != nil:
		ix.multi = make(map[string][]int, len(rows))
	case ix.hash != nil:
		ix.hash = make(map[Value][]int, len(rows))
	default:
		ix.tree = newBtree()
	}
	for slot, row := range rows {
		if row == nil {
			continue
		}
		if err := ix.insert(row, slot); err != nil {
			return err
		}
	}
	return nil
}
