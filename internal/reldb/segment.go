package reldb

// Columnar segment store. A SegmentSet is a sealed, immutable snapshot of a
// table's live rows decomposed into per-column typed arrays: int64 (raw,
// frame-of-reference packed, or run-length encoded), float64, and strings
// (dictionary-encoded when the column is low-NDV, raw otherwise), each with
// a validity bitmap for NULLs. Sets are built lazily when a table goes
// read-mostly (segmentBuildAfter eligible reads with no intervening DML) or
// explicitly via the SQL COMPACT statement, and are invalidated by any DML
// or schema change through Table.noteDataChange/bumpVersion. The vectorized
// aggregation path in internal/sqlexec reads them through Tx.ColumnSegments
// and Table.ScanColumns.
//
// Sealed means: once published via Table.colSeg the set is never mutated,
// so concurrent readers may share it freely; freshness is a version compare
// (schemaV and dataV) under the transaction lock.

import (
	"math"
	"strings"
)

const (
	// segmentBuildAfter is how many eligible columnar reads a table must
	// see, with no intervening data change, before the lazy build fires.
	// It is a cheap read-mostly heuristic: a table in upload churn never
	// reaches the threshold because every DML resets the counter.
	segmentBuildAfter = 3

	// dictMaxCodes bounds dictionary size. Columns whose observed (or
	// ANALYZE-estimated) NDV exceeds this fall back to raw string storage:
	// a huge dictionary buys nothing over the raw array.
	dictMaxCodes = 1 << 12

	// rleMinRows / rleMaxRunDivisor gate run-length encoding: RLE wins
	// only when runs are long (observed runs <= n/rleMaxRunDivisor).
	rleMinRows       = 64
	rleMaxRunDivisor = 4
)

// segEncoding identifies the physical layout of one column segment.
type segEncoding uint8

const (
	segInt64   segEncoding = iota // raw []int64
	segIntPack                    // frame-of-reference: base + []int32 deltas
	segIntRLE                     // run-length: values + cumulative run ends
	segFloat64                    // raw []float64
	segDict                       // dictionary strings + []int32 codes
	segString                     // raw []string
)

func (e segEncoding) String() string {
	switch e {
	case segInt64:
		return "int64"
	case segIntPack:
		return "int32-for"
	case segIntRLE:
		return "rle"
	case segFloat64:
		return "float64"
	case segDict:
		return "dict"
	case segString:
		return "string"
	}
	return "?"
}

// ColumnSegment is one column's sealed typed array. NULL cells store the
// zero value in the typed array; the validity bitmap is authoritative.
type ColumnSegment struct {
	typ   Type
	enc   segEncoding
	n     int
	valid []uint64 // validity bitmap, 1 = non-NULL; nil = all valid

	ints    []int64   // segInt64
	base    int64     // segIntPack frame of reference
	packed  []int32   // segIntPack deltas from base
	runVals []int64   // segIntRLE run values
	runEnds []int32   // segIntRLE cumulative exclusive run ends
	floats  []float64 // segFloat64
	dict    []string  // segDict dictionary, first-appearance order
	codes   []int32   // segDict per-row codes; -1 = NULL
	strs    []string  // segString
}

// Len returns the number of rows in the segment.
func (s *ColumnSegment) Len() int { return s.n }

// Type returns the column type every non-NULL cell carries.
func (s *ColumnSegment) Type() Type { return s.typ }

// Encoding names the physical layout, for EXPLAIN output and tests.
func (s *ColumnSegment) Encoding() string { return s.enc.String() }

// HasNulls reports whether any cell is NULL.
func (s *ColumnSegment) HasNulls() bool { return s.valid != nil }

// Valid reports whether row i holds a non-NULL value.
func (s *ColumnSegment) Valid(i int) bool {
	return s.valid == nil || s.valid[i>>6]&(1<<(uint(i)&63)) != 0
}

// IsDict reports whether the segment is dictionary-encoded.
func (s *ColumnSegment) IsDict() bool { return s.enc == segDict }

// Dict returns the dictionary (first-appearance order) of a dict segment,
// or nil. Callers must not mutate it.
func (s *ColumnSegment) Dict() []string {
	if s.enc != segDict {
		return nil
	}
	return s.dict
}

// IntAt returns the integer at row i (0 when NULL). For RLE segments this
// binary-searches the run table; sequential access should prefer
// DecodeInts or GatherInts.
func (s *ColumnSegment) IntAt(i int) int64 {
	switch s.enc {
	case segInt64:
		return s.ints[i]
	case segIntPack:
		return s.base + int64(s.packed[i])
	case segIntRLE:
		lo, hi := 0, len(s.runEnds)
		for lo < hi {
			mid := (lo + hi) / 2
			if int(s.runEnds[mid]) <= i {
				lo = mid + 1
			} else {
				hi = mid
			}
		}
		return s.runVals[lo]
	}
	return 0
}

// FloatAt returns the float at row i (0 when NULL).
func (s *ColumnSegment) FloatAt(i int) float64 { return s.floats[i] }

// StrAt returns the string at row i ("" when NULL).
func (s *ColumnSegment) StrAt(i int) string {
	if s.enc == segDict {
		if c := s.codes[i]; c >= 0 {
			return s.dict[c]
		}
		return ""
	}
	return s.strs[i]
}

// CodeAt returns the dictionary code at row i, -1 for NULL.
func (s *ColumnSegment) CodeAt(i int) int32 { return s.codes[i] }

// ValueAt materializes row i as the exact Value the row store holds:
// same type tag, same payload, Null for NULL cells.
func (s *ColumnSegment) ValueAt(i int) Value {
	if !s.Valid(i) {
		return Null
	}
	switch s.enc {
	case segInt64, segIntPack, segIntRLE:
		return Value{T: s.typ, I: s.IntAt(i)}
	case segFloat64:
		return Value{T: s.typ, F: s.floats[i]}
	default:
		return Value{T: s.typ, S: s.StrAt(i)}
	}
}

// DecodeInts fills dst (len hi-lo) with rows [lo,hi) of an integer segment.
func (s *ColumnSegment) DecodeInts(lo, hi int, dst []int64) {
	switch s.enc {
	case segInt64:
		copy(dst, s.ints[lo:hi])
	case segIntPack:
		src := s.packed[lo:hi]
		for i, d := range src {
			dst[i] = s.base + int64(d)
		}
	case segIntRLE:
		run := s.findRun(lo)
		for i := lo; i < hi; {
			end := int(s.runEnds[run])
			if end > hi {
				end = hi
			}
			v := s.runVals[run]
			for ; i < end; i++ {
				dst[i-lo] = v
			}
			run++
		}
	}
}

// DecodeFloats fills dst with rows [lo,hi) of a float segment.
func (s *ColumnSegment) DecodeFloats(lo, hi int, dst []float64) {
	copy(dst, s.floats[lo:hi])
}

// Codes returns the code array window [lo,hi) of a dict segment. The
// returned slice aliases sealed storage; callers must not mutate it.
func (s *ColumnSegment) Codes(lo, hi int) []int32 { return s.codes[lo:hi] }

// Strs returns the raw string window [lo,hi). Aliases sealed storage.
func (s *ColumnSegment) Strs(lo, hi int) []string { return s.strs[lo:hi] }

// findRun returns the index of the run containing row i.
func (s *ColumnSegment) findRun(i int) int {
	lo, hi := 0, len(s.runEnds)
	for lo < hi {
		mid := (lo + hi) / 2
		if int(s.runEnds[mid]) <= i {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// GatherInts fills dst[i] with the integer at row sel[i]. sel must be
// ascending (a selection vector in row order), which lets RLE gathering
// run a forward cursor instead of a per-row binary search.
func (s *ColumnSegment) GatherInts(sel []int32, dst []int64) {
	switch s.enc {
	case segInt64:
		for i, r := range sel {
			dst[i] = s.ints[r]
		}
	case segIntPack:
		for i, r := range sel {
			dst[i] = s.base + int64(s.packed[r])
		}
	case segIntRLE:
		if len(sel) == 0 {
			return
		}
		run := s.findRun(int(sel[0]))
		for i, r := range sel {
			for int(s.runEnds[run]) <= int(r) {
				run++
			}
			dst[i] = s.runVals[run]
		}
	}
}

// GatherFloats fills dst[i] with the float at row sel[i].
func (s *ColumnSegment) GatherFloats(sel []int32, dst []float64) {
	for i, r := range sel {
		dst[i] = s.floats[r]
	}
}

// GatherCodes fills dst[i] with the dict code at row sel[i].
func (s *ColumnSegment) GatherCodes(sel []int32, dst []int32) {
	for i, r := range sel {
		dst[i] = s.codes[r]
	}
}

// GatherStrs fills dst[i] with the string at row sel[i].
func (s *ColumnSegment) GatherStrs(sel []int32, dst []string) {
	if s.enc == segDict {
		for i, r := range sel {
			if c := s.codes[r]; c >= 0 {
				dst[i] = s.dict[c]
			} else {
				dst[i] = ""
			}
		}
		return
	}
	for i, r := range sel {
		dst[i] = s.strs[r]
	}
}

// SegmentSet is a sealed columnar snapshot of a table's live rows, in slot
// order (the order ScanPartitioned and the serial scan visit them, which
// the bitwise-identity contract with the row path depends on).
type SegmentSet struct {
	schemaV int64
	dataV   int64
	rows    int
	slots   []int32          // row position -> storage slot (late materialization)
	cols    []*ColumnSegment // by schema column index; nil = not vectorized
}

// Rows returns the number of live rows the set snapshots.
func (ss *SegmentSet) Rows() int { return ss.rows }

// Slot returns the storage slot backing row position i, for materializing
// full rows (group "first" rows) out of a columnar scan.
func (ss *SegmentSet) Slot(i int) int { return int(ss.slots[i]) }

// Col returns the segment for schema column ci, or nil when that column
// was not vectorized.
func (ss *SegmentSet) Col(ci int) *ColumnSegment {
	if ci < 0 || ci >= len(ss.cols) {
		return nil
	}
	return ss.cols[ci]
}

// Covers reports whether every listed column index has a segment.
func (ss *SegmentSet) Covers(cols ...int) bool {
	for _, ci := range cols {
		if ss.Col(ci) == nil {
			return false
		}
	}
	return true
}

// Segments returns the table's current segment set when it is fresh (same
// schema version, no DML since the build), or nil. Callers must hold at
// least a read transaction on the owning database.
func (t *Table) Segments() *SegmentSet {
	set := t.colSeg.Load()
	if set != nil && set.schemaV == t.version && set.dataV == t.dataVersion {
		return set
	}
	return nil
}

// SegmentsLazy returns a fresh segment set, counting this call toward the
// read-mostly heuristic and building the set once segmentBuildAfter
// eligible reads have accumulated since the last data change. Returns nil
// until then. hints maps lower-cased column names to estimated NDV (from
// ANALYZE stats); nil means no hints.
func (t *Table) SegmentsLazy(hints map[string]int) *SegmentSet {
	if set := t.Segments(); set != nil {
		return set
	}
	if int(t.segHits.Add(1)) < segmentBuildAfter {
		return nil
	}
	return t.BuildSegments(hints)
}

// BuildSegments builds (or returns the already-fresh) segment set now.
// Safe under a read transaction: concurrent builders serialize on segMu and
// the winner publishes via an atomic pointer; DML cannot run concurrently
// because it holds the database write lock.
func (t *Table) BuildSegments(hints map[string]int) *SegmentSet {
	t.segMu.Lock()
	defer t.segMu.Unlock()
	if set := t.Segments(); set != nil {
		return set
	}
	set := t.buildSegmentSet(hints)
	if set == nil {
		return nil
	}
	t.colSeg.Store(set)
	mSegBuilds.Inc()
	mSegBuildRows.Add(int64(set.rows))
	return set
}

// ScanColumns is the columnar sibling of ScanPartitioned: when a fresh
// segment set covers cols, it splits the row sequence into at most n
// near-equal [lo,hi) ranges and calls fn once per partition in partition
// order, then returns true. When no fresh covering set exists (yet), it
// returns false without calling fn and the caller falls back to the row
// path; the call still counts toward the lazy-build heuristic.
func (t *Table) ScanColumns(cols []int, n int, fn func(part, lo, hi int, set *SegmentSet)) bool {
	set := t.SegmentsLazy(nil)
	if set == nil || !set.Covers(cols...) {
		return false
	}
	total := set.rows
	if total == 0 {
		return true
	}
	if n < 1 {
		n = 1
	}
	if n > total {
		n = total
	}
	for p := 0; p < n; p++ {
		lo := p * total / n
		hi := (p + 1) * total / n
		fn(p, lo, hi, set)
	}
	return true
}

// noteDataChange invalidates the segment snapshot and resets the
// read-mostly counter. Called from every row mutation point (insert,
// deleteSlot, updateSlot, restoreSlot) under the database write lock.
func (t *Table) noteDataChange() {
	t.dataVersion++
	if t.colSeg.Load() != nil {
		t.colSeg.Store(nil)
		mSegInvalidations.Inc()
	}
	t.segHits.Store(0)
}

// buildSegmentSet encodes the live rows. Returns nil when the table cannot
// be snapshotted (slot space exceeds int32).
func (t *Table) buildSegmentSet(hints map[string]int) *SegmentSet {
	if len(t.rows) > math.MaxInt32 {
		return nil
	}
	set := &SegmentSet{schemaV: t.version, dataV: t.dataVersion}
	set.slots = make([]int32, 0, t.live)
	for slot, row := range t.rows {
		if row != nil {
			set.slots = append(set.slots, int32(slot))
		}
	}
	set.rows = len(set.slots)
	set.cols = make([]*ColumnSegment, len(t.schema.Columns))
	for ci := range t.schema.Columns {
		col := &t.schema.Columns[ci]
		hint := 0
		if hints != nil {
			hint = hints[strings.ToLower(col.Name)]
		}
		set.cols[ci] = t.buildColumnSegment(set.slots, ci, col.Type, hint)
	}
	return set
}

// buildColumnSegment encodes one column, or returns nil when a stored cell
// does not carry the declared column type (normalize guarantees it does,
// so this is purely defensive: an unvectorized column, not an error).
func (t *Table) buildColumnSegment(slots []int32, ci int, typ Type, ndvHint int) *ColumnSegment {
	n := len(slots)
	s := &ColumnSegment{typ: typ, n: n}
	setNull := func(i int) {
		if s.valid == nil {
			s.valid = make([]uint64, (n+63)/64)
			for w := range s.valid {
				s.valid[w] = ^uint64(0)
			}
			if tail := uint(n) & 63; tail != 0 {
				s.valid[len(s.valid)-1] = (1 << tail) - 1
			}
		}
		s.valid[i>>6] &^= 1 << (uint(i) & 63)
	}
	switch typ {
	case TInt, TBool, TTime:
		vals := make([]int64, n)
		for i, slot := range slots {
			v := t.rows[slot][ci]
			if v.T == TNull {
				setNull(i)
				continue
			}
			if v.T != typ {
				return nil
			}
			vals[i] = v.I
		}
		encodeInts(s, vals)
	case TFloat:
		s.enc = segFloat64
		s.floats = make([]float64, n)
		for i, slot := range slots {
			v := t.rows[slot][ci]
			if v.T == TNull {
				setNull(i)
				continue
			}
			if v.T != typ {
				return nil
			}
			s.floats[i] = v.F
		}
	case TString, TBytes:
		if !t.buildStringSegment(s, slots, ci, typ, ndvHint, setNull) {
			return nil
		}
	default:
		return nil
	}
	return s
}

// encodeInts picks the integer layout: RLE for long runs, frame-of-
// reference int32 packing when the value range is narrow, raw otherwise.
func encodeInts(s *ColumnSegment, vals []int64) {
	n := len(vals)
	if n == 0 {
		s.enc = segInt64
		s.ints = vals
		return
	}
	runs := 1
	min, max := vals[0], vals[0]
	for i := 1; i < n; i++ {
		v := vals[i]
		if v != vals[i-1] {
			runs++
		}
		if v < min {
			min = v
		}
		if v > max {
			max = v
		}
	}
	if n >= rleMinRows && runs <= n/rleMaxRunDivisor {
		s.enc = segIntRLE
		s.runVals = make([]int64, 0, runs)
		s.runEnds = make([]int32, 0, runs)
		for i := 0; i < n; {
			j := i + 1
			for j < n && vals[j] == vals[i] {
				j++
			}
			s.runVals = append(s.runVals, vals[i])
			s.runEnds = append(s.runEnds, int32(j))
			i = j
		}
		return
	}
	if r := uint64(max) - uint64(min); r < 1<<31 {
		s.enc = segIntPack
		s.base = min
		s.packed = make([]int32, n)
		for i, v := range vals {
			s.packed[i] = int32(v - min)
		}
		return
	}
	s.enc = segInt64
	s.ints = vals
}

// buildStringSegment attempts dictionary encoding, abandoning it for raw
// storage when the dictionary outgrows dictMaxCodes (or when the ANALYZE
// NDV hint says it would).
func (t *Table) buildStringSegment(s *ColumnSegment, slots []int32, ci int, typ Type, ndvHint int, setNull func(int)) bool {
	n := len(slots)
	tryDict := ndvHint <= dictMaxCodes
	var codes []int32
	var dict []string
	var lookup map[string]int32
	if tryDict {
		codes = make([]int32, n)
		lookup = make(map[string]int32)
	}
	for i, slot := range slots {
		v := t.rows[slot][ci]
		if v.T == TNull {
			setNull(i)
			if tryDict {
				codes[i] = -1
			}
			continue
		}
		if v.T != typ {
			return false
		}
		if tryDict {
			c, ok := lookup[v.S]
			if !ok {
				if len(dict) >= dictMaxCodes {
					tryDict = false
					continue
				}
				c = int32(len(dict))
				dict = append(dict, v.S)
				lookup[v.S] = c
			}
			codes[i] = c
		}
	}
	if tryDict {
		s.enc = segDict
		s.dict = dict
		s.codes = codes
		return true
	}
	s.enc = segString
	s.strs = make([]string, n)
	for i, slot := range slots {
		v := t.rows[slot][ci]
		if v.T == TNull {
			continue
		}
		s.strs[i] = v.S
	}
	return true
}
