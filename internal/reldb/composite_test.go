package reldb

import (
	"testing"
)

func compositeFixture(t *testing.T) *DB {
	t.Helper()
	db := NewMemory()
	mustWrite(t, db, func(tx *Tx) error {
		if err := tx.CreateTable(&Schema{
			Name: "ilp",
			Columns: []Column{
				{Name: "event", Type: TInt, NotNull: true},
				{Name: "metric", Type: TInt, NotNull: true},
				{Name: "node", Type: TInt},
				{Name: "value", Type: TFloat},
			},
		}); err != nil {
			return err
		}
		if err := tx.CreateIndex("ix_em", "ilp", []string{"event", "metric"}, HashIndex, false); err != nil {
			return err
		}
		for e := 0; e < 10; e++ {
			for m := 0; m < 4; m++ {
				for n := 0; n < 8; n++ {
					if _, err := tx.Insert("ilp", Row{
						Int(int64(e)), Int(int64(m)), Int(int64(n)), Float(float64(e*m + n)),
					}); err != nil {
						return err
					}
				}
			}
		}
		return nil
	})
	return db
}

func TestCompositeIndexLookup(t *testing.T) {
	db := compositeFixture(t)
	db.Read(func(tx *Tx) error {
		slots, ok := tx.LookupEqMulti("ilp", []string{"event", "metric"}, []Value{Int(3), Int(2)})
		if !ok {
			t.Fatal("composite index not used")
		}
		if len(slots) != 8 {
			t.Fatalf("slots: %d", len(slots))
		}
		for _, s := range slots {
			row := tx.Row("ilp", s)
			if row[0].I != 3 || row[1].I != 2 {
				t.Fatalf("wrong row: %v", row)
			}
		}
		// Order-insensitive column matching.
		slots2, ok := tx.LookupEqMulti("ilp", []string{"metric", "event"}, []Value{Int(2), Int(3)})
		if !ok || len(slots2) != 8 {
			t.Fatalf("reordered lookup: ok=%v n=%d", ok, len(slots2))
		}
		// Missing combination.
		slots3, ok := tx.LookupEqMulti("ilp", []string{"event", "metric"}, []Value{Int(99), Int(0)})
		if !ok || len(slots3) != 0 {
			t.Fatalf("missing combo: ok=%v n=%d", ok, len(slots3))
		}
		// No matching composite index for these columns.
		if _, ok := tx.LookupEqMulti("ilp", []string{"event", "node"}, []Value{Int(1), Int(1)}); ok {
			t.Fatal("phantom composite index")
		}
		// Single-column lookups must not use the composite index.
		if _, ok := tx.LookupEq("ilp", "event", Int(1)); ok {
			t.Fatal("composite index served a single-column lookup")
		}
		return nil
	})
}

func TestCompositeIndexMaintenance(t *testing.T) {
	db := compositeFixture(t)
	// Delete a row, verify it leaves the index.
	mustWrite(t, db, func(tx *Tx) error { return tx.Delete("ilp", 0) })
	db.Read(func(tx *Tx) error {
		slots, _ := tx.LookupEqMulti("ilp", []string{"event", "metric"}, []Value{Int(0), Int(0)})
		if len(slots) != 7 {
			t.Fatalf("after delete: %d", len(slots))
		}
		return nil
	})
	// Update moves a row between buckets.
	mustWrite(t, db, func(tx *Tx) error {
		return tx.Update("ilp", 1, Row{Int(9), Int(3), Int(0), Float(1)})
	})
	db.Read(func(tx *Tx) error {
		slots, _ := tx.LookupEqMulti("ilp", []string{"event", "metric"}, []Value{Int(9), Int(3)})
		if len(slots) != 9 {
			t.Fatalf("after update: %d", len(slots))
		}
		return nil
	})
	// Rollback restores index state.
	tx := db.Begin()
	tx.Delete("ilp", 2)
	tx.Rollback()
	db.Read(func(tx *Tx) error {
		slots, _ := tx.LookupEqMulti("ilp", []string{"event", "metric"}, []Value{Int(0), Int(0)})
		// 8 original − slot 0 (deleted) − slot 1 (updated away) = 6; the
		// rolled-back delete of slot 2 must not change the count.
		if len(slots) != 6 {
			t.Fatalf("after rollback: %d", len(slots))
		}
		return nil
	})
}

func TestCompositeIndexConstraints(t *testing.T) {
	db := NewMemory()
	mustWrite(t, db, func(tx *Tx) error {
		return tx.CreateTable(&Schema{
			Name: "t",
			Columns: []Column{
				{Name: "a", Type: TInt},
				{Name: "b", Type: TInt},
			},
		})
	})
	// Composite BTREE rejected.
	if err := db.Write(func(tx *Tx) error {
		return tx.CreateIndex("bad", "t", []string{"a", "b"}, OrderedIndex, false)
	}); err == nil {
		t.Fatal("composite btree accepted")
	}
	// Unique composite index enforces tuple uniqueness.
	mustWrite(t, db, func(tx *Tx) error {
		return tx.CreateIndex("uq", "t", []string{"a", "b"}, HashIndex, true)
	})
	mustWrite(t, db, func(tx *Tx) error {
		_, err := tx.Insert("t", Row{Int(1), Int(2)})
		return err
	})
	// Same a, different b: fine.
	mustWrite(t, db, func(tx *Tx) error {
		_, err := tx.Insert("t", Row{Int(1), Int(3)})
		return err
	})
	// Duplicate tuple rejected.
	if err := db.Write(func(tx *Tx) error {
		_, err := tx.Insert("t", Row{Int(1), Int(2)})
		return err
	}); err == nil {
		t.Fatal("duplicate composite tuple accepted")
	}
	// NULL in any key column skips indexing (and uniqueness).
	mustWrite(t, db, func(tx *Tx) error {
		if _, err := tx.Insert("t", Row{Null, Int(2)}); err != nil {
			return err
		}
		_, err := tx.Insert("t", Row{Null, Int(2)})
		return err
	})
}

func TestCompositeIndexPersistence(t *testing.T) {
	dir := t.TempDir()
	db, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	mustWrite(t, db, func(tx *Tx) error {
		if err := tx.CreateTable(&Schema{
			Name: "t",
			Columns: []Column{
				{Name: "a", Type: TInt},
				{Name: "b", Type: TInt},
			},
		}); err != nil {
			return err
		}
		if err := tx.CreateIndex("em", "t", []string{"a", "b"}, HashIndex, false); err != nil {
			return err
		}
		_, err := tx.Insert("t", Row{Int(1), Int(2)})
		return err
	})
	// WAL replay path.
	db2 := reopen(t, db, dir, Options{})
	db2.Read(func(tx *Tx) error {
		slots, ok := tx.LookupEqMulti("t", []string{"a", "b"}, []Value{Int(1), Int(2)})
		if !ok || len(slots) != 1 {
			t.Fatalf("after wal replay: ok=%v n=%d", ok, len(slots))
		}
		return nil
	})
	// Snapshot path.
	if err := db2.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	db3 := reopen(t, db2, dir, Options{})
	defer db3.Close()
	db3.Read(func(tx *Tx) error {
		slots, ok := tx.LookupEqMulti("t", []string{"a", "b"}, []Value{Int(1), Int(2)})
		if !ok || len(slots) != 1 {
			t.Fatalf("after snapshot: ok=%v n=%d", ok, len(slots))
		}
		return nil
	})
}
