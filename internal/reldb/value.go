// Package reldb implements the embedded relational storage engine that
// PerfDMF builds on. It plays the role the paper assigns to PostgreSQL,
// MySQL, Oracle and DB2: typed tables with primary and foreign keys,
// secondary indexes, transactions with rollback, and durable snapshot + WAL
// persistence. The SQL front end lives in internal/sqlparse and
// internal/sqlexec; callers normally reach this package through the
// internal/godbc connectivity layer.
package reldb

import (
	"fmt"
	"math"
	"strconv"
	"time"
)

// Type identifies the declared type of a column or the dynamic type of a
// Value. The zero value is TNull, which is also how SQL NULL is represented.
type Type uint8

// Column and value types supported by the engine.
const (
	TNull   Type = iota // SQL NULL (only valid as a Value type)
	TInt                // 64-bit signed integer
	TFloat              // 64-bit IEEE-754 float
	TString             // UTF-8 string
	TBool               // boolean
	TTime               // timestamp with nanosecond precision
	TBytes              // raw byte string (stored as a Go string)
)

// String returns the SQL spelling of the type.
func (t Type) String() string {
	switch t {
	case TNull:
		return "NULL"
	case TInt:
		return "BIGINT"
	case TFloat:
		return "DOUBLE"
	case TString:
		return "VARCHAR"
	case TBool:
		return "BOOLEAN"
	case TTime:
		return "TIMESTAMP"
	case TBytes:
		return "BLOB"
	}
	return fmt.Sprintf("Type(%d)", uint8(t))
}

// Value is a single cell. It is a compact tagged union: integers, booleans
// and timestamps live in I, floats in F, strings and byte strings in S.
// Value is comparable and can be used directly as a map key, which the hash
// indexes rely on.
type Value struct {
	T Type
	I int64
	F float64
	S string
}

// Null is the SQL NULL value.
var Null = Value{}

// Int returns an integer value.
func Int(i int64) Value { return Value{T: TInt, I: i} }

// Float returns a floating-point value.
func Float(f float64) Value { return Value{T: TFloat, F: f} }

// String returns a string value.
func Str(s string) Value { return Value{T: TString, S: s} }

// Bool returns a boolean value.
func Bool(b bool) Value {
	if b {
		return Value{T: TBool, I: 1}
	}
	return Value{T: TBool}
}

// Time returns a timestamp value.
func Time(t time.Time) Value { return Value{T: TTime, I: t.UnixNano()} }

// Bytes returns a byte-string value. The bytes are copied.
func Bytes(b []byte) Value { return Value{T: TBytes, S: string(b)} }

// IsNull reports whether v is SQL NULL.
func (v Value) IsNull() bool { return v.T == TNull }

// AsInt returns the value as an int64, coercing floats and booleans.
func (v Value) AsInt() int64 {
	switch v.T {
	case TInt, TBool, TTime:
		return v.I
	case TFloat:
		return int64(v.F)
	case TString:
		i, _ := strconv.ParseInt(v.S, 10, 64)
		return i
	}
	return 0
}

// AsFloat returns the value as a float64, coercing integers and booleans.
func (v Value) AsFloat() float64 {
	switch v.T {
	case TInt, TBool:
		return float64(v.I)
	case TTime:
		return float64(v.I)
	case TFloat:
		return v.F
	case TString:
		f, _ := strconv.ParseFloat(v.S, 64)
		return f
	}
	return 0
}

// AsString returns the value rendered as a string.
func (v Value) AsString() string {
	switch v.T {
	case TNull:
		return ""
	case TInt:
		return strconv.FormatInt(v.I, 10)
	case TFloat:
		return strconv.FormatFloat(v.F, 'g', -1, 64)
	case TString, TBytes:
		return v.S
	case TBool:
		if v.I != 0 {
			return "true"
		}
		return "false"
	case TTime:
		return v.AsTime().Format(time.RFC3339Nano)
	}
	return ""
}

// AsBool returns the value as a boolean. Nonzero numbers are true.
func (v Value) AsBool() bool {
	switch v.T {
	case TBool, TInt, TTime:
		return v.I != 0
	case TFloat:
		return v.F != 0
	case TString:
		return v.S == "true" || v.S == "TRUE" || v.S == "1"
	}
	return false
}

// AsTime returns the value as a time.Time.
func (v Value) AsTime() time.Time {
	switch v.T {
	case TTime, TInt:
		return time.Unix(0, v.I).UTC()
	case TString:
		t, _ := time.Parse(time.RFC3339Nano, v.S)
		return t
	}
	return time.Time{}
}

// Go returns the value as a native Go value (nil, int64, float64, string,
// bool, time.Time or []byte), the representation used by internal/godbc.
func (v Value) Go() any {
	switch v.T {
	case TNull:
		return nil
	case TInt:
		return v.I
	case TFloat:
		return v.F
	case TString:
		return v.S
	case TBool:
		return v.I != 0
	case TTime:
		return v.AsTime()
	case TBytes:
		return []byte(v.S)
	}
	return nil
}

// FromGo converts a native Go value into a Value. Unsupported types are
// rendered with fmt.Sprint as strings.
func FromGo(x any) Value {
	switch x := x.(type) {
	case nil:
		return Null
	case int:
		return Int(int64(x))
	case int32:
		return Int(int64(x))
	case int64:
		return Int(x)
	case uint32:
		return Int(int64(x))
	case uint64:
		return Int(int64(x))
	case float32:
		return Float(float64(x))
	case float64:
		return Float(x)
	case string:
		return Str(x)
	case bool:
		return Bool(x)
	case time.Time:
		return Time(x)
	case []byte:
		return Bytes(x)
	case Value:
		return x
	}
	return Str(fmt.Sprint(x))
}

// numeric reports whether the value is of a numeric type (including
// booleans and timestamps, which order by their integer representation).
func (v Value) numeric() bool {
	switch v.T {
	case TInt, TFloat, TBool, TTime:
		return true
	}
	return false
}

// Compare orders two values. NULL sorts before everything; numeric types
// compare by value with int/float coercion; strings and byte strings compare
// lexicographically; mixed incomparable types order by type tag so that
// sorting is total and deterministic.
func Compare(a, b Value) int {
	if a.T == TNull || b.T == TNull {
		switch {
		case a.T == TNull && b.T == TNull:
			return 0
		case a.T == TNull:
			return -1
		default:
			return 1
		}
	}
	if a.numeric() && b.numeric() {
		if a.T == TFloat || b.T == TFloat {
			af, bf := a.AsFloat(), b.AsFloat()
			switch {
			case af < bf:
				return -1
			case af > bf:
				return 1
			case math.Signbit(af) != math.Signbit(bf):
				// -0 vs +0: treat as equal.
				return 0
			default:
				return 0
			}
		}
		switch {
		case a.I < b.I:
			return -1
		case a.I > b.I:
			return 1
		default:
			return 0
		}
	}
	if (a.T == TString || a.T == TBytes) && (b.T == TString || b.T == TBytes) {
		switch {
		case a.S < b.S:
			return -1
		case a.S > b.S:
			return 1
		default:
			return 0
		}
	}
	// Incomparable types: order by tag for a deterministic total order.
	switch {
	case a.T < b.T:
		return -1
	case a.T > b.T:
		return 1
	default:
		return 0
	}
}

// Equal reports whether two values compare as equal.
func Equal(a, b Value) bool { return Compare(a, b) == 0 }

// Coerce converts v to the column type t, or returns an error when the
// conversion would lose meaning (e.g. a non-numeric string into BIGINT).
func Coerce(v Value, t Type) (Value, error) {
	if v.T == TNull || v.T == t {
		return v, nil
	}
	switch t {
	case TInt:
		switch v.T {
		case TFloat:
			return Int(int64(v.F)), nil
		case TBool, TTime:
			return Int(v.I), nil
		case TString:
			i, err := strconv.ParseInt(v.S, 10, 64)
			if err != nil {
				return Null, fmt.Errorf("reldb: cannot coerce %q to BIGINT", v.S)
			}
			return Int(i), nil
		}
	case TFloat:
		switch v.T {
		case TInt, TBool:
			return Float(float64(v.I)), nil
		case TString:
			f, err := strconv.ParseFloat(v.S, 64)
			if err != nil {
				return Null, fmt.Errorf("reldb: cannot coerce %q to DOUBLE", v.S)
			}
			return Float(f), nil
		}
	case TString:
		return Str(v.AsString()), nil
	case TBool:
		switch v.T {
		case TInt:
			return Bool(v.I != 0), nil
		case TString:
			switch v.S {
			case "true", "TRUE", "1":
				return Bool(true), nil
			case "false", "FALSE", "0":
				return Bool(false), nil
			}
			return Null, fmt.Errorf("reldb: cannot coerce %q to BOOLEAN", v.S)
		}
	case TTime:
		switch v.T {
		case TInt:
			return Value{T: TTime, I: v.I}, nil
		case TString:
			tm, err := time.Parse(time.RFC3339Nano, v.S)
			if err != nil {
				return Null, fmt.Errorf("reldb: cannot coerce %q to TIMESTAMP", v.S)
			}
			return Time(tm), nil
		}
	case TBytes:
		if v.T == TString {
			return Value{T: TBytes, S: v.S}, nil
		}
	}
	return Null, fmt.Errorf("reldb: cannot coerce %s to %s", v.T, t)
}
