package reldb

import (
	"bufio"
	"bytes"
	"testing"
)

// FuzzValueRoundTrip asserts the snapshot/WAL value codec is stable:
// encoding any well-formed Value and decoding it back must reproduce the
// identical byte encoding (byte comparison sidesteps NaN != NaN), with no
// decoder error and no panic.
func FuzzValueRoundTrip(f *testing.F) {
	f.Add(uint8(0), int64(0), 0.0, "")
	f.Add(uint8(1), int64(-1), 0.0, "")
	f.Add(uint8(2), int64(0), 3.5, "")
	f.Add(uint8(3), int64(0), 0.0, "MPI_Send")
	f.Add(uint8(4), int64(1), 0.0, "")
	f.Add(uint8(5), int64(1721212121212121212), 0.0, "")
	f.Add(uint8(6), int64(0), 0.0, "\x00\xff raw bytes \xfe")
	f.Fuzz(func(t *testing.T, tag uint8, i int64, fv float64, s string) {
		var v Value
		switch tag % 7 {
		case 0:
			v = Null
		case 1:
			v = Value{T: TInt, I: i}
		case 2:
			v = Value{T: TFloat, F: fv}
		case 3:
			v = Value{T: TString, S: s}
		case 4:
			v = Value{T: TBool, I: i & 1}
		case 5:
			v = Value{T: TTime, I: i}
		case 6:
			v = Value{T: TBytes, S: s}
		}

		var enc bytes.Buffer
		putValue(&enc, v)
		encoded := append([]byte(nil), enc.Bytes()...)

		d := &reader{r: bufio.NewReader(bytes.NewReader(encoded))}
		got := d.value()
		if d.err != nil {
			t.Fatalf("decode %+v (bytes %x): %v", v, encoded, d.err)
		}
		if got.T != v.T {
			t.Fatalf("type changed in round trip: %v -> %v", v.T, got.T)
		}

		var re bytes.Buffer
		putValue(&re, got)
		if !bytes.Equal(encoded, re.Bytes()) {
			t.Fatalf("round trip changed encoding: %x -> %x (value %+v)", encoded, re.Bytes(), got)
		}
	})
}

// FuzzValueDecode feeds arbitrary bytes to the value decoder: corrupt
// WAL/snapshot input must surface as reader.err, never as a panic.
func FuzzValueDecode(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{0})
	f.Add([]byte{1, 0x80})
	f.Add([]byte{3, 0xff, 0xff, 0xff})
	f.Add([]byte{99, 1, 2, 3})
	f.Fuzz(func(t *testing.T, data []byte) {
		d := &reader{r: bufio.NewReader(bytes.NewReader(data))}
		_ = d.value()
	})
}
