package reldb

import (
	"testing"
	"time"
)

func TestCatalogAccessors(t *testing.T) {
	db := NewMemory()
	mustWrite(t, db, func(tx *Tx) error {
		if err := tx.CreateTable(appSchema()); err != nil {
			return err
		}
		if err := tx.CreateTable(expSchema()); err != nil {
			return err
		}
		return tx.CreateIndex("ix_name", "application", []string{"name"}, OrderedIndex, false)
	})
	db.Read(func(tx *Tx) error {
		names := tx.TableNames()
		if len(names) != 2 || names[0] != "application" || names[1] != "experiment" {
			t.Fatalf("TableNames: %v", names)
		}
		if !tx.IndexOn("application", "name", true) {
			t.Error("IndexOn ranged")
		}
		if !tx.IndexOn("application", "id", false) {
			t.Error("IndexOn pk")
		}
		if tx.IndexOn("application", "version", false) {
			t.Error("phantom index")
		}
		if tx.IndexOn("nosuch", "x", false) {
			t.Error("index on missing table")
		}
		tbl, _ := tx.Table("application")
		if tbl.Len() != 0 {
			t.Errorf("Len: %d", tbl.Len())
		}
		ixs := tbl.Indexes()
		if len(ixs) != 1 || ixs[0].Column() != "name" || ixs[0].Kind.String() != "BTREE" {
			t.Fatalf("Indexes: %+v", ixs)
		}
		if HashIndex.String() != "HASH" {
			t.Error("kind string")
		}
		s := tbl.Schema()
		if s.Column("NAME") == nil || s.Column("nope") != nil {
			t.Error("Schema.Column")
		}
		cols := s.ColumnNames()
		if len(cols) != 3 || cols[0] != "id" {
			t.Errorf("ColumnNames: %v", cols)
		}
		return nil
	})
	// DropIndex removes it; dropping twice fails.
	mustWrite(t, db, func(tx *Tx) error { return tx.DropIndex("application", "ix_name") })
	db.Read(func(tx *Tx) error {
		if tx.IndexOn("application", "name", false) {
			t.Error("index survived drop")
		}
		return nil
	})
	if err := db.Write(func(tx *Tx) error { return tx.DropIndex("application", "ix_name") }); err == nil {
		t.Error("double drop accepted")
	}
	// DropIndex rolls back.
	mustWrite(t, db, func(tx *Tx) error {
		return tx.CreateIndex("ix2", "application", []string{"name"}, HashIndex, false)
	})
	tx := db.Begin()
	tx.DropIndex("application", "ix2") //nolint:errcheck
	tx.Rollback()
	db.Read(func(tx *Tx) error {
		if !tx.IndexOn("application", "name", false) {
			t.Error("DropIndex rollback lost the index")
		}
		return nil
	})
}

func TestValueStringAndTimeRendering(t *testing.T) {
	when := time.Date(2005, 8, 1, 12, 30, 0, 0, time.UTC)
	cases := []struct {
		v    Value
		want string
	}{
		{Null, ""},
		{Int(-3), "-3"},
		{Float(2.5), "2.5"},
		{Str("x"), "x"},
		{Bool(true), "true"},
		{Bool(false), "false"},
		{Bytes([]byte("ab")), "ab"},
		{Time(when), "2005-08-01T12:30:00Z"},
	}
	for _, c := range cases {
		if got := c.v.AsString(); got != c.want {
			t.Errorf("AsString(%v) = %q, want %q", c.v, got, c.want)
		}
	}
	// AsTime branches.
	if got := Time(when).AsTime(); !got.Equal(when) {
		t.Error("AsTime from TTime")
	}
	if got := Str("2005-08-01T12:30:00Z").AsTime(); !got.Equal(when) {
		t.Errorf("AsTime from string: %v", got)
	}
	if !Float(1.5).AsTime().IsZero() {
		t.Error("AsTime from float should be zero")
	}
	if !Str("garbage").AsTime().IsZero() {
		t.Error("AsTime from garbage should be zero")
	}
}

func TestFromGoWideTypes(t *testing.T) {
	if FromGo(int32(4)).AsInt() != 4 {
		t.Error("int32")
	}
	if FromGo(uint32(5)).AsInt() != 5 {
		t.Error("uint32")
	}
	if FromGo(uint64(6)).AsInt() != 6 {
		t.Error("uint64")
	}
	if FromGo(float32(1.5)).AsFloat() != 1.5 {
		t.Error("float32")
	}
	if FromGo(Int(7)).AsInt() != 7 {
		t.Error("Value passthrough")
	}
	// Unsupported type renders via fmt.
	if FromGo(struct{ A int }{1}).T != TString {
		t.Error("fallback to string")
	}
}

func TestCoerceRemainingBranches(t *testing.T) {
	// Bool/time sources into BIGINT.
	if v, err := Coerce(Bool(true), TInt); err != nil || v.I != 1 {
		t.Errorf("bool→int: %v %v", v, err)
	}
	when := time.Now()
	if v, err := Coerce(Time(when), TInt); err != nil || v.I != when.UnixNano() {
		t.Errorf("time→int: %v %v", v, err)
	}
	// Bool into DOUBLE.
	if v, err := Coerce(Bool(true), TFloat); err != nil || v.F != 1 {
		t.Errorf("bool→float: %v %v", v, err)
	}
	// Int into BOOLEAN / TIMESTAMP.
	if v, err := Coerce(Int(0), TBool); err != nil || v.AsBool() {
		t.Errorf("int→bool: %v %v", v, err)
	}
	if v, err := Coerce(Int(123), TTime); err != nil || v.I != 123 {
		t.Errorf("int→time: %v %v", v, err)
	}
	// Strings into BOOLEAN.
	if v, err := Coerce(Str("FALSE"), TBool); err != nil || v.AsBool() {
		t.Errorf("FALSE→bool: %v %v", v, err)
	}
	// String into BLOB; float into BLOB fails.
	if v, err := Coerce(Str("b"), TBytes); err != nil || v.T != TBytes {
		t.Errorf("str→blob: %v %v", v, err)
	}
	if _, err := Coerce(Float(1), TBytes); err == nil {
		t.Error("float→blob accepted")
	}
	// Bad time string.
	if _, err := Coerce(Str("not-a-time"), TTime); err == nil {
		t.Error("garbage→time accepted")
	}
	// Everything into VARCHAR works.
	if v, err := Coerce(Bool(true), TString); err != nil || v.S != "true" {
		t.Errorf("bool→varchar: %v %v", v, err)
	}
}

func TestCheckpointNoopForMemory(t *testing.T) {
	db := NewMemory()
	if err := db.Checkpoint(); err != nil {
		t.Fatalf("memory checkpoint: %v", err)
	}
	if err := db.Close(); err != nil {
		t.Fatalf("memory close: %v", err)
	}
	// Double close of a durable DB is safe.
	dir := t.TempDir()
	d, err := Open(dir, Options{Sync: true})
	if err != nil {
		t.Fatal(err)
	}
	mustWrite(t, d, func(tx *Tx) error { return tx.CreateTable(appSchema()) })
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}
	if err := d.Close(); err != nil {
		t.Fatalf("double close: %v", err)
	}
}

func TestSyncOptionWritesThrough(t *testing.T) {
	dir := t.TempDir()
	db, err := Open(dir, Options{Sync: true})
	if err != nil {
		t.Fatal(err)
	}
	mustWrite(t, db, func(tx *Tx) error {
		if err := tx.CreateTable(appSchema()); err != nil {
			return err
		}
		_, err := tx.Insert("application", Row{Null, Str("synced"), Null})
		return err
	})
	// Reopen without closing cleanly-ish (Close flushes anyway; the point
	// is the data is in the WAL immediately after commit).
	db2 := reopen(t, db, dir, Options{})
	defer db2.Close()
	if n := countRows(t, db2, "application"); n != 1 {
		t.Fatalf("rows: %d", n)
	}
}
