package reldb

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"
)

// DB is an embedded relational database: a catalog of tables plus optional
// durable storage. All access goes through transactions (see Tx): Read for
// shared snapshots, Write for atomic mutations, Begin for explicit
// multi-statement transactions. A single writer is admitted at a time.
type DB struct {
	mu      sync.RWMutex
	tables  map[string]*Table // keyed by lower-cased table name
	wal     *walWriter        // nil for purely in-memory databases
	dir     string            // durable storage directory ("" = memory)
	walOps  int               // logical ops appended since last checkpoint
	chkEach int               // checkpoint after this many ops (0 = never)
	lastChk time.Time         // last successful checkpoint (or the snapshot
	// loaded at Open); zero for in-memory databases and fresh directories
	closed bool
}

// NewMemory returns a new in-memory database with no durable storage.
func NewMemory() *DB {
	return &DB{tables: make(map[string]*Table)}
}

// Tx is a transaction. Read-only transactions may run concurrently; a
// write transaction excludes all others for its duration. Writes are
// buffered into an undo log so Rollback restores the previous state, and
// into a redo log that is appended to the WAL on Commit.
type Tx struct {
	db       *DB
	writable bool
	done     bool
	undo     []undoRec
	redo     []walRecord
}

type undoKind uint8

const (
	undoInsert undoKind = iota
	undoDelete
	undoUpdate
	undoDDL
)

type undoRec struct {
	kind    undoKind
	table   string
	slot    int
	row     Row    // previous row for delete/update
	restore func() // DDL restoration closure
}

// Read runs fn with a shared read transaction.
func (db *DB) Read(fn func(tx *Tx) error) error {
	db.mu.RLock()
	defer db.mu.RUnlock()
	mTxRead.Inc()
	tx := &Tx{db: db}
	return fn(tx)
}

// Write runs fn in a write transaction, committing when fn returns nil and
// rolling back when it returns an error.
func (db *DB) Write(fn func(tx *Tx) error) error {
	tx := db.Begin()
	if err := fn(tx); err != nil {
		tx.Rollback()
		return err
	}
	return tx.Commit()
}

// Begin starts an explicit write transaction. The caller must call Commit
// or Rollback; the database is locked until then.
func (db *DB) Begin() *Tx {
	start := time.Now()
	db.mu.Lock()
	mLockWaitNS.Observe(int64(time.Since(start)))
	mTxBegin.Inc()
	return &Tx{db: db, writable: true} //lint:allow lockcheck -- Begin returns holding the lock; Commit/Rollback release it
}

// TryBegin is Begin without the wait: when another transaction holds the
// write lock it returns (nil, false) immediately instead of queueing. The
// telemetry writer uses it so background persistence never lines up behind
// — or gets the lock handed to it in the middle of — the workload it is
// measuring; a refused attempt becomes a governor stall signal instead.
func (db *DB) TryBegin() (*Tx, bool) {
	if !db.mu.TryLock() {
		mTryBeginMisses.Inc()
		return nil, false
	}
	mTxBegin.Inc()
	// TryBegin returns holding the lock; Commit/Rollback release it.
	// (No lockcheck suppression needed: TryLock acquisitions are outside
	// its scope, so the escaped lock is modeled by lockorder's HeldOnEntry
	// contract instead.)
	return &Tx{db: db, writable: true}, true
}

// Commit applies the transaction: the redo log is appended to the WAL (when
// the database is durable) and the write lock is released.
func (tx *Tx) Commit() error { return tx.commit(false) }

// CommitRelaxed commits with relaxed durability: the redo log is appended
// to the WAL but the per-commit fsync (when Options.Sync is on) may be
// deferred and batched with later commits. The write is ordered before any
// subsequent synchronous commit, checkpoint, or Close — a crash can lose
// only the most recent relaxed batch. The telemetry writer uses this: a
// lost tail of self-observation spans is acceptable, an fsync per span
// batch on the workload's engine is not. On databases opened without Sync
// it is identical to Commit.
func (tx *Tx) CommitRelaxed() error { return tx.commit(true) }

func (tx *Tx) commit(relaxed bool) error {
	if !tx.writable || tx.done {
		return nil
	}
	tx.done = true
	mTxCommit.Inc()
	defer tx.db.mu.Unlock()
	if tx.db.wal != nil && len(tx.redo) > 0 {
		if err := tx.db.wal.append(tx.redo, relaxed); err != nil {
			// The in-memory state is ahead of the durable state; roll the
			// memory back so the two agree.
			tx.rollbackLocked()
			return fmt.Errorf("reldb: wal append: %w", err)
		}
		tx.db.walOps += len(tx.redo)
		if tx.db.chkEach > 0 && tx.db.walOps >= tx.db.chkEach {
			if err := tx.db.checkpointLocked(); err != nil {
				return fmt.Errorf("reldb: checkpoint: %w", err)
			}
		}
	}
	return nil
}

// Rollback undoes every change made in the transaction and releases the
// write lock.
func (tx *Tx) Rollback() {
	if !tx.writable || tx.done {
		return
	}
	tx.done = true
	mTxRollback.Inc()
	tx.rollbackLocked()
	tx.db.mu.Unlock()
}

func (tx *Tx) rollbackLocked() {
	for i := len(tx.undo) - 1; i >= 0; i-- {
		u := tx.undo[i]
		switch u.kind {
		case undoInsert:
			t := tx.db.tables[u.table]
			t.deleteSlot(u.slot) //nolint:errcheck // undoing a successful insert
		case undoDelete:
			tx.db.tables[u.table].restoreSlot(u.slot, u.row)
		case undoUpdate:
			t := tx.db.tables[u.table]
			t.updateSlot(u.slot, u.row) //nolint:errcheck // restoring the previous row
		case undoDDL:
			u.restore()
		}
	}
	tx.undo = nil
	tx.redo = nil
}

// logRedo reports whether redo records must be collected: only durable
// databases replay them into the WAL at commit. Skipping them for
// in-memory databases keeps bulk uploads from cloning every row.
func (tx *Tx) logRedo() bool { return tx.db.wal != nil }

func (tx *Tx) needWrite() error {
	if !tx.writable {
		return fmt.Errorf("reldb: write inside a read-only transaction")
	}
	if tx.done {
		return fmt.Errorf("reldb: transaction already finished")
	}
	return nil
}

// Table returns the named table, or an error when it does not exist.
func (tx *Tx) Table(name string) (*Table, error) {
	t := tx.db.tables[strings.ToLower(name)]
	if t == nil {
		return nil, fmt.Errorf("reldb: no table %s", name)
	}
	return t, nil
}

// HasTable reports whether the named table exists.
func (tx *Tx) HasTable(name string) bool {
	return tx.db.tables[strings.ToLower(name)] != nil
}

// TableNames returns the table names in sorted order.
func (tx *Tx) TableNames() []string {
	names := make([]string, 0, len(tx.db.tables))
	for _, t := range tx.db.tables {
		names = append(names, t.schema.Name)
	}
	sort.Strings(names)
	return names
}

// CreateTable adds a table with the given schema.
func (tx *Tx) CreateTable(schema *Schema) error {
	if err := tx.needWrite(); err != nil {
		return err
	}
	if err := schema.validate(); err != nil {
		return err
	}
	key := strings.ToLower(schema.Name)
	if tx.db.tables[key] != nil {
		return fmt.Errorf("reldb: table %s already exists", schema.Name)
	}
	for _, fk := range schema.ForeignKeys {
		ref := tx.db.tables[strings.ToLower(fk.RefTable)]
		if ref == nil && !strings.EqualFold(fk.RefTable, schema.Name) {
			return fmt.Errorf("reldb: table %s: foreign key references unknown table %s",
				schema.Name, fk.RefTable)
		}
		if ref != nil && !strings.EqualFold(ref.schema.PrimaryKey, fk.RefColumn) {
			return fmt.Errorf("reldb: table %s: foreign key must reference the primary key of %s",
				schema.Name, fk.RefTable)
		}
	}
	tx.db.tables[key] = newTable(schema.clone())
	tx.undo = append(tx.undo, undoRec{kind: undoDDL, restore: func() {
		delete(tx.db.tables, key)
	}})
	tx.redo = append(tx.redo, walRecord{kind: walCreateTable, schema: schema.clone()})
	return nil
}

// DropTable removes a table and its indexes.
func (tx *Tx) DropTable(name string) error {
	if err := tx.needWrite(); err != nil {
		return err
	}
	key := strings.ToLower(name)
	t := tx.db.tables[key]
	if t == nil {
		return fmt.Errorf("reldb: no table %s", name)
	}
	delete(tx.db.tables, key)
	tx.undo = append(tx.undo, undoRec{kind: undoDDL, restore: func() {
		tx.db.tables[key] = t
	}})
	tx.redo = append(tx.redo, walRecord{kind: walDropTable, table: t.schema.Name})
	return nil
}

// AddColumn appends a column to an existing table.
func (tx *Tx) AddColumn(table string, col Column) error {
	if err := tx.needWrite(); err != nil {
		return err
	}
	t, err := tx.Table(table)
	if err != nil {
		return err
	}
	if err := t.addColumn(col); err != nil {
		return err
	}
	name := col.Name
	tx.undo = append(tx.undo, undoRec{kind: undoDDL, restore: func() {
		t.dropColumn(name) //nolint:errcheck // undoing a successful add
	}})
	tx.redo = append(tx.redo, walRecord{kind: walAddColumn, table: t.schema.Name, column: col})
	return nil
}

// DropColumn removes a column from an existing table.
func (tx *Tx) DropColumn(table, column string) error {
	if err := tx.needWrite(); err != nil {
		return err
	}
	t, err := tx.Table(table)
	if err != nil {
		return err
	}
	pos := t.schema.ColumnIndex(column)
	if pos < 0 {
		return fmt.Errorf("reldb: table %s: no column %s", table, column)
	}
	// Snapshot enough state to restore the column on rollback.
	colDef := t.schema.Columns[pos]
	saved := make([]Value, len(t.rows))
	for slot, row := range t.rows {
		if row != nil {
			saved[slot] = row[pos]
		}
	}
	if err := t.dropColumn(column); err != nil {
		return err
	}
	tx.undo = append(tx.undo, undoRec{kind: undoDDL, restore: func() {
		t.schema.Columns = append(t.schema.Columns, Column{})
		copy(t.schema.Columns[pos+1:], t.schema.Columns[pos:])
		t.schema.Columns[pos] = colDef
		for slot, row := range t.rows {
			if row == nil {
				continue
			}
			row = append(row, Null)
			copy(row[pos+1:], row[pos:])
			row[pos] = saved[slot]
			t.rows[slot] = row
		}
		if t.pk != nil {
			t.pk.cols[0] = t.schema.ColumnIndex(t.pk.Columns[0])
		}
		for _, ix := range t.indexes {
			for i, icol := range ix.Columns {
				ix.cols[i] = t.schema.ColumnIndex(icol)
			}
		}
		t.arena = nil
		t.bumpVersion()
	}})
	tx.redo = append(tx.redo, walRecord{kind: walDropColumn, table: t.schema.Name, name: column})
	return nil
}

// CreateIndex builds a secondary index over one or more columns of a
// table. Multi-column indexes must be hash indexes.
func (tx *Tx) CreateIndex(name, table string, columns []string, kind IndexKind, unique bool) error {
	if err := tx.needWrite(); err != nil {
		return err
	}
	t, err := tx.Table(table)
	if err != nil {
		return err
	}
	key := strings.ToLower(name)
	if t.indexes[key] != nil {
		return fmt.Errorf("reldb: index %s already exists", name)
	}
	canonical := make([]string, len(columns))
	cols := make([]int, len(columns))
	for i, column := range columns {
		pos := t.schema.ColumnIndex(column)
		if pos < 0 {
			return fmt.Errorf("reldb: table %s: no column %s", table, column)
		}
		canonical[i] = t.schema.Columns[pos].Name
		cols[i] = pos
	}
	ix, err := newIndex(name, t.schema.Name, canonical, cols, kind, unique)
	if err != nil {
		return err
	}
	if err := ix.rebuild(t.rows); err != nil {
		return err
	}
	t.indexes[key] = ix
	t.bumpVersion()
	tx.undo = append(tx.undo, undoRec{kind: undoDDL, restore: func() {
		delete(t.indexes, key)
		t.bumpVersion()
	}})
	tx.redo = append(tx.redo, walRecord{
		kind: walCreateIndex, table: t.schema.Name, name: name,
		ixColumns: canonical, ixKind: kind, unique: unique,
	})
	return nil
}

// DropIndex removes a secondary index.
func (tx *Tx) DropIndex(table, name string) error {
	if err := tx.needWrite(); err != nil {
		return err
	}
	t, err := tx.Table(table)
	if err != nil {
		return err
	}
	key := strings.ToLower(name)
	ix := t.indexes[key]
	if ix == nil {
		return fmt.Errorf("reldb: no index %s on table %s", name, table)
	}
	delete(t.indexes, key)
	t.bumpVersion()
	tx.undo = append(tx.undo, undoRec{kind: undoDDL, restore: func() {
		t.indexes[key] = ix
		t.bumpVersion()
	}})
	tx.redo = append(tx.redo, walRecord{kind: walDropIndex, table: t.schema.Name, name: name})
	return nil
}

// checkForeignKeys verifies that every foreign-key column in row references
// an existing primary key (or is NULL).
func (tx *Tx) checkForeignKeys(t *Table, row Row) error {
	for _, fk := range t.schema.ForeignKeys {
		v := row[t.schema.ColumnIndex(fk.Column)]
		if v.IsNull() {
			continue
		}
		ref := tx.db.tables[strings.ToLower(fk.RefTable)]
		if ref == nil {
			return fmt.Errorf("reldb: table %s: foreign key references missing table %s",
				t.schema.Name, fk.RefTable)
		}
		if ref.lookupPK(v) < 0 {
			return fmt.Errorf("reldb: table %s: foreign key %s=%v has no match in %s",
				t.schema.Name, fk.Column, v.Go(), fk.RefTable)
		}
	}
	return nil
}

// Insert adds a row (in schema column order; use Null for omitted values)
// and returns the value of the primary-key column, which for auto-increment
// tables is the assigned id.
func (tx *Tx) Insert(table string, row Row) (Value, error) {
	if err := tx.needWrite(); err != nil {
		return Null, err
	}
	t, err := tx.Table(table)
	if err != nil {
		return Null, err
	}
	norm, err := t.normalize(row)
	if err != nil {
		return Null, err
	}
	if err := tx.checkForeignKeys(t, norm); err != nil {
		return Null, err
	}
	slot, err := t.insert(norm)
	if err != nil {
		return Null, err
	}
	mRowsInserted.Inc()
	tx.undo = append(tx.undo, undoRec{kind: undoInsert, table: strings.ToLower(table), slot: slot})
	if tx.logRedo() {
		tx.redo = append(tx.redo, walRecord{kind: walInsert, table: t.schema.Name, row: norm.clone()})
	}
	if t.pk != nil {
		return norm[t.pk.cols[0]], nil
	}
	return Null, nil
}

// Update replaces the row at slot. The new row passes through the same
// normalization and constraint checks as an insert.
func (tx *Tx) Update(table string, slot int, row Row) error {
	if err := tx.needWrite(); err != nil {
		return err
	}
	t, err := tx.Table(table)
	if err != nil {
		return err
	}
	norm, err := t.normalize(row)
	if err != nil {
		return err
	}
	if err := tx.checkForeignKeys(t, norm); err != nil {
		return err
	}
	old, err := t.updateSlot(slot, norm)
	if err != nil {
		return err
	}
	mRowsUpdated.Inc()
	tx.undo = append(tx.undo, undoRec{kind: undoUpdate, table: strings.ToLower(table), slot: slot, row: old})
	if tx.logRedo() {
		tx.redo = append(tx.redo, walRecord{kind: walUpdate, table: t.schema.Name, slot: slot, row: norm.clone()})
	}
	return nil
}

// Delete removes the row at slot.
func (tx *Tx) Delete(table string, slot int) error {
	if err := tx.needWrite(); err != nil {
		return err
	}
	t, err := tx.Table(table)
	if err != nil {
		return err
	}
	old, err := t.deleteSlot(slot)
	if err != nil {
		return err
	}
	mRowsDeleted.Inc()
	tx.undo = append(tx.undo, undoRec{kind: undoDelete, table: strings.ToLower(table), slot: slot, row: old})
	if tx.logRedo() {
		tx.redo = append(tx.redo, walRecord{kind: walDelete, table: t.schema.Name, slot: slot})
	}
	return nil
}

// Scan visits every live row of the table in slot order.
func (tx *Tx) Scan(table string, fn func(slot int, row Row) bool) error {
	t, err := tx.Table(table)
	if err != nil {
		return err
	}
	t.scan(fn)
	return nil
}

// ScanPartitioned exposes Table.ScanPartitioned under a transaction: the
// slot array split into at most n contiguous ranges, delivered in order.
// The row slices alias live storage and are only safe to read while the
// transaction is open.
func (tx *Tx) ScanPartitioned(table string, n int, fn func(part, base int, rows []Row)) error {
	t, err := tx.Table(table)
	if err != nil {
		return err
	}
	t.ScanPartitioned(n, fn)
	return nil
}

// ColumnSegments returns the named table's fresh columnar snapshot,
// counting this call toward the lazy read-mostly build heuristic (see
// Table.SegmentsLazy). Returns nil when the table does not exist or no
// fresh set is available yet. The set is sealed and safe to read for as
// long as the transaction is open.
func (tx *Tx) ColumnSegments(table string, hints map[string]int) *SegmentSet {
	t := tx.db.tables[strings.ToLower(table)]
	if t == nil {
		return nil
	}
	return t.SegmentsLazy(hints)
}

// BuildColumnSegments builds the named table's columnar snapshot now (the
// COMPACT statement), returning the number of rows encoded.
func (tx *Tx) BuildColumnSegments(table string, hints map[string]int) (int, error) {
	t, err := tx.Table(table)
	if err != nil {
		return 0, err
	}
	set := t.BuildSegments(hints)
	if set == nil {
		return 0, fmt.Errorf("reldb: table %s: cannot build column segments", table)
	}
	return set.rows, nil
}

// ScanColumns exposes Table.ScanColumns under a transaction: partitioned
// ranges over the sealed columnar snapshot when one covers cols, or false
// for row-path fallback.
func (tx *Tx) ScanColumns(table string, cols []int, n int, fn func(part, lo, hi int, set *SegmentSet)) (bool, error) {
	t, err := tx.Table(table)
	if err != nil {
		return false, err
	}
	return t.ScanColumns(cols, n, fn), nil
}

// TableVersion returns the schema version of the named table, or 0 when no
// such table exists. See Table.Version.
func (tx *Tx) TableVersion(table string) int64 {
	t := tx.db.tables[strings.ToLower(table)]
	if t == nil {
		return 0
	}
	return t.version
}

// Row returns the row at slot, or nil.
func (tx *Tx) Row(table string, slot int) Row {
	t := tx.db.tables[strings.ToLower(table)]
	if t == nil {
		return nil
	}
	return t.row(slot)
}

// LookupEq returns the slots whose column equals v, using an index when one
// exists; the second result reports whether an index was used (false means
// the caller must fall back to a scan).
func (tx *Tx) LookupEq(table, column string, v Value) ([]int, bool) {
	t := tx.db.tables[strings.ToLower(table)]
	if t == nil {
		return nil, false
	}
	ix := t.indexOn(column, false)
	if ix == nil {
		return nil, false
	}
	return ix.lookup(v), true
}

// LookupEqMulti returns the slots matching an equality on several columns
// at once, using a composite hash index whose column set matches exactly.
// The second result reports whether such an index existed.
func (tx *Tx) LookupEqMulti(table string, columns []string, vals []Value) ([]int, bool) {
	if len(columns) != len(vals) || len(columns) < 2 {
		return nil, false
	}
	t := tx.db.tables[strings.ToLower(table)]
	if t == nil {
		return nil, false
	}
	ix := t.indexOnMulti(columns)
	if ix == nil {
		return nil, false
	}
	// Reorder vals to the index's column order.
	ordered := make([]Value, len(ix.Columns))
	for i, icol := range ix.Columns {
		found := false
		for j, c := range columns {
			if strings.EqualFold(c, icol) {
				ordered[i] = vals[j]
				found = true
				break
			}
		}
		if !found {
			return nil, false
		}
		if ordered[i].IsNull() {
			return nil, true // NULL never matches an index entry
		}
	}
	return ix.lookupVals(ordered), true
}

// IndexOn reports whether the table has an index usable for equality
// lookups on column (ranged=false) or range scans (ranged=true).
func (tx *Tx) IndexOn(table, column string, ranged bool) bool {
	t := tx.db.tables[strings.ToLower(table)]
	if t == nil {
		return false
	}
	return t.indexOn(column, ranged) != nil
}

// ScanRange visits slots whose column value lies between lo and hi (either
// may be Null for an open bound) in value order, using an ordered index.
// It reports whether such an index existed.
func (tx *Tx) ScanRange(table, column string, lo, hi Value, loInc, hiInc bool, fn func(slot int) bool) bool {
	t := tx.db.tables[strings.ToLower(table)]
	if t == nil {
		return false
	}
	ix := t.indexOn(column, true)
	if ix == nil {
		return false
	}
	var lb, hb bound
	if !lo.IsNull() {
		lb = bound{val: &lo, inclusive: loInc}
	}
	if !hi.IsNull() {
		hb = bound{val: &hi, inclusive: hiInc}
	}
	ix.scanRange(lb, hb, fn)
	return true
}
