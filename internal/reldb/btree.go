package reldb

// btree is an in-memory B+tree mapping a column Value to the set of row
// slots holding that value. It backs ordered (range-scannable) secondary
// indexes. Duplicate keys are supported by storing a slot list per key.
//
// Deletion removes keys from leaves without rebalancing; separator keys in
// internal nodes may go stale, which the search logic tolerates. For an
// index workload dominated by bulk insert and scan (the PerfDMF upload and
// download paths) this keeps the structure simple without hurting the
// common case.
type btree struct {
	root *bnode
	size int // number of distinct keys
}

const btreeOrder = 64 // max keys per node

type bnode struct {
	leaf bool
	keys []Value
	vals [][]int  // per-key slot lists (leaf only)
	kids []*bnode // children (internal only); len(kids) == len(keys)+1
	next *bnode   // right sibling (leaf only)
}

func newBtree() *btree {
	return &btree{root: &bnode{leaf: true}}
}

// findLeaf descends to the leaf that would contain key.
func (t *btree) findLeaf(key Value) *bnode {
	n := t.root
	for !n.leaf {
		i := n.childIndex(key)
		n = n.kids[i]
	}
	return n
}

// childIndex returns the child to descend into for key: the first i with
// key < keys[i], else the last child.
func (n *bnode) childIndex(key Value) int {
	lo, hi := 0, len(n.keys)
	for lo < hi {
		mid := (lo + hi) / 2
		if Compare(key, n.keys[mid]) < 0 {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	return lo
}

// keyIndex returns the position of key in a leaf and whether it was found;
// when not found it is the insertion position.
func (n *bnode) keyIndex(key Value) (int, bool) {
	lo, hi := 0, len(n.keys)
	for lo < hi {
		mid := (lo + hi) / 2
		if c := Compare(n.keys[mid], key); c < 0 {
			lo = mid + 1
		} else if c > 0 {
			hi = mid
		} else {
			return mid, true
		}
	}
	return lo, false
}

// insert adds slot under key.
func (t *btree) insert(key Value, slot int) {
	leaf := t.findLeaf(key)
	i, ok := leaf.keyIndex(key)
	if ok {
		leaf.vals[i] = append(leaf.vals[i], slot)
		return
	}
	leaf.keys = append(leaf.keys, Null)
	copy(leaf.keys[i+1:], leaf.keys[i:])
	leaf.keys[i] = key
	leaf.vals = append(leaf.vals, nil)
	copy(leaf.vals[i+1:], leaf.vals[i:])
	leaf.vals[i] = []int{slot}
	t.size++
	if len(leaf.keys) > btreeOrder {
		t.splitPath(key)
	}
}

// splitPath re-descends from the root splitting any overfull node on the
// path to key. Because only one leaf grew, at most one node per level needs
// splitting, and splitting top-down keeps parent pointers unnecessary.
func (t *btree) splitPath(key Value) {
	if len(t.root.keys) > btreeOrder {
		sep, right := t.root.split()
		t.root = &bnode{
			keys: []Value{sep},
			kids: []*bnode{t.root, right},
		}
	}
	n := t.root
	for !n.leaf {
		i := n.childIndex(key)
		child := n.kids[i]
		if len(child.keys) > btreeOrder {
			sep, right := child.split()
			n.keys = append(n.keys, Null)
			copy(n.keys[i+1:], n.keys[i:])
			n.keys[i] = sep
			n.kids = append(n.kids, nil)
			copy(n.kids[i+2:], n.kids[i+1:])
			n.kids[i+1] = right
			if Compare(key, sep) >= 0 {
				child = right
			}
		}
		n = child
	}
}

// split divides an overfull node in two, returning the separator key and
// the new right sibling.
func (n *bnode) split() (Value, *bnode) {
	mBtreeSplits.Inc()
	mid := len(n.keys) / 2
	right := &bnode{leaf: n.leaf}
	if n.leaf {
		right.keys = append(right.keys, n.keys[mid:]...)
		right.vals = append(right.vals, n.vals[mid:]...)
		n.keys = n.keys[:mid:mid]
		n.vals = n.vals[:mid:mid]
		right.next = n.next
		n.next = right
		return right.keys[0], right
	}
	sep := n.keys[mid]
	right.keys = append(right.keys, n.keys[mid+1:]...)
	right.kids = append(right.kids, n.kids[mid+1:]...)
	n.keys = n.keys[:mid:mid]
	n.kids = n.kids[: mid+1 : mid+1]
	return sep, right
}

// remove deletes slot from under key. Empty keys are removed from their
// leaf; internal nodes are left untouched.
func (t *btree) remove(key Value, slot int) {
	leaf := t.findLeaf(key)
	i, ok := leaf.keyIndex(key)
	if !ok {
		return
	}
	slots := leaf.vals[i]
	for j, s := range slots {
		if s == slot {
			slots[j] = slots[len(slots)-1]
			slots = slots[:len(slots)-1]
			break
		}
	}
	leaf.vals[i] = slots
	if len(slots) == 0 {
		leaf.keys = append(leaf.keys[:i], leaf.keys[i+1:]...)
		leaf.vals = append(leaf.vals[:i], leaf.vals[i+1:]...)
		t.size--
	}
}

// get returns the slots stored under key.
func (t *btree) get(key Value) []int {
	leaf := t.findLeaf(key)
	if i, ok := leaf.keyIndex(key); ok {
		return leaf.vals[i]
	}
	return nil
}

// Bound describes one end of a range scan. A nil Value pointer means the
// range is open on that end.
type bound struct {
	val       *Value
	inclusive bool
}

// scanRange visits keys in [lo, hi] order, calling fn for each key's slot
// list. fn returning false stops the scan.
func (t *btree) scanRange(lo, hi bound, fn func(key Value, slots []int) bool) {
	var leaf *bnode
	start := 0
	if lo.val != nil {
		leaf = t.findLeaf(*lo.val)
		i, ok := leaf.keyIndex(*lo.val)
		start = i
		if ok && !lo.inclusive {
			start = i + 1
		}
	} else {
		leaf = t.leftmost()
	}
	for leaf != nil {
		for i := start; i < len(leaf.keys); i++ {
			k := leaf.keys[i]
			if hi.val != nil {
				c := Compare(k, *hi.val)
				if c > 0 || (c == 0 && !hi.inclusive) {
					return
				}
			}
			if !fn(k, leaf.vals[i]) {
				return
			}
		}
		leaf = leaf.next
		start = 0
	}
}

func (t *btree) leftmost() *bnode {
	n := t.root
	for !n.leaf {
		n = n.kids[0]
	}
	return n
}

// walk visits every key in order.
func (t *btree) walk(fn func(key Value, slots []int) bool) {
	t.scanRange(bound{}, bound{}, fn)
}
