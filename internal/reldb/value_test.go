package reldb

import (
	"math"
	"testing"
	"testing/quick"
	"time"
)

func TestValueConstructorsAndAccessors(t *testing.T) {
	if got := Int(42).AsInt(); got != 42 {
		t.Errorf("Int(42).AsInt() = %d", got)
	}
	if got := Float(2.5).AsFloat(); got != 2.5 {
		t.Errorf("Float(2.5).AsFloat() = %g", got)
	}
	if got := Str("hi").AsString(); got != "hi" {
		t.Errorf("Str(hi).AsString() = %q", got)
	}
	if !Bool(true).AsBool() || Bool(false).AsBool() {
		t.Error("Bool round trip failed")
	}
	now := time.Now().UTC()
	if got := Time(now).AsTime(); !got.Equal(now) {
		t.Errorf("Time round trip: got %v want %v", got, now)
	}
	if got := Bytes([]byte{1, 2}).Go().([]byte); len(got) != 2 || got[0] != 1 {
		t.Errorf("Bytes round trip: %v", got)
	}
	if !Null.IsNull() || Int(0).IsNull() {
		t.Error("IsNull misclassification")
	}
}

func TestValueCoercions(t *testing.T) {
	if got := Float(3.9).AsInt(); got != 3 {
		t.Errorf("Float(3.9).AsInt() = %d", got)
	}
	if got := Int(3).AsFloat(); got != 3.0 {
		t.Errorf("Int(3).AsFloat() = %g", got)
	}
	if got := Str("17").AsInt(); got != 17 {
		t.Errorf("Str(17).AsInt() = %d", got)
	}
	if got := Str("2.25").AsFloat(); got != 2.25 {
		t.Errorf("Str(2.25).AsFloat() = %g", got)
	}
	if got := Int(12).AsString(); got != "12" {
		t.Errorf("Int(12).AsString() = %q", got)
	}
	if !Str("true").AsBool() || Str("nope").AsBool() {
		t.Error("string AsBool failed")
	}
}

func TestFromGoRoundTrip(t *testing.T) {
	cases := []any{nil, int64(7), 2.5, "s", true, []byte("b")}
	for _, c := range cases {
		v := FromGo(c)
		got := v.Go()
		switch want := c.(type) {
		case nil:
			if got != nil {
				t.Errorf("FromGo(nil).Go() = %v", got)
			}
		case []byte:
			gb, ok := got.([]byte)
			if !ok || string(gb) != string(want) {
				t.Errorf("FromGo(%v).Go() = %v", c, got)
			}
		default:
			if got != c {
				t.Errorf("FromGo(%v).Go() = %v", c, got)
			}
		}
	}
	// Plain ints widen to int64.
	if got := FromGo(5).Go(); got != int64(5) {
		t.Errorf("FromGo(5).Go() = %v (%T)", got, got)
	}
}

func TestCompareOrdering(t *testing.T) {
	cases := []struct {
		a, b Value
		want int
	}{
		{Null, Null, 0},
		{Null, Int(0), -1},
		{Int(0), Null, 1},
		{Int(1), Int(2), -1},
		{Int(2), Int(2), 0},
		{Int(3), Int(2), 1},
		{Int(1), Float(1.5), -1},
		{Float(2.0), Int(2), 0},
		{Str("a"), Str("b"), -1},
		{Str("b"), Str("b"), 0},
		{Bool(false), Bool(true), -1},
	}
	for _, c := range cases {
		if got := Compare(c.a, c.b); got != c.want {
			t.Errorf("Compare(%v, %v) = %d, want %d", c.a, c.b, got, c.want)
		}
	}
}

// Property: Compare is antisymmetric and consistent with Equal.
func TestCompareAntisymmetric(t *testing.T) {
	f := func(a, b int64) bool {
		va, vb := Int(a), Int(b)
		return Compare(va, vb) == -Compare(vb, va) &&
			(Compare(va, vb) == 0) == Equal(va, vb)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: Compare on floats is transitive over random triples.
func TestCompareTransitiveFloats(t *testing.T) {
	f := func(a, b, c float64) bool {
		if math.IsNaN(a) || math.IsNaN(b) || math.IsNaN(c) {
			return true
		}
		va, vb, vc := Float(a), Float(b), Float(c)
		if Compare(va, vb) <= 0 && Compare(vb, vc) <= 0 {
			return Compare(va, vc) <= 0
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestCoerce(t *testing.T) {
	v, err := Coerce(Str("42"), TInt)
	if err != nil || v.I != 42 {
		t.Errorf("Coerce(42, TInt) = %v, %v", v, err)
	}
	v, err = Coerce(Int(3), TFloat)
	if err != nil || v.F != 3.0 {
		t.Errorf("Coerce(3, TFloat) = %v, %v", v, err)
	}
	if _, err = Coerce(Str("x"), TInt); err == nil {
		t.Error("Coerce(x, TInt) should fail")
	}
	v, err = Coerce(Null, TInt)
	if err != nil || !v.IsNull() {
		t.Errorf("Coerce(NULL, TInt) = %v, %v", v, err)
	}
	v, err = Coerce(Float(1.5), TString)
	if err != nil || v.S != "1.5" {
		t.Errorf("Coerce(1.5, VARCHAR) = %v, %v", v, err)
	}
	if _, err = Coerce(Str("maybe"), TBool); err == nil {
		t.Error("Coerce(maybe, TBool) should fail")
	}
	tm := time.Date(2005, 6, 15, 0, 0, 0, 0, time.UTC)
	v, err = Coerce(Str(tm.Format(time.RFC3339Nano)), TTime)
	if err != nil || !v.AsTime().Equal(tm) {
		t.Errorf("Coerce(time string, TTime) = %v, %v", v, err)
	}
}

func TestTypeString(t *testing.T) {
	names := map[Type]string{
		TNull: "NULL", TInt: "BIGINT", TFloat: "DOUBLE", TString: "VARCHAR",
		TBool: "BOOLEAN", TTime: "TIMESTAMP", TBytes: "BLOB",
	}
	for ty, want := range names {
		if got := ty.String(); got != want {
			t.Errorf("%d.String() = %q, want %q", ty, got, want)
		}
	}
}
