package reldb

import (
	"os"
	"path/filepath"
	"testing"
	"time"
)

func openTemp(t *testing.T, opts Options) (*DB, string) {
	t.Helper()
	dir := t.TempDir()
	db, err := Open(dir, opts)
	if err != nil {
		t.Fatal(err)
	}
	return db, dir
}

func reopen(t *testing.T, db *DB, dir string, opts Options) *DB {
	t.Helper()
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
	db2, err := Open(dir, opts)
	if err != nil {
		t.Fatal(err)
	}
	return db2
}

func countRows(t *testing.T, db *DB, table string) int {
	t.Helper()
	n := 0
	err := db.Read(func(tx *Tx) error {
		return tx.Scan(table, func(int, Row) bool { n++; return true })
	})
	if err != nil {
		t.Fatal(err)
	}
	return n
}

func TestWALReplay(t *testing.T) {
	db, dir := openTemp(t, Options{})
	mustWrite(t, db, func(tx *Tx) error {
		if err := tx.CreateTable(appSchema()); err != nil {
			return err
		}
		for i := 0; i < 25; i++ {
			if _, err := tx.Insert("application", Row{Null, Str("app"), Str("v1")}); err != nil {
				return err
			}
		}
		return nil
	})
	mustWrite(t, db, func(tx *Tx) error { return tx.Delete("application", 3) })
	mustWrite(t, db, func(tx *Tx) error {
		return tx.Update("application", 4, Row{Int(5), Str("renamed"), Null})
	})

	db2 := reopen(t, db, dir, Options{})
	defer db2.Close()
	if n := countRows(t, db2, "application"); n != 24 {
		t.Fatalf("replayed %d rows, want 24", n)
	}
	db2.Read(func(tx *Tx) error {
		if tx.Row("application", 3) != nil {
			t.Error("deleted row came back")
		}
		if row := tx.Row("application", 4); row[1].S != "renamed" {
			t.Errorf("updated row = %v", row)
		}
		return nil
	})
	// Auto-increment continues after replay.
	mustWrite(t, db2, func(tx *Tx) error {
		id, err := tx.Insert("application", Row{Null, Str("next"), Null})
		if err != nil {
			return err
		}
		if id.AsInt() != 26 {
			t.Errorf("auto id after replay = %v", id.Go())
		}
		return nil
	})
}

func TestCheckpointAndReplay(t *testing.T) {
	db, dir := openTemp(t, Options{})
	mustWrite(t, db, func(tx *Tx) error {
		if err := tx.CreateTable(appSchema()); err != nil {
			return err
		}
		if err := tx.CreateIndex("ix_name", "application", []string{"name"}, OrderedIndex, false); err != nil {
			return err
		}
		for i := 0; i < 10; i++ {
			if _, err := tx.Insert("application", Row{Null, Str("a"), Null}); err != nil {
				return err
			}
		}
		return nil
	})
	if err := db.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	// WAL should be empty after checkpoint.
	if fi, err := os.Stat(filepath.Join(dir, walFile)); err != nil || fi.Size() != 0 {
		t.Fatalf("wal after checkpoint: %v, size=%d", err, fi.Size())
	}
	// More writes go to the fresh WAL.
	mustWrite(t, db, func(tx *Tx) error {
		_, err := tx.Insert("application", Row{Null, Str("post-chk"), Null})
		return err
	})

	db2 := reopen(t, db, dir, Options{})
	defer db2.Close()
	if n := countRows(t, db2, "application"); n != 11 {
		t.Fatalf("rows after checkpoint+wal = %d, want 11", n)
	}
	db2.Read(func(tx *Tx) error {
		// Secondary index survived via snapshot metadata.
		slots, ok := tx.LookupEq("application", "name", Str("post-chk"))
		if !ok || len(slots) != 1 {
			t.Errorf("index lookup after reopen: ok=%v slots=%v", ok, slots)
		}
		return nil
	})
}

func TestDDLThroughWAL(t *testing.T) {
	db, dir := openTemp(t, Options{})
	mustWrite(t, db, func(tx *Tx) error { return tx.CreateTable(appSchema()) })
	mustWrite(t, db, func(tx *Tx) error {
		return tx.AddColumn("application", Column{Name: "os", Type: TString, Default: Str("linux")})
	})
	mustWrite(t, db, func(tx *Tx) error {
		_, err := tx.Insert("application", Row{Null, Str("x"), Null, Null})
		return err
	})
	mustWrite(t, db, func(tx *Tx) error { return tx.DropColumn("application", "version") })
	mustWrite(t, db, func(tx *Tx) error { return tx.CreateTable(expSchema()) })
	mustWrite(t, db, func(tx *Tx) error { return tx.DropTable("experiment") })

	db2 := reopen(t, db, dir, Options{})
	defer db2.Close()
	db2.Read(func(tx *Tx) error {
		if tx.HasTable("experiment") {
			t.Error("dropped table came back")
		}
		tbl, err := tx.Table("application")
		if err != nil {
			t.Fatal(err)
		}
		s := tbl.Schema()
		if s.ColumnIndex("os") < 0 || s.ColumnIndex("version") >= 0 {
			t.Errorf("schema after replay: %v", s.ColumnNames())
		}
		row := tx.Row("application", 0)
		if row[s.ColumnIndex("os")].S != "linux" {
			t.Errorf("default not applied after replay: %v", row)
		}
		return nil
	})
}

func TestTornWALTail(t *testing.T) {
	db, dir := openTemp(t, Options{})
	mustWrite(t, db, func(tx *Tx) error {
		if err := tx.CreateTable(appSchema()); err != nil {
			return err
		}
		for i := 0; i < 5; i++ {
			if _, err := tx.Insert("application", Row{Null, Str("a"), Null}); err != nil {
				return err
			}
		}
		return nil
	})
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
	// Simulate a crash mid-append: chop bytes off the WAL tail.
	walPath := filepath.Join(dir, walFile)
	data, err := os.ReadFile(walPath)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(walPath, data[:len(data)-7], 0o644); err != nil {
		t.Fatal(err)
	}
	db2, err := Open(dir, Options{})
	if err != nil {
		t.Fatalf("open with torn wal: %v", err)
	}
	defer db2.Close()
	// The torn batch (the whole 6-op commit) is dropped; the database must
	// still open and accept writes.
	mustWrite(t, db2, func(tx *Tx) error {
		if !tx.HasTable("application") {
			// The entire batch was one commit, so it may be gone entirely.
			return tx.CreateTable(appSchema())
		}
		return nil
	})
}

func TestSnapshotPreservesValueTypes(t *testing.T) {
	db, dir := openTemp(t, Options{})
	when := time.Date(2005, 6, 15, 12, 0, 0, 0, time.UTC)
	mustWrite(t, db, func(tx *Tx) error {
		if err := tx.CreateTable(&Schema{
			Name: "alltypes",
			Columns: []Column{
				{Name: "id", Type: TInt, AutoIncrement: true},
				{Name: "f", Type: TFloat},
				{Name: "s", Type: TString},
				{Name: "b", Type: TBool},
				{Name: "t", Type: TTime},
				{Name: "blob", Type: TBytes},
				{Name: "n", Type: TInt},
			},
			PrimaryKey: "id",
		}); err != nil {
			return err
		}
		_, err := tx.Insert("alltypes", Row{
			Null, Float(3.14159), Str("héllo"), Bool(true), Time(when), Bytes([]byte{0, 1, 255}), Null,
		})
		return err
	})
	if err := db.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	db2 := reopen(t, db, dir, Options{})
	defer db2.Close()
	db2.Read(func(tx *Tx) error {
		row := tx.Row("alltypes", 0)
		if row[1].F != 3.14159 {
			t.Errorf("float = %v", row[1].F)
		}
		if row[2].S != "héllo" {
			t.Errorf("string = %q", row[2].S)
		}
		if !row[3].AsBool() {
			t.Error("bool lost")
		}
		if !row[4].AsTime().Equal(when) {
			t.Errorf("time = %v", row[4].AsTime())
		}
		if b := row[5].Go().([]byte); len(b) != 3 || b[2] != 255 {
			t.Errorf("bytes = %v", b)
		}
		if !row[6].IsNull() {
			t.Error("null lost")
		}
		return nil
	})
}

func TestAutoCheckpoint(t *testing.T) {
	db, dir := openTemp(t, Options{CheckpointEvery: 10})
	mustWrite(t, db, func(tx *Tx) error { return tx.CreateTable(appSchema()) })
	for i := 0; i < 20; i++ {
		mustWrite(t, db, func(tx *Tx) error {
			_, err := tx.Insert("application", Row{Null, Str("a"), Null})
			return err
		})
	}
	// A checkpoint must have happened: snapshot exists and WAL is short.
	if _, err := os.Stat(filepath.Join(dir, snapFile)); err != nil {
		t.Fatalf("no snapshot after auto checkpoint: %v", err)
	}
	db2 := reopen(t, db, dir, Options{})
	defer db2.Close()
	if n := countRows(t, db2, "application"); n != 20 {
		t.Fatalf("rows = %d, want 20", n)
	}
}

func TestRolledBackTxnNotLogged(t *testing.T) {
	db, dir := openTemp(t, Options{})
	mustWrite(t, db, func(tx *Tx) error { return tx.CreateTable(appSchema()) })
	tx := db.Begin()
	if _, err := tx.Insert("application", Row{Null, Str("ghost"), Null}); err != nil {
		t.Fatal(err)
	}
	tx.Rollback()
	db2 := reopen(t, db, dir, Options{})
	defer db2.Close()
	if n := countRows(t, db2, "application"); n != 0 {
		t.Fatalf("rolled-back insert persisted: %d rows", n)
	}
}
