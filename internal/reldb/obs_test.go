package reldb

import (
	"testing"

	"perfdmf/internal/obs"
)

// TestEngineMetrics exercises a durable-database session and checks the
// engine counters move. Metrics are process-global, so the test asserts
// deltas rather than absolute values.
func TestEngineMetrics(t *testing.T) {
	before := obs.Default.Snapshot()

	dir := t.TempDir()
	db, err := Open(dir, Options{Sync: true})
	if err != nil {
		t.Fatal(err)
	}
	tx := db.Begin()
	if err := tx.CreateTable(&Schema{
		Name: "m", PrimaryKey: "id",
		Columns: []Column{{Name: "id", Type: TInt}, {Name: "v", Type: TInt}},
	}); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		if _, err := tx.Insert("m", Row{Int(int64(i)), Int(int64(i * i))}); err != nil {
			t.Fatal(err)
		}
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	if err := db.Read(func(tx *Tx) error { return nil }); err != nil {
		t.Fatal(err)
	}
	if err := db.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}

	after := obs.Default.Snapshot()
	delta := func(name string) int64 { return after.Counters[name] - before.Counters[name] }
	for name, min := range map[string]int64{
		"reldb_tx_begin_total":      1,
		"reldb_tx_commit_total":     1,
		"reldb_tx_read_total":       1,
		"reldb_rows_inserted_total": 10,
		"reldb_wal_appends_total":   1,
		"reldb_wal_records_total":   11, // create table + 10 inserts
		"reldb_checkpoint_total":    1,
	} {
		if got := delta(name); got < min {
			t.Errorf("%s delta = %d, want >= %d", name, got, min)
		}
	}
	if delta("reldb_wal_bytes_total") <= 0 {
		t.Error("wal bytes did not grow")
	}
	if after.Gauges["reldb_snapshot_bytes"] <= 0 {
		t.Error("snapshot size gauge not set")
	}
	fsync := after.Histograms["reldb_wal_fsync_ns"].Count - before.Histograms["reldb_wal_fsync_ns"].Count
	if fsync < 1 {
		t.Errorf("fsync histogram count delta = %d, want >= 1", fsync)
	}

	// Reopen: replay metrics. The checkpoint truncated the WAL, so write one
	// more batch first.
	db2, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	tx = db2.Begin()
	if _, err := tx.Insert("m", Row{Int(100), Int(0)}); err != nil {
		t.Fatal(err)
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	if err := db2.Close(); err != nil {
		t.Fatal(err)
	}
	db3, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer db3.Close()
	final := obs.Default.Snapshot()
	if got := final.Counters["reldb_wal_replay_ops_total"] - after.Counters["reldb_wal_replay_ops_total"]; got < 1 {
		t.Errorf("wal replay ops delta = %d, want >= 1", got)
	}
	if got := final.Histograms["reldb_snapshot_load_ns"].Count - before.Histograms["reldb_snapshot_load_ns"].Count; got < 2 {
		t.Errorf("snapshot load count delta = %d, want >= 2", got)
	}
}

// TestRollbackMetric checks the rollback counter specifically.
func TestRollbackMetric(t *testing.T) {
	before := obs.Default.Counter("reldb_tx_rollback_total").Value()
	db := NewMemory()
	tx := db.Begin()
	tx.Rollback()
	if got := obs.Default.Counter("reldb_tx_rollback_total").Value() - before; got != 1 {
		t.Fatalf("rollback delta = %d, want 1", got)
	}
}
