package reldb

import (
	"sync"
	"testing"
)

// TestCloseDetachesWALBeforeFsync is the regression test for the Close
// lock-scope tightening: Close must detach the WAL under the mutex and
// run the final fsync outside it, so concurrent readers never stall
// behind close-time disk I/O, a second Close is a no-op, and the data is
// durable across reopen. Run under -race (make check does) this also
// proves the detach is properly fenced.
func TestCloseDetachesWALBeforeFsync(t *testing.T) {
	db, dir := openTemp(t, Options{})
	mustWrite(t, db, func(tx *Tx) error {
		if err := tx.CreateTable(appSchema()); err != nil {
			return err
		}
		for i := 0; i < 10; i++ {
			if _, err := tx.Insert("application", Row{Null, Str("app"), Str("v1")}); err != nil {
				return err
			}
		}
		return nil
	})

	// Readers hammer the lock while Close runs; with the fsync inside the
	// critical section this serialized behind disk I/O, now it cannot.
	var wg sync.WaitGroup
	start := make(chan struct{})
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			<-start
			for j := 0; j < 50; j++ {
				db.Read(func(tx *Tx) error {
					tx.Scan("application", func(int, Row) bool { return true })
					return nil
				})
			}
		}()
	}
	close(start)
	if err := db.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
	wg.Wait()

	if db.wal != nil {
		t.Fatal("close left the WAL attached")
	}
	if err := db.Close(); err != nil {
		t.Fatalf("second close must be a no-op, got %v", err)
	}

	db2, err := Open(dir, Options{})
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer db2.Close()
	if n := countRows(t, db2, "application"); n != 10 {
		t.Fatalf("reopened with %d rows, want 10", n)
	}
}
