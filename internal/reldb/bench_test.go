package reldb

import (
	"fmt"
	"testing"
)

func benchTable(b *testing.B, rows int) *DB {
	b.Helper()
	db := NewMemory()
	err := db.Write(func(tx *Tx) error {
		if err := tx.CreateTable(&Schema{
			Name: "t",
			Columns: []Column{
				{Name: "id", Type: TInt, AutoIncrement: true},
				{Name: "k", Type: TInt},
				{Name: "v", Type: TFloat},
				{Name: "s", Type: TString},
			},
			PrimaryKey: "id",
		}); err != nil {
			return err
		}
		if err := tx.CreateIndex("ix_k", "t", []string{"k"}, HashIndex, false); err != nil {
			return err
		}
		if err := tx.CreateIndex("ix_k_range", "t", []string{"k"}, OrderedIndex, false); err != nil {
			return err
		}
		for i := 0; i < rows; i++ {
			if _, err := tx.Insert("t", Row{Null, Int(int64(i % 100)), Float(float64(i)), Str("row")}); err != nil {
				return err
			}
		}
		return nil
	})
	if err != nil {
		b.Fatal(err)
	}
	return db
}

func BenchmarkInsert(b *testing.B) {
	db := benchTable(b, 0)
	b.ResetTimer()
	err := db.Write(func(tx *Tx) error {
		for i := 0; i < b.N; i++ {
			if _, err := tx.Insert("t", Row{Null, Int(int64(i % 100)), Float(1.5), Str("x")}); err != nil {
				return err
			}
		}
		return nil
	})
	if err != nil {
		b.Fatal(err)
	}
}

func BenchmarkPKLookup(b *testing.B) {
	db := benchTable(b, 10000)
	b.ResetTimer()
	db.Read(func(tx *Tx) error {
		for i := 0; i < b.N; i++ {
			slots, ok := tx.LookupEq("t", "id", Int(int64(i%10000)+1))
			if !ok || len(slots) != 1 {
				b.Fatal("lookup failed")
			}
		}
		return nil
	})
}

func BenchmarkHashIndexLookup(b *testing.B) {
	db := benchTable(b, 10000)
	b.ResetTimer()
	db.Read(func(tx *Tx) error {
		for i := 0; i < b.N; i++ {
			slots, ok := tx.LookupEq("t", "k", Int(int64(i%100)))
			if !ok || len(slots) != 100 {
				b.Fatal("lookup failed")
			}
		}
		return nil
	})
}

func BenchmarkOrderedRangeScan(b *testing.B) {
	db := benchTable(b, 10000)
	b.ResetTimer()
	db.Read(func(tx *Tx) error {
		for i := 0; i < b.N; i++ {
			n := 0
			ok := tx.ScanRange("t", "k", Int(10), Int(20), true, true, func(int) bool {
				n++
				return true
			})
			if !ok || n == 0 {
				b.Fatal("range scan failed")
			}
		}
		return nil
	})
}

func BenchmarkFullScan(b *testing.B) {
	db := benchTable(b, 10000)
	b.ResetTimer()
	db.Read(func(tx *Tx) error {
		for i := 0; i < b.N; i++ {
			n := 0
			tx.Scan("t", func(int, Row) bool { n++; return true })
			if n != 10000 {
				b.Fatal("scan lost rows")
			}
		}
		return nil
	})
}

func BenchmarkSnapshotRoundTrip(b *testing.B) {
	dir := b.TempDir()
	db, err := Open(dir, Options{})
	if err != nil {
		b.Fatal(err)
	}
	err = db.Write(func(tx *Tx) error {
		if err := tx.CreateTable(&Schema{
			Name: "t",
			Columns: []Column{
				{Name: "id", Type: TInt, AutoIncrement: true},
				{Name: "v", Type: TFloat},
			},
			PrimaryKey: "id",
		}); err != nil {
			return err
		}
		for i := 0; i < 5000; i++ {
			if _, err := tx.Insert("t", Row{Null, Float(float64(i))}); err != nil {
				return err
			}
		}
		return nil
	})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := db.Checkpoint(); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	db.Close()
}

func BenchmarkBtreeInsert(b *testing.B) {
	for _, n := range []int{1000, 100000} {
		b.Run(fmt.Sprintf("existing-%d", n), func(b *testing.B) {
			bt := newBtree()
			for i := 0; i < n; i++ {
				bt.insert(Int(int64(i)), i)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				bt.insert(Int(int64(n+i)), n+i)
			}
		})
	}
}

// BenchmarkWALInsert is BenchmarkInsert against a file-backed database, so
// every commit encodes its redo records into the write-ahead log. It exists
// to measure the WAL encode path's allocation behavior (the encode buffer
// is pooled across commits).
func BenchmarkWALInsert(b *testing.B) {
	db, err := Open(b.TempDir(), Options{})
	if err != nil {
		b.Fatal(err)
	}
	defer db.Close()
	if err := db.Write(func(tx *Tx) error {
		return tx.CreateTable(&Schema{
			Name: "t",
			Columns: []Column{
				{Name: "id", Type: TInt, AutoIncrement: true},
				{Name: "k", Type: TInt},
				{Name: "v", Type: TFloat},
				{Name: "s", Type: TString},
			},
			PrimaryKey: "id",
		})
	}); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		// One row per commit: each iteration pays a full WAL append.
		err := db.Write(func(tx *Tx) error {
			_, err := tx.Insert("t", Row{Null, Int(int64(i % 100)), Float(1.5), Str("some row payload")})
			return err
		})
		if err != nil {
			b.Fatal(err)
		}
	}
}
