package reldb

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func collectKeys(t *btree) []int64 {
	var keys []int64
	t.walk(func(k Value, slots []int) bool {
		if len(slots) > 0 {
			keys = append(keys, k.I)
		}
		return true
	})
	return keys
}

func TestBtreeInsertOrdered(t *testing.T) {
	bt := newBtree()
	const n = 1000
	perm := rand.New(rand.NewSource(1)).Perm(n)
	for _, k := range perm {
		bt.insert(Int(int64(k)), k)
	}
	keys := collectKeys(bt)
	if len(keys) != n {
		t.Fatalf("got %d keys, want %d", len(keys), n)
	}
	for i, k := range keys {
		if k != int64(i) {
			t.Fatalf("keys[%d] = %d, out of order", i, k)
		}
	}
}

func TestBtreeDuplicates(t *testing.T) {
	bt := newBtree()
	for slot := 0; slot < 10; slot++ {
		bt.insert(Int(5), slot)
	}
	if got := bt.get(Int(5)); len(got) != 10 {
		t.Fatalf("get(5) returned %d slots, want 10", len(got))
	}
	bt.remove(Int(5), 3)
	got := bt.get(Int(5))
	if len(got) != 9 {
		t.Fatalf("after remove, %d slots", len(got))
	}
	for _, s := range got {
		if s == 3 {
			t.Fatal("slot 3 still present after remove")
		}
	}
}

func TestBtreeRemoveAll(t *testing.T) {
	bt := newBtree()
	const n = 500
	for k := 0; k < n; k++ {
		bt.insert(Int(int64(k)), k)
	}
	for k := 0; k < n; k += 2 {
		bt.remove(Int(int64(k)), k)
	}
	keys := collectKeys(bt)
	if len(keys) != n/2 {
		t.Fatalf("got %d keys, want %d", len(keys), n/2)
	}
	for _, k := range keys {
		if k%2 == 0 {
			t.Fatalf("even key %d not removed", k)
		}
	}
	if bt.size != n/2 {
		t.Fatalf("size = %d, want %d", bt.size, n/2)
	}
}

func TestBtreeRangeScan(t *testing.T) {
	bt := newBtree()
	for k := 0; k < 100; k++ {
		bt.insert(Int(int64(k)), k)
	}
	scan := func(lo, hi int64, loInc, hiInc bool) []int64 {
		var got []int64
		lov, hiv := Int(lo), Int(hi)
		bt.scanRange(bound{val: &lov, inclusive: loInc}, bound{val: &hiv, inclusive: hiInc},
			func(k Value, _ []int) bool {
				got = append(got, k.I)
				return true
			})
		return got
	}
	got := scan(10, 15, true, true)
	want := []int64{10, 11, 12, 13, 14, 15}
	if len(got) != len(want) {
		t.Fatalf("[10,15] returned %v", got)
	}
	got = scan(10, 15, false, false)
	if len(got) != 4 || got[0] != 11 || got[3] != 14 {
		t.Fatalf("(10,15) returned %v", got)
	}
	// Open bounds.
	var all []int64
	bt.scanRange(bound{}, bound{}, func(k Value, _ []int) bool {
		all = append(all, k.I)
		return true
	})
	if len(all) != 100 {
		t.Fatalf("open scan returned %d keys", len(all))
	}
	// Early stop.
	count := 0
	bt.scanRange(bound{}, bound{}, func(Value, []int) bool {
		count++
		return count < 7
	})
	if count != 7 {
		t.Fatalf("early stop visited %d", count)
	}
	// Bounds between keys and outside the key range.
	lov := Float(10.5)
	hiv := Float(12.5)
	var mids []int64
	bt.scanRange(bound{val: &lov, inclusive: true}, bound{val: &hiv, inclusive: true},
		func(k Value, _ []int) bool {
			mids = append(mids, k.I)
			return true
		})
	if len(mids) != 2 || mids[0] != 11 || mids[1] != 12 {
		t.Fatalf("[10.5,12.5] returned %v", mids)
	}
}

// Property: after an arbitrary interleaving of inserts and removes, the tree
// holds exactly the surviving keys, in sorted order.
func TestBtreeMatchesMapModel(t *testing.T) {
	f := func(ops []int16) bool {
		bt := newBtree()
		model := make(map[int64]map[int]bool)
		for i, op := range ops {
			k := int64(op % 64)
			if op >= 0 {
				bt.insert(Int(k), i)
				if model[k] == nil {
					model[k] = make(map[int]bool)
				}
				model[k][i] = true
			} else {
				// Remove an arbitrary slot for this key if one exists.
				for slot := range model[k] {
					bt.remove(Int(k), slot)
					delete(model[k], slot)
					break
				}
				if len(model[k]) == 0 {
					delete(model, k)
				}
			}
		}
		var wantKeys []int64
		for k, slots := range model {
			if len(slots) > 0 {
				wantKeys = append(wantKeys, k)
			}
		}
		sort.Slice(wantKeys, func(i, j int) bool { return wantKeys[i] < wantKeys[j] })
		gotKeys := collectKeys(bt)
		if len(gotKeys) != len(wantKeys) {
			return false
		}
		for i := range gotKeys {
			if gotKeys[i] != wantKeys[i] {
				return false
			}
			if len(bt.get(Int(gotKeys[i]))) != len(model[gotKeys[i]]) {
				return false
			}
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 200}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

func TestBtreeStringKeys(t *testing.T) {
	bt := newBtree()
	words := []string{"mpi", "gprof", "tau", "hpm", "psrun", "dynaprof"}
	for i, w := range words {
		bt.insert(Str(w), i)
	}
	var got []string
	bt.walk(func(k Value, _ []int) bool {
		got = append(got, k.S)
		return true
	})
	if !sort.StringsAreSorted(got) {
		t.Fatalf("string keys out of order: %v", got)
	}
	if len(bt.get(Str("tau"))) != 1 {
		t.Fatal("lookup of string key failed")
	}
}
