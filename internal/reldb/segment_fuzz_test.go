package reldb

import (
	"math"
	"testing"
)

// FuzzSegmentRoundTrip drives the columnar segment encoders (raw int64,
// frame-of-reference packing, run-length encoding, raw float, dictionary
// and raw strings) with fuzz-derived row data and asserts the bitwise
// round-trip contract the vectorized executor depends on: every cell a
// sealed segment materializes — via ValueAt, the Decode* bulk paths, or the
// Gather* selection paths — must be identical to what the row store holds.
//
// mode steers the encoder choice: its low bits pick the integer shape
// (long runs → RLE, narrow range → FOR, wide range → raw), bit 6 punches
// slot gaps with deletes, bit 7 forces raw strings through an oversized
// NDV hint. The committed corpus under testdata/fuzz covers each encoding.
func FuzzSegmentRoundTrip(f *testing.F) {
	f.Add([]byte{1, 2, 3, 4, 5, 6, 7, 8}, uint8(0))                // RLE ints, dict strings
	f.Add([]byte("perfdmf columnar segments"), uint8(1))           // FOR-packed ints
	f.Add([]byte{0xff, 0x00, 0x80, 0x7f, 0x55, 0xaa}, uint8(2))    // wide ints -> raw
	f.Add([]byte("null heavy \x00\x00\x00 input"), uint8(3))       // mixed widths
	f.Add([]byte{9, 9, 9, 9, 1, 2, 3, 4, 5, 6, 7, 8}, uint8(64))   // slot gaps
	f.Add([]byte("high ndv strings abcdefghijklmnop"), uint8(128)) // raw strings via hint
	f.Fuzz(func(t *testing.T, data []byte, mode uint8) {
		if len(data) == 0 {
			data = []byte{0}
		}
		byteAt := func(j int) byte { return data[j%len(data)] }
		nrows := len(data) * 3
		if nrows < rleMinRows {
			nrows = rleMinRows
		}
		if nrows > 1024 {
			nrows = 1024
		}

		// Derive one row per index. Each column goes NULL on a different
		// byte pattern so the validity bitmaps diverge across columns.
		intVal := func(i int) int64 {
			b := int64(byteAt(i))
			switch mode % 4 {
			case 0:
				return int64(i / 16) // long runs -> RLE
			case 1:
				return b // narrow range -> frame-of-reference
			case 2:
				return (b - 128) << 40 // wide range -> raw int64
			default:
				return b * int64(i%3) // mixed
			}
		}
		makeRow := func(i int) Row {
			row := Row{Null, Null, Null, Null, Null}
			if byteAt(i)%7 != 0 {
				row[0] = Int(intVal(i))
			}
			if byteAt(i+1)%5 != 0 {
				fv := float64(byteAt(i + 1))
				if byteAt(i+1) == 13 {
					fv = math.NaN()
				}
				row[1] = Float(fv)
			}
			if byteAt(i+2)%6 != 0 {
				lo := i % len(data)
				hi := lo + int(byteAt(i+2)%8)
				if hi > len(data) {
					hi = len(data)
				}
				row[2] = Str(string(data[lo:hi]))
			}
			if byteAt(i+3)%4 != 0 {
				row[3] = Bool(byteAt(i+3)&1 == 1)
			}
			if byteAt(i+4)%9 != 0 {
				row[4] = Value{T: TTime, I: int64(byteAt(i+4)) * 1_000_000}
			}
			return row
		}

		db := NewMemory()
		if err := db.Write(func(tx *Tx) error {
			if err := tx.CreateTable(&Schema{Name: "seg", Columns: []Column{
				{Name: "i", Type: TInt},
				{Name: "f", Type: TFloat},
				{Name: "s", Type: TString},
				{Name: "b", Type: TBool},
				{Name: "ts", Type: TTime},
			}}); err != nil {
				return err
			}
			for i := 0; i < nrows; i++ {
				if _, err := tx.Insert("seg", makeRow(i)); err != nil {
					return err
				}
			}
			if mode&64 != 0 {
				// Punch gaps so the slot mapping is non-trivial.
				var slots []int
				tx.Scan("seg", func(slot int, _ Row) bool { //nolint:errcheck // table created above
					slots = append(slots, slot)
					return true
				})
				for j := 0; j < len(slots); j += 5 {
					if err := tx.Delete("seg", slots[j]); err != nil {
						return err
					}
				}
			}
			return nil
		}); err != nil {
			t.Fatal(err)
		}

		var hints map[string]int
		if mode&128 != 0 {
			hints = map[string]int{"s": dictMaxCodes + 1} // force raw strings
		}
		if err := db.Read(func(tx *Tx) error {
			tbl, err := tx.Table("seg")
			if err != nil {
				return err
			}
			set := tbl.BuildSegments(hints)
			if set == nil {
				t.Fatal("BuildSegments returned nil for a buildable table")
			}
			if set.Rows() != tbl.live {
				t.Fatalf("segment set has %d rows, table has %d live", set.Rows(), tbl.live)
			}
			for ci := 0; ci < 5; ci++ {
				seg := set.Col(ci)
				if seg == nil {
					t.Fatalf("column %d not vectorized", ci)
				}
				if seg.Len() != set.Rows() {
					t.Fatalf("column %d: len %d != rows %d", ci, seg.Len(), set.Rows())
				}
				for i := 0; i < set.Rows(); i++ {
					want := tbl.rows[set.Slot(i)][ci]
					got := seg.ValueAt(i)
					if !sameValueBits(want, got) {
						t.Fatalf("col %d (%s) row %d: stored %+v, segment %+v",
							ci, seg.Encoding(), i, want, got)
					}
				}
			}

			// Bulk and gather paths must agree with the per-cell path.
			n := set.Rows()
			sel := make([]int32, 0, n)
			for i := 0; i < n; i += 3 {
				sel = append(sel, int32(i))
			}
			ints := set.Col(0)
			dst := make([]int64, n)
			ints.DecodeInts(0, n, dst)
			for i := 0; i < n; i++ {
				if dst[i] != ints.IntAt(i) {
					t.Fatalf("DecodeInts[%d] = %d, IntAt = %d (%s)", i, dst[i], ints.IntAt(i), ints.Encoding())
				}
			}
			g := make([]int64, len(sel))
			ints.GatherInts(sel, g)
			for j, r := range sel {
				if g[j] != ints.IntAt(int(r)) {
					t.Fatalf("GatherInts[%d] (row %d) = %d, IntAt = %d (%s)", j, r, g[j], ints.IntAt(int(r)), ints.Encoding())
				}
			}
			strs := set.Col(2)
			gs := make([]string, len(sel))
			strs.GatherStrs(sel, gs)
			for j, r := range sel {
				if gs[j] != strs.StrAt(int(r)) {
					t.Fatalf("GatherStrs[%d] (row %d) = %q, StrAt = %q (%s)", j, r, gs[j], strs.StrAt(int(r)), strs.Encoding())
				}
			}
			if strs.IsDict() {
				dict := strs.Dict()
				for i := 0; i < n; i++ {
					c := strs.CodeAt(i)
					if strs.Valid(i) != (c >= 0) {
						t.Fatalf("dict row %d: valid=%v but code=%d", i, strs.Valid(i), c)
					}
					if c >= int32(len(dict)) {
						t.Fatalf("dict row %d: code %d out of range (%d entries)", i, c, len(dict))
					}
				}
			}
			return nil
		}); err != nil {
			t.Fatal(err)
		}
	})
}

// sameValueBits compares stored and materialized cells bit-for-bit: same
// type tag, same payload, with NaN floats compared by bit pattern.
func sameValueBits(a, b Value) bool {
	if a.T != b.T {
		return false
	}
	switch a.T {
	case TNull:
		return true
	case TFloat:
		return math.Float64bits(a.F) == math.Float64bits(b.F)
	case TString, TBytes:
		return a.S == b.S
	default:
		return a.I == b.I
	}
}
