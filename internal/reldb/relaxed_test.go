package reldb

import (
	"testing"
)

// TestCommitRelaxedDurability covers the relaxed-durability commit the
// telemetry writer rides: on a Sync database, CommitRelaxed appends to the
// WAL but defers the fsync, the deferred batch is flushed by the next
// synchronous commit (or the relaxedFsyncEvery-th relaxed one), and every
// relaxed commit — fsynced or not — survives a clean close and reopen.
func TestCommitRelaxedDurability(t *testing.T) {
	db, dir := openTemp(t, Options{Sync: true})
	mustWrite(t, db, func(tx *Tx) error { return tx.CreateTable(appSchema()) })

	relaxedBefore := mWALRelaxedAppends.Value()
	batchesBefore := mWALRelaxedFsyncBatches.Value()

	relaxedInsert := func(n int) {
		t.Helper()
		for i := 0; i < n; i++ {
			tx := db.Begin()
			if _, err := tx.Insert("application", Row{Null, Str("tel"), Str("v")}); err != nil {
				t.Fatal(err)
			}
			if err := tx.CommitRelaxed(); err != nil {
				t.Fatal(err)
			}
		}
	}

	// A handful of relaxed commits: appended and counted, fsync deferred.
	relaxedInsert(5)
	if d := mWALRelaxedAppends.Value() - relaxedBefore; d != 5 {
		t.Fatalf("relaxed appends counted %d, want 5", d)
	}
	if d := mWALRelaxedFsyncBatches.Value() - batchesBefore; d != 0 {
		t.Fatalf("batched fsyncs after 5 relaxed commits = %d, want 0 (below relaxedFsyncEvery)", d)
	}

	// The next synchronous commit drains the deferred batch with its own
	// fsync — relaxed data is never left behind a durable commit.
	mustWrite(t, db, func(tx *Tx) error {
		_, err := tx.Insert("application", Row{Null, Str("sync"), Str("v")})
		return err
	})
	if d := mWALRelaxedFsyncBatches.Value() - batchesBefore; d != 1 {
		t.Fatalf("batched fsyncs after a sync commit = %d, want 1", d)
	}

	// Enough relaxed commits trigger the batch fsync on their own.
	relaxedInsert(relaxedFsyncEvery)
	if d := mWALRelaxedFsyncBatches.Value() - batchesBefore; d != 2 {
		t.Fatalf("batched fsyncs after %d more relaxed commits = %d, want 2", relaxedFsyncEvery, d)
	}

	// Leave a short un-fsynced tail, then close and reopen: the WAL replay
	// returns every committed row — relaxed durability only softens the
	// crash window, not a clean shutdown.
	relaxedInsert(3)
	db = reopen(t, db, dir, Options{Sync: true})
	defer db.Close() //nolint:errcheck // read-only from here
	if n := countRows(t, db, "application"); n != 5+1+relaxedFsyncEvery+3 {
		t.Fatalf("rows after reopen = %d, want %d", n, 5+1+relaxedFsyncEvery+3)
	}
}

// TestCommitRelaxedNoSync: without Options.Sync there is no fsync to
// batch — CommitRelaxed must behave exactly like Commit and count nothing
// as a deferred batch.
func TestCommitRelaxedNoSync(t *testing.T) {
	db, dir := openTemp(t, Options{})
	mustWrite(t, db, func(tx *Tx) error { return tx.CreateTable(appSchema()) })
	batchesBefore := mWALRelaxedFsyncBatches.Value()
	for i := 0; i < 3; i++ {
		tx := db.Begin()
		if _, err := tx.Insert("application", Row{Null, Str("tel"), Str("v")}); err != nil {
			t.Fatal(err)
		}
		if err := tx.CommitRelaxed(); err != nil {
			t.Fatal(err)
		}
	}
	if d := mWALRelaxedFsyncBatches.Value() - batchesBefore; d != 0 {
		t.Fatalf("batched fsyncs on a no-sync db = %d, want 0", d)
	}
	db = reopen(t, db, dir, Options{})
	defer db.Close() //nolint:errcheck // read-only from here
	if n := countRows(t, db, "application"); n != 3 {
		t.Fatalf("rows after reopen = %d, want 3", n)
	}
}
