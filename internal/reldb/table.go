package reldb

import (
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
)

// Row is a single table row; cells are ordered as in the table schema.
type Row []Value

// clone returns a copy of the row.
func (r Row) clone() Row {
	c := make(Row, len(r))
	copy(c, r)
	return c
}

// Table is the physical storage for one relation: a slot-addressed row
// array with a free list, the primary-key index and any secondary indexes.
// Deleted slots hold a nil row and are recycled in LIFO order, which keeps
// slot assignment deterministic — the WAL replay path depends on that.
type Table struct {
	schema  *Schema
	rows    []Row
	free    []int
	live    int
	autoInc int64
	version int64             // schema version, see Version
	arena   []Value           // block-allocated cell storage for normalize
	pk      *Index            // unique index over the primary key, or nil
	indexes map[string]*Index // secondary indexes by lower-cased index name

	// Columnar segment state (see segment.go). dataVersion counts row
	// mutations; it is a plain int64 because every mutation runs under the
	// database write lock. colSeg and segHits are atomics because readers
	// race only each other: concurrent read transactions share the sealed
	// set and bump the read-mostly counter without coordination.
	dataVersion int64
	colSeg      atomic.Pointer[SegmentSet]
	segHits     atomic.Int32
	segMu       sync.Mutex // serializes segment builds
}

// schemaVersions issues process-wide unique schema versions. Every DDL that
// changes a table's columns or indexes assigns the table a fresh version, so
// a cached access plan detects staleness with a single compare — and a table
// dropped and recreated under the same name can never alias an old version.
var schemaVersions atomic.Int64

func nextSchemaVersion() int64 { return schemaVersions.Add(1) }

// CurrentSchemaVersion returns the most recently issued schema version: the
// process-wide DDL high-water mark. The introspection catalog
// (OBS_PLAN_CACHE) reports it so observers can correlate plan-cache
// invalidations with DDL activity.
func CurrentSchemaVersion() int64 { return schemaVersions.Load() }

func newTable(schema *Schema) *Table {
	t := &Table{schema: schema, indexes: make(map[string]*Index), version: nextSchemaVersion()}
	if schema.PrimaryKey != "" {
		col := schema.ColumnIndex(schema.PrimaryKey)
		t.pk, _ = newIndex("pk_"+schema.Name, schema.Name,
			[]string{schema.PrimaryKey}, []int{col}, HashIndex, true)
	}
	return t
}

// Schema returns the table's schema. Callers must not mutate it.
func (t *Table) Schema() *Schema { return t.schema }

// Version returns the table's schema version: a process-wide unique value
// reassigned by every column or index DDL (including rollbacks of such
// DDL). Plan caches compare it to decide whether a cached access-path
// decision is still valid.
func (t *Table) Version() int64 { return t.version }

// bumpVersion assigns the table a fresh schema version. Schema changes
// also seal off any columnar snapshot built against the old layout.
func (t *Table) bumpVersion() {
	t.version = nextSchemaVersion()
	t.noteDataChange()
}

// Len returns the number of live rows.
func (t *Table) Len() int { return t.live }

// rowArenaBlock is how many rows' worth of cells newRowBuf reserves per
// allocation. Bulk loads (the Miranda upload is >1.6M inserts) otherwise pay
// one small make per row; carving rows out of a shared block cuts that to
// one allocation per block.
const rowArenaBlock = 256

// newRowBuf returns a zeroed row of schema width carved from the table's
// cell arena. The returned slice has capacity == length, so appending to it
// (e.g. addColumn widening rows) copies instead of clobbering a neighbour.
func (t *Table) newRowBuf() Row {
	n := len(t.schema.Columns)
	if n == 0 {
		return Row{}
	}
	if len(t.arena) < n {
		t.arena = make([]Value, n*rowArenaBlock)
	}
	r := Row(t.arena[:n:n])
	t.arena = t.arena[n:]
	return r
}

// ScanPartitioned splits the slot array into at most n contiguous slot
// ranges of near-equal size and calls fn once per partition, in partition
// order, with the partition index, the first slot of the range, and the raw
// row slice (rows[i] is slot base+i; nil entries are free slots). The row
// slices alias live table storage: callers may hand different partitions to
// different goroutines, but only for reading, and only while holding the
// transaction that obtained the table.
func (t *Table) ScanPartitioned(n int, fn func(part, base int, rows []Row)) {
	total := len(t.rows)
	if total == 0 {
		return
	}
	if n < 1 {
		n = 1
	}
	if n > total {
		n = total
	}
	for p := 0; p < n; p++ {
		lo := p * total / n
		hi := (p + 1) * total / n
		fn(p, lo, t.rows[lo:hi])
	}
}

// normalize coerces a full-width row to the schema's column types, applies
// defaults and the auto-increment counter, and checks NOT NULL constraints.
func (t *Table) normalize(row Row) (Row, error) {
	if len(row) != len(t.schema.Columns) {
		return nil, fmt.Errorf("reldb: table %s: got %d values, want %d",
			t.schema.Name, len(row), len(t.schema.Columns))
	}
	out := t.newRowBuf()
	for i := range row {
		col := &t.schema.Columns[i]
		v := row[i]
		if v.IsNull() {
			switch {
			case col.AutoIncrement:
				t.autoInc++
				v = Int(t.autoInc)
			case !col.Default.IsNull():
				v = col.Default
			case col.NotNull:
				return nil, fmt.Errorf("reldb: table %s: column %s is NOT NULL",
					t.schema.Name, col.Name)
			}
		}
		if !v.IsNull() {
			cv, err := Coerce(v, col.Type)
			if err != nil {
				return nil, fmt.Errorf("reldb: table %s: column %s: %v", t.schema.Name, col.Name, err)
			}
			v = cv
			if col.AutoIncrement && v.I > t.autoInc {
				t.autoInc = v.I
			}
		}
		out[i] = v
	}
	return out, nil
}

// insert stores a normalized row, indexing it, and returns its slot.
func (t *Table) insert(row Row) (int, error) {
	if t.pk != nil {
		if row[t.pk.cols[0]].IsNull() {
			return 0, fmt.Errorf("reldb: table %s: primary key %s is NULL",
				t.schema.Name, t.schema.PrimaryKey)
		}
		if len(t.pk.lookup(row[t.pk.cols[0]])) > 0 {
			return 0, fmt.Errorf("reldb: table %s: duplicate primary key %v",
				t.schema.Name, row[t.pk.cols[0]].Go())
		}
	}
	var slot int
	if n := len(t.free); n > 0 {
		slot = t.free[n-1]
		t.free = t.free[:n-1]
		t.rows[slot] = row
	} else {
		slot = len(t.rows)
		t.rows = append(t.rows, row)
	}
	if t.pk != nil {
		if err := t.pk.insert(row, slot); err != nil {
			t.rows[slot] = nil
			t.free = append(t.free, slot)
			return 0, err
		}
	}
	for _, ix := range t.indexes {
		if err := ix.insert(row, slot); err != nil {
			// Roll back partial indexing. Removing the row from an index
			// that never held it is a harmless no-op, so removing from all
			// indexes except the one that failed is safe.
			if t.pk != nil {
				t.pk.remove(row, slot)
			}
			t.unindexPartial(row, slot, ix)
			t.rows[slot] = nil
			t.free = append(t.free, slot)
			return 0, err
		}
	}
	t.live++
	t.noteDataChange()
	return slot, nil
}

// unindexPartial removes row from every secondary index except stop,
// used to undo a partially indexed insert.
func (t *Table) unindexPartial(row Row, slot int, stop *Index) {
	for _, ix := range t.indexes {
		if ix == stop {
			continue
		}
		ix.remove(row, slot)
	}
}

// deleteSlot removes the row at slot, returning the old row.
func (t *Table) deleteSlot(slot int) (Row, error) {
	if slot < 0 || slot >= len(t.rows) || t.rows[slot] == nil {
		return nil, fmt.Errorf("reldb: table %s: no row at slot %d", t.schema.Name, slot)
	}
	row := t.rows[slot]
	if t.pk != nil {
		t.pk.remove(row, slot)
	}
	for _, ix := range t.indexes {
		ix.remove(row, slot)
	}
	t.rows[slot] = nil
	t.free = append(t.free, slot)
	t.live--
	t.noteDataChange()
	return row, nil
}

// restoreSlot re-inserts a previously deleted row at its original slot;
// used by transaction rollback. The slot must be the most recently freed.
func (t *Table) restoreSlot(slot int, row Row) {
	if n := len(t.free); n > 0 && t.free[n-1] == slot {
		t.free = t.free[:n-1]
	} else {
		// Slot was freed earlier in the undo sequence; remove it wherever
		// it is. Rollback replays undo records in reverse, so this is rare.
		for i, s := range t.free {
			if s == slot {
				t.free = append(t.free[:i], t.free[i+1:]...)
				break
			}
		}
	}
	t.rows[slot] = row
	if t.pk != nil {
		t.pk.insert(row, slot) //nolint:errcheck // restoring a previously valid row
	}
	for _, ix := range t.indexes {
		ix.insert(row, slot) //nolint:errcheck
	}
	t.live++
	t.noteDataChange()
}

// updateSlot replaces the row at slot with a normalized new row, returning
// the old row.
func (t *Table) updateSlot(slot int, row Row) (Row, error) {
	if slot < 0 || slot >= len(t.rows) || t.rows[slot] == nil {
		return nil, fmt.Errorf("reldb: table %s: no row at slot %d", t.schema.Name, slot)
	}
	old := t.rows[slot]
	if t.pk != nil && !Equal(old[t.pk.cols[0]], row[t.pk.cols[0]]) {
		if len(t.pk.lookup(row[t.pk.cols[0]])) > 0 {
			return nil, fmt.Errorf("reldb: table %s: duplicate primary key %v",
				t.schema.Name, row[t.pk.cols[0]].Go())
		}
	}
	if t.pk != nil {
		t.pk.remove(old, slot)
		if err := t.pk.insert(row, slot); err != nil {
			t.pk.insert(old, slot) //nolint:errcheck
			return nil, err
		}
	}
	for _, ix := range t.indexes {
		ix.remove(old, slot)
		if err := ix.insert(row, slot); err != nil {
			ix.insert(old, slot) //nolint:errcheck
			return nil, err
		}
	}
	t.rows[slot] = row
	t.noteDataChange()
	return old, nil
}

// row returns the row at slot, or nil when the slot is empty or invalid.
func (t *Table) row(slot int) Row {
	if slot < 0 || slot >= len(t.rows) {
		return nil
	}
	return t.rows[slot]
}

// RowAt returns the live row at slot, or nil. The row aliases table
// storage; callers may read it only while holding the transaction that
// obtained the table. The columnar path uses it to materialize group
// "first" rows from segment slot numbers.
func (t *Table) RowAt(slot int) Row { return t.row(slot) }

// scan visits every live row in slot order.
func (t *Table) scan(fn func(slot int, row Row) bool) {
	for slot, row := range t.rows {
		if row == nil {
			continue
		}
		if !fn(slot, row) {
			return
		}
	}
}

// lookupPK returns the slot holding primary key v, or -1.
func (t *Table) lookupPK(v Value) int {
	if t.pk == nil {
		return -1
	}
	if slots := t.pk.lookup(v); len(slots) > 0 {
		return slots[0]
	}
	return -1
}

// indexOn returns an index (including the primary-key index) over the named
// column, preferring ordered indexes when ranged is set.
func (t *Table) indexOn(column string, ranged bool) *Index {
	var best *Index
	consider := func(ix *Index) {
		if len(ix.Columns) != 1 || !strings.EqualFold(ix.Columns[0], column) {
			return
		}
		if ranged && !ix.Ranged() {
			return
		}
		if best == nil {
			best = ix
		}
	}
	if t.pk != nil {
		consider(t.pk)
	}
	for _, ix := range t.indexes {
		consider(ix)
	}
	return best
}

// indexOnMulti returns a composite hash index whose column set is exactly
// covered by the given column names (order-insensitive), or nil.
func (t *Table) indexOnMulti(columns []string) *Index {
	want := make(map[string]bool, len(columns))
	for _, c := range columns {
		want[strings.ToLower(c)] = true
	}
	for _, ix := range t.indexes {
		if len(ix.Columns) < 2 || len(ix.Columns) != len(columns) {
			continue
		}
		all := true
		for _, icol := range ix.Columns {
			if !want[strings.ToLower(icol)] {
				all = false
				break
			}
		}
		if all {
			return ix
		}
	}
	return nil
}

// Indexes returns the table's secondary indexes in unspecified order.
func (t *Table) Indexes() []*Index {
	out := make([]*Index, 0, len(t.indexes))
	for _, ix := range t.indexes {
		out = append(out, ix)
	}
	return out
}

// addColumn appends a column to the schema, filling existing rows with the
// column default (or NULL).
func (t *Table) addColumn(col Column) error {
	if t.schema.ColumnIndex(col.Name) >= 0 {
		return fmt.Errorf("reldb: table %s: column %s already exists", t.schema.Name, col.Name)
	}
	if col.AutoIncrement {
		return fmt.Errorf("reldb: table %s: cannot add auto-increment column %s", t.schema.Name, col.Name)
	}
	fill := col.Default
	if fill.IsNull() && col.NotNull {
		return fmt.Errorf("reldb: table %s: new NOT NULL column %s needs a default", t.schema.Name, col.Name)
	}
	if !fill.IsNull() {
		cv, err := Coerce(fill, col.Type)
		if err != nil {
			return err
		}
		fill = cv
	}
	t.schema.Columns = append(t.schema.Columns, col)
	//lint:allow ctxpoll -- DDL width rebuild mutates rows in place; aborting halfway would corrupt the table
	for slot, row := range t.rows {
		if row == nil {
			continue
		}
		t.rows[slot] = append(row, fill)
	}
	t.arena = nil // old width; carve fresh blocks at the new width
	t.bumpVersion()
	return nil
}

// dropColumn removes a column from the schema and every row, rebuilding
// indexes whose column position shifted.
func (t *Table) dropColumn(name string) error {
	pos := t.schema.ColumnIndex(name)
	if pos < 0 {
		return fmt.Errorf("reldb: table %s: no column %s", t.schema.Name, name)
	}
	if strings.EqualFold(t.schema.PrimaryKey, name) {
		return fmt.Errorf("reldb: table %s: cannot drop primary key column %s", t.schema.Name, name)
	}
	for _, ix := range t.indexes {
		for _, icol := range ix.Columns {
			if strings.EqualFold(icol, name) {
				return fmt.Errorf("reldb: table %s: column %s is indexed by %s; drop the index first",
					t.schema.Name, name, ix.Name)
			}
		}
	}
	for _, fk := range t.schema.ForeignKeys {
		if strings.EqualFold(fk.Column, name) {
			return fmt.Errorf("reldb: table %s: column %s has a foreign key", t.schema.Name, name)
		}
	}
	t.schema.Columns = append(t.schema.Columns[:pos], t.schema.Columns[pos+1:]...)
	//lint:allow ctxpoll -- DDL width rebuild mutates rows in place; aborting halfway would corrupt the table
	for slot, row := range t.rows {
		if row == nil {
			continue
		}
		t.rows[slot] = append(row[:pos], row[pos+1:]...)
	}
	// Column positions after pos shifted left; refresh index positions.
	if t.pk != nil {
		t.pk.cols[0] = t.schema.ColumnIndex(t.pk.Columns[0])
	}
	for _, ix := range t.indexes {
		for i, icol := range ix.Columns {
			ix.cols[i] = t.schema.ColumnIndex(icol)
		}
	}
	t.arena = nil
	t.bumpVersion()
	return nil
}
