package reldb

import (
	"errors"
	"fmt"
	"testing"
)

// versionOf reads a table's schema version outside any transaction helper.
func versionOf(t *testing.T, db *DB, name string) int64 {
	t.Helper()
	var v int64
	if err := db.Read(func(tx *Tx) error {
		v = tx.TableVersion(name)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	return v
}

// TestSchemaVersionBumps pins the plan-cache invalidation contract: every
// DDL that can change an access-path decision — column add/drop, index
// create/drop — moves the table's schema version, and so does rolling any
// of them back. A version must never be reused, otherwise a plan memoized
// against the rolled-back shape would validate against the restored one.
func TestSchemaVersionBumps(t *testing.T) {
	db := NewMemory()
	mustWrite(t, db, func(tx *Tx) error { return tx.CreateTable(appSchema()) })

	seen := map[int64]bool{versionOf(t, db, "application"): true}
	step := func(label string, fn func(tx *Tx) error) {
		t.Helper()
		mustWrite(t, db, fn)
		v := versionOf(t, db, "application")
		if seen[v] {
			t.Fatalf("%s: version %d reused", label, v)
		}
		seen[v] = true
	}
	sentinel := errors.New("force rollback")
	stepRollback := func(label string, fn func(tx *Tx) error) {
		t.Helper()
		err := db.Write(func(tx *Tx) error {
			if err := fn(tx); err != nil {
				return err
			}
			return sentinel
		})
		if !errors.Is(err, sentinel) {
			t.Fatalf("%s: %v", label, err)
		}
		v := versionOf(t, db, "application")
		if seen[v] {
			t.Fatalf("%s: version %d reused after rollback", label, v)
		}
		seen[v] = true
	}

	step("add column", func(tx *Tx) error {
		return tx.AddColumn("application", Column{Name: "note", Type: TString})
	})
	step("create index", func(tx *Tx) error {
		return tx.CreateIndex("ix_name", "application", []string{"name"}, HashIndex, false)
	})
	step("drop index", func(tx *Tx) error {
		return tx.DropIndex("application", "ix_name")
	})
	step("drop column", func(tx *Tx) error {
		return tx.DropColumn("application", "note")
	})
	stepRollback("rolled-back add column", func(tx *Tx) error {
		return tx.AddColumn("application", Column{Name: "tmp", Type: TInt})
	})
	stepRollback("rolled-back create index", func(tx *Tx) error {
		return tx.CreateIndex("ix_tmp", "application", []string{"name"}, HashIndex, false)
	})
}

// TestScanPartitioned checks the partition contract the parallel executor
// depends on: the partitions tile the slot space exactly — every slot
// (including tombstones) appears once, in slot order, with the right base.
func TestScanPartitioned(t *testing.T) {
	db := NewMemory()
	mustWrite(t, db, func(tx *Tx) error {
		if err := tx.CreateTable(appSchema()); err != nil {
			return err
		}
		for i := 0; i < 37; i++ {
			if _, err := tx.Insert("application", Row{Null, Str("app"), Null}); err != nil {
				return err
			}
		}
		// Punch holes so some slots are nil.
		for _, slot := range []int{0, 5, 17, 36} {
			if err := tx.Delete("application", slot); err != nil {
				return err
			}
		}
		return nil
	})

	for _, n := range []int{1, 2, 3, 7, 37, 100} {
		var (
			covered  = make([]bool, 37)
			lastPart = -1
			nextSlot int
		)
		if err := db.Read(func(tx *Tx) error {
			return tx.ScanPartitioned("application", n, func(part, base int, rows []Row) {
				if part <= lastPart {
					t.Fatalf("n=%d: partition %d after %d (out of order)", n, part, lastPart)
				}
				lastPart = part
				if base != nextSlot {
					t.Fatalf("n=%d part=%d: base = %d, want %d", n, part, base, nextSlot)
				}
				for i := range rows {
					slot := base + i
					if covered[slot] {
						t.Fatalf("n=%d: slot %d covered twice", n, slot)
					}
					covered[slot] = true
				}
				nextSlot = base + len(rows)
			})
		}); err != nil {
			t.Fatal(err)
		}
		for slot, ok := range covered {
			if !ok {
				t.Fatalf("n=%d: slot %d never covered", n, slot)
			}
		}
		deleted := map[int]bool{0: true, 5: true, 17: true, 36: true}
		if err := db.Read(func(tx *Tx) error {
			return tx.ScanPartitioned("application", n, func(part, base int, rows []Row) {
				for i, r := range rows {
					if deleted[base+i] != (r == nil) {
						t.Fatalf("n=%d slot %d: nil=%v, deleted=%v", n, base+i, r == nil, deleted[base+i])
					}
				}
			})
		}); err != nil {
			t.Fatal(err)
		}
	}

	// Empty table: no callbacks, no panic.
	mustWrite(t, db, func(tx *Tx) error { return tx.CreateTable(expSchema()) })
	if err := db.Read(func(tx *Tx) error {
		return tx.ScanPartitioned("experiment", 4, func(part, base int, rows []Row) {
			t.Fatalf("callback on empty table: part=%d", part)
		})
	}); err != nil {
		t.Fatal(err)
	}
}

// TestRowArenaIsolation guards the bulk-insert arena: rows carved from the
// shared block must be fully independent — writing one row's cell cannot
// bleed into a neighbor, and appending (as ALTER TABLE ADD COLUMN does)
// must copy rather than grow into the next row's cells.
func TestRowArenaIsolation(t *testing.T) {
	db := NewMemory()
	mustWrite(t, db, func(tx *Tx) error {
		if err := tx.CreateTable(appSchema()); err != nil {
			return err
		}
		for i := 0; i < 600; i++ { // span several arena blocks
			row := Row{Null, Str(fmt.Sprintf("app-%d", i)), Null}
			if _, err := tx.Insert("application", row); err != nil {
				return err
			}
		}
		return nil
	})
	mustWrite(t, db, func(tx *Tx) error {
		// ADD COLUMN appends a cell to every stored row in place; with a
		// shared arena this is exactly the operation that would stomp the
		// next row if rows kept spare capacity.
		return tx.AddColumn("application", Column{Name: "extra", Type: TInt, Default: Int(7)})
	})
	if err := db.Read(func(tx *Tx) error {
		return tx.Scan("application", func(slot int, row Row) bool {
			if len(row) != 4 {
				t.Fatalf("slot %d: width %d", slot, len(row))
			}
			if row[1].S != fmt.Sprintf("app-%d", slot) || row[3].AsInt() != 7 {
				t.Fatalf("slot %d: corrupted row %v", slot, row)
			}
			return true
		})
	}); err != nil {
		t.Fatal(err)
	}
}
