package reldb

import "time"

// Health is a point-in-time durability/liveness probe of a database — the
// raw material for `perfdmf serve`'s /healthz endpoint. All fields are
// cheap to gather: no I/O beyond an fstat of the WAL file descriptor.
type Health struct {
	// Open reports that Close has not been called.
	Open bool
	// Durable reports directory-backed storage (the file driver).
	Durable bool
	// WALWritable reports that the WAL file descriptor is still usable.
	// Vacuously true for in-memory databases.
	WALWritable bool
	// WALError carries the probe failure detail when WALWritable is false.
	WALError string
	// WALOpsPending counts logical operations appended to the WAL since the
	// last checkpoint — the work a crash would have to replay, and the
	// backlog `perfdmf serve`'s runtime collector exports as the
	// reldb_wal_ops_pending gauge.
	WALOpsPending int
	// LastCheckpoint is the time of the last successful checkpoint (or of
	// the snapshot loaded at Open). Zero for in-memory databases and for
	// durable databases that have never checkpointed.
	LastCheckpoint time.Time
	// Tables is the catalog size.
	Tables int
}

// CheckpointAge returns time since LastCheckpoint at now, or 0 when the
// database has never checkpointed (nothing to be stale relative to).
func (h Health) CheckpointAge(now time.Time) time.Duration {
	if h.LastCheckpoint.IsZero() {
		return 0
	}
	return now.Sub(h.LastCheckpoint)
}

// Health probes the database. Safe for concurrent use with readers and
// writers (it takes a shared lock).
func (db *DB) Health() Health {
	db.mu.RLock()
	defer db.mu.RUnlock()
	h := Health{
		Open:           !db.closed,
		Durable:        db.dir != "",
		WALWritable:    true,
		WALOpsPending:  db.walOps,
		LastCheckpoint: db.lastChk,
		Tables:         len(db.tables),
	}
	if !h.Durable {
		return h
	}
	if db.wal == nil {
		h.WALWritable = false
		h.WALError = "wal closed"
		return h
	}
	if err := db.wal.probe(); err != nil {
		h.WALWritable = false
		h.WALError = err.Error()
	}
	return h
}
