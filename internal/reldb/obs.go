package reldb

import "perfdmf/internal/obs"

// Engine-level metrics, resolved once so the hot paths pay a single atomic
// add per event. Names and semantics are documented in
// docs/OBSERVABILITY.md.
var (
	// Transactions.
	mTxBegin    = obs.Default.Counter("reldb_tx_begin_total")
	mTxCommit   = obs.Default.Counter("reldb_tx_commit_total")
	mTxRollback = obs.Default.Counter("reldb_tx_rollback_total")
	mTxRead     = obs.Default.Counter("reldb_tx_read_total")
	// TryBegin refusals: the write lock was held, the caller backed off.
	mTryBeginMisses = obs.Default.Counter("reldb_tx_try_begin_misses_total")
	// Write-lock acquisition wait, nanoseconds: contention between
	// concurrent uploader sessions shows up here.
	mLockWaitNS = obs.Default.Histogram("reldb_lock_wait_ns")

	// Row mutations.
	mRowsInserted = obs.Default.Counter("reldb_rows_inserted_total")
	mRowsUpdated  = obs.Default.Counter("reldb_rows_updated_total")
	mRowsDeleted  = obs.Default.Counter("reldb_rows_deleted_total")

	// WAL: one append per commit batch.
	mWALAppends  = obs.Default.Counter("reldb_wal_appends_total")
	mWALRecords  = obs.Default.Counter("reldb_wal_records_total")
	mWALBytes    = obs.Default.Counter("reldb_wal_bytes_total")
	mWALAppendNS = obs.Default.Histogram("reldb_wal_append_ns")
	mWALFsyncNS  = obs.Default.Histogram("reldb_wal_fsync_ns")
	mWALReplayed = obs.Default.Counter("reldb_wal_replay_ops_total")
	// Relaxed-durability commits (the telemetry writer's group commits):
	// appends that deferred their fsync, and the batched fsyncs that later
	// flushed them.
	mWALRelaxedAppends      = obs.Default.Counter("reldb_wal_relaxed_appends_total")
	mWALRelaxedFsyncBatches = obs.Default.Counter("reldb_wal_relaxed_fsync_batches_total")

	// Snapshots (checkpoint write and startup load).
	mCheckpoints    = obs.Default.Counter("reldb_checkpoint_total")
	mCheckpointNS   = obs.Default.Histogram("reldb_checkpoint_ns")
	mSnapshotBytes  = obs.Default.Gauge("reldb_snapshot_bytes")
	mSnapshotLoadNS = obs.Default.Histogram("reldb_snapshot_load_ns")

	// B-tree structure churn in ordered indexes.
	mBtreeSplits = obs.Default.Counter("reldb_btree_splits_total")

	// Columnar segment store: sealed snapshot builds (lazy or COMPACT),
	// rows encoded across those builds, and snapshots invalidated by DML
	// or schema changes.
	mSegBuilds        = obs.Default.Counter("reldb_segment_builds_total")
	mSegBuildRows     = obs.Default.Counter("reldb_segment_build_rows_total")
	mSegInvalidations = obs.Default.Counter("reldb_segment_invalidations_total")
)
